"""Tests for the multi-worker serve tier: blob, reader, segments, pool.

The compiler/reader tests assert *byte identity*: every endpoint answer
a :class:`BlobIndex` produces must serialize to exactly the JSON the
in-memory :class:`MappingIndex` produces, over a seeded corpus of hits,
misses, sibling pairs, and search queries.  The pool tests run real
forked workers behind one SO_REUSEPORT socket and exercise hot swap,
``kill -9`` churn mid-swap, and shared-memory hygiene (no leaked
segments after stop).
"""

from __future__ import annotations

import json
import os
import random
import signal
import socket
import struct
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.errors import (
    ServeError,
    SnapshotIntegrityError,
    UnknownASNError,
    UnknownGenerationError,
    UnknownOrgError,
)
from repro.obs import use_registry
from repro.serve import (
    HttpConnectionPool,
    MappingIndex,
    QueryService,
    SnapshotStore,
    WorkerConfig,
    WorkerPool,
    compile_index,
    map_blob_file,
    run_pipelined,
)
from repro.serve.loadgen import LoadGenerator
from repro.serve.shm import (
    BLOB_MAGIC,
    BlobFormatError,
    BlobIndex,
    SegmentStore,
    read_header,
    run_forked,
    verify_blob,
)
from repro.serve.shm.blob import blob_stats
from repro.serve.top import PoolTopView
from repro.watch.archive import SnapshotArchive


@pytest.fixture()
def registry():
    with use_registry() as reg:
        yield reg


@pytest.fixture(scope="module")
def index(borges_mapping, universe):
    return MappingIndex.build(
        borges_mapping, whois=universe.whois, pdb=universe.pdb
    )


@pytest.fixture(scope="module")
def blob(index):
    return compile_index(index)


@pytest.fixture(scope="module")
def blob_index(blob):
    return BlobIndex(blob)


# -- compiler + header -------------------------------------------------------


class TestBlobFormat:
    def test_header_round_trip(self, blob, index):
        assert blob.startswith(BLOB_MAGIC)
        header = read_header(blob)
        assert header.blob_size == len(blob)
        assert header.asn_count == index.asn_count
        assert header.org_count == len(index)
        assert header.index_digest == index.digest

    def test_verify_accepts_a_good_blob(self, blob):
        verify_blob(blob)

    def test_compile_is_deterministic(self, index):
        assert compile_index(index) == compile_index(index)

    def test_truncated_blob_is_rejected(self, blob):
        with pytest.raises(BlobFormatError):
            verify_blob(blob[: len(blob) // 2])
        with pytest.raises(BlobFormatError):
            verify_blob(blob[:7])

    def test_bad_magic_is_rejected(self, blob):
        bad = b"NOTBLOB!" + blob[8:]
        with pytest.raises(BlobFormatError, match="magic"):
            read_header(bad)

    def test_payload_corruption_fails_the_digest(self, blob):
        mutated = bytearray(blob)
        mutated[-10] ^= 0xFF
        with pytest.raises(BlobFormatError, match="digest"):
            verify_blob(bytes(mutated))

    def test_blob_stats_shape(self, blob, index):
        stats = blob_stats(blob)
        assert stats["asns"] == index.asn_count
        assert stats["bytes"] == len(blob)
        assert set(stats["sections"]) >= {"arena", "slots", "postings"}


# -- reader: byte identity against MappingIndex ------------------------------


class TestBlobIndexEquivalence:
    def test_every_asn_answer_is_byte_identical(self, blob_index, index):
        for asn in index.asns():
            expected = json.dumps(index.lookup_asn(asn).to_json())
            actual = json.dumps(blob_index.lookup_asn(asn).to_json())
            assert actual == expected, f"asn {asn} diverged"

    def test_every_org_answer_is_byte_identical(self, blob_index, index):
        for asn in index.asns():
            org_id = index.org_of(asn).org_id
            expected = json.dumps(index.org(org_id).to_json())
            actual = json.dumps(blob_index.org(org_id).to_json())
            assert actual == expected, f"org {org_id} diverged"

    def test_misses_raise_the_same_typed_errors(self, blob_index, index):
        rng = random.Random(13)
        present = set(index.asns())
        misses = 0
        while misses < 50:
            asn = rng.randrange(1, 4_000_000_000)
            if asn in present:
                continue
            misses += 1
            assert asn not in blob_index
            with pytest.raises(UnknownASNError):
                blob_index.lookup_asn(asn)
        for bad in ("BORGES-0", "BORGES-007", "bogus", "BORGES-", "ORG-9"):
            with pytest.raises(UnknownOrgError):
                blob_index.org(bad)

    def test_sibling_verdicts_match(self, blob_index, index):
        rng = random.Random(17)
        asns = index.asns()
        for _ in range(300):
            a, b = rng.choice(asns), rng.choice(asns)
            assert blob_index.are_siblings(a, b) == index.are_siblings(a, b)

    def test_search_is_byte_identical(self, blob_index, index):
        rng = random.Random(19)
        queries = set()
        for asn in rng.sample(index.asns(), 60):
            name = index.lookup_asn(asn).org.name
            words = name.split()
            queries.add(words[0])
            queries.add(words[0][:3])  # prefix expansion path
            if len(words) > 1:
                queries.add(" ".join(words[:2]))
        queries.update(["zz-no-such-org", "a", ""])
        for query in sorted(queries):
            for limit in (1, 5, 25):
                expected = json.dumps(
                    [r.to_json() for r in index.search(query, limit=limit)]
                )
                actual = json.dumps(
                    [r.to_json() for r in blob_index.search(query, limit=limit)]
                )
                assert actual == expected, f"search({query!r}, {limit})"

    def test_stats_and_len_match(self, blob_index, index):
        assert blob_index.stats() == index.stats()
        assert blob_index.method == index.method
        assert len(blob_index) == len(index)
        assert blob_index.asns() == index.asns()

    def test_query_service_accepts_a_blob_snapshot(
        self, blob, index, registry, tmp_path
    ):
        path = tmp_path / "snap.blob"
        path.write_bytes(blob)
        service = QueryService(registry=registry)
        service.store.load_from_blob_file(path)
        asn = index.asns()[0]
        assert service.lookup_asn(asn)["asn"] == asn
        assert service.store.current().index.digest == index.digest


# -- segment store -----------------------------------------------------------


class TestSegmentStore:
    def test_write_pointer_map_round_trip(self, blob, tmp_path):
        store = SegmentStore(tmp_path / "seg")
        store.write_segment(1, blob)
        pointer = store.set_pointer(1)
        assert pointer["generation"] == 1
        assert store.pointer()["segment"] == "gen-000001.blob"
        mapped = store.map_generation(1)
        assert mapped.generation == 1
        assert len(mapped.index) > 0
        mapped.close()

    def test_reads_survive_unlink_while_mapped(self, blob, tmp_path):
        store = SegmentStore(tmp_path / "seg")
        store.write_segment(1, blob)
        mapped = store.map_generation(1)
        asns = mapped.index.asns()
        assert store.unlink_segment(1)
        assert not store.segment_path(1).exists()
        # POSIX keeps the mapping valid after unlink: old generations
        # stay queryable in workers that still hold them.
        record = mapped.index.lookup_asn(asns[0])
        assert record.org.size >= 1
        mapped.close()

    def test_pointer_is_tolerant_of_garbage(self, tmp_path):
        store = SegmentStore(tmp_path / "seg")
        assert store.pointer() is None
        store.pointer_path.write_text("not json", encoding="utf-8")
        assert store.pointer() is None

    def test_cleanup_removes_everything(self, blob, tmp_path):
        root = tmp_path / "seg"
        store = SegmentStore(root)
        store.write_segment(1, blob)
        store.write_segment(2, blob)
        store.set_pointer(2)
        (root / "worker-0.json").write_text("{}", encoding="utf-8")
        store.cleanup()
        assert not root.exists()

    def test_generations_are_sorted(self, blob, tmp_path):
        store = SegmentStore(tmp_path / "seg")
        for generation in (3, 1, 2):
            store.write_segment(generation, blob)
        assert store.generations() == [1, 2, 3]


# -- store integration: blob load + quarantine -------------------------------


class TestStoreBlobLoad:
    def test_corrupt_blob_file_is_quarantined(self, blob, registry, tmp_path):
        path = tmp_path / "snap.blob"
        mutated = bytearray(blob)
        mutated[-1] ^= 0xFF
        path.write_bytes(bytes(mutated))
        store = SnapshotStore(registry=registry)
        with pytest.raises(SnapshotIntegrityError):
            store.load_from_blob_file(path)
        assert not path.exists()
        assert path.with_suffix(path.suffix + ".quarantined").exists()


# -- run_forked --------------------------------------------------------------


class TestRunForked:
    def test_results_come_back_in_submission_order(self):
        thunks = [lambda i=i: i * i for i in range(6)]
        assert run_forked(thunks, max_workers=3) == [0, 1, 4, 9, 16, 25]

    def test_child_exception_is_a_serve_error(self):
        def boom():
            raise ValueError("intentional")

        with pytest.raises(ServeError, match="intentional"):
            run_forked([boom], max_workers=1)

    def test_child_death_before_reporting_is_a_serve_error(self):
        with pytest.raises(ServeError, match="before reporting"):
            run_forked([lambda: os._exit(7)], max_workers=1)

    def test_empty_input(self):
        assert run_forked([], max_workers=2) == []


# -- sharded pipeline: process workers ---------------------------------------


class TestShardProcessWorkers:
    def test_process_mode_is_byte_identical_to_thread_mode(self, universe):
        from repro.config import BorgesConfig
        from repro.core.pipeline import run_sharded
        from repro.digest import stable_digest

        results = {}
        for mode in ("thread", "process"):
            result = run_sharded(
                universe.whois,
                universe.pdb,
                universe.web,
                BorgesConfig(),
                n_shards=2,
                shard_workers=mode,
            )
            results[mode] = stable_digest(result.mapping.to_json())
        assert results["process"] == results["thread"]

    def test_invalid_mode_is_rejected(self, universe):
        from repro.config import BorgesConfig
        from repro.core.pipeline import run_sharded

        with pytest.raises(ValueError, match="shard_workers"):
            run_sharded(
                universe.whois,
                universe.pdb,
                universe.web,
                BorgesConfig(),
                n_shards=2,
                shard_workers="greenlet",
            )


# -- archive blob sidecar ----------------------------------------------------


class TestArchiveBlobSidecar:
    def test_publish_with_index_writes_a_readable_sidecar(
        self, borges_mapping, index, registry, tmp_path
    ):
        archive = SnapshotArchive(tmp_path / "archive", registry=registry)
        entry = archive.publish(borges_mapping, index=index)
        generation = entry["archive_generation"]
        assert archive.has_blob(generation)
        raw = archive.read_blob(generation)
        assert BlobIndex(raw).digest == index.digest

    def test_publish_without_index_has_no_sidecar(
        self, borges_mapping, registry, tmp_path
    ):
        archive = SnapshotArchive(tmp_path / "archive", registry=registry)
        entry = archive.publish(borges_mapping)
        generation = entry["archive_generation"]
        assert not archive.has_blob(generation)
        with pytest.raises(UnknownGenerationError):
            archive.read_blob(generation)

    def test_corrupt_sidecar_is_quarantined_without_killing_the_entry(
        self, borges_mapping, index, registry, tmp_path
    ):
        archive = SnapshotArchive(tmp_path / "archive", registry=registry)
        generation = archive.publish(borges_mapping, index=index)[
            "archive_generation"
        ]
        path = archive.blob_path(generation)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotIntegrityError):
            archive.read_blob(generation)
        assert not path.exists()
        # The JSON entry is the source of truth; losing the derived
        # sidecar must not burn the generation.
        assert generation in archive.generations()
        archive.read(generation)

    def test_prune_removes_sidecars_with_entries(
        self, borges_mapping, index, registry, tmp_path
    ):
        archive = SnapshotArchive(
            tmp_path / "archive", max_entries=2, registry=registry
        )
        generations = [
            archive.publish(borges_mapping, index=index)["archive_generation"]
            for _ in range(4)
        ]
        kept = archive.generations()
        for generation in generations:
            assert archive.has_blob(generation) == (generation in kept)

    def test_stats_count_sidecars(
        self, borges_mapping, index, registry, tmp_path
    ):
        archive = SnapshotArchive(tmp_path / "archive", registry=registry)
        archive.publish(borges_mapping, index=index)
        archive.publish(borges_mapping)
        assert archive.stats()["blob_sidecars"] == 1


# -- worker pool: live HTTP --------------------------------------------------


def _shm_entries() -> set:
    root = Path("/dev/shm")
    if not root.is_dir():
        return set()
    return {p.name for p in root.iterdir()}


def _get_json(url: str, timeout: float = 5.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, json.loads(response.read())


@pytest.fixture()
def pool(blob, tmp_path):
    config = WorkerConfig(workers=2, swap_timeout=30.0, respawn_backoff=0.05)
    worker_pool = WorkerPool(config, state_dir=tmp_path / "pool")
    before = _shm_entries()
    worker_pool.start(blob)
    try:
        yield worker_pool
    finally:
        worker_pool.stop()
        leaked = _shm_entries() - before
        assert not leaked, f"leaked shm segments: {leaked}"


class TestWorkerPool:
    def test_workers_share_one_generation(self, pool, index):
        asn = index.asns()[0]
        expected = json.dumps(index.lookup_asn(asn).to_json(), sort_keys=True)
        for _ in range(20):
            status, body = _get_json(f"{pool.url}/v1/asn/{asn}")
            assert status == 200
            assert body.pop("generation") == 1
            assert body.pop("stale", False) is False
            assert json.dumps(body, sort_keys=True) == expected
        states = pool.worker_states()
        assert len(states) == 2
        assert all(s and s["generation"] == 1 for s in states)

    def test_hot_swap_reaches_every_worker(self, pool, blob, index):
        asn = index.asns()[0]
        assert pool.publish(blob) == 2
        assert pool.publish(blob) == 3
        seen = set()
        for _ in range(40):
            status, body = _get_json(f"{pool.url}/v1/asn/{asn}")
            assert status == 200
            seen.add(body["generation"])
        assert seen == {3}
        # old segments are unlinked after every worker acks
        assert pool.segments.generations() == [3]

    def test_kill9_churn_mid_swap_zero_5xx(self, pool, blob, index):
        """SIGKILL a worker, publish while it is down, assert recovery.

        The respawned worker must come back *on the new generation*
        (pointer-driven catch-up, not supervisor replay), traffic must
        see zero 5xx throughout, and no shm segments may leak.
        """
        asn = index.asns()[0]
        dead_pid = pool.kill_worker(0, sig=signal.SIGKILL)
        generation = pool.publish(blob)  # blocks until both workers ack
        assert generation == 2
        states = pool.worker_states()
        assert states[0]["pid"] != dead_pid
        assert all(s["generation"] == generation for s in states)
        failures = []
        for _ in range(60):
            try:
                status, body = _get_json(f"{pool.url}/v1/asn/{asn}")
            except (urllib.error.URLError, OSError) as exc:  # pragma: no cover
                failures.append(repr(exc))
                continue
            if status >= 500:
                failures.append(status)
            assert body["generation"] == generation
        assert not failures
        assert pool.respawns >= 1

    def test_per_worker_admin_metrics_and_top_view(self, pool, index):
        asn = index.asns()[0]
        for _ in range(10):
            _get_json(f"{pool.url}/v1/asn/{asn}")
        view = PoolTopView(pool.state_dir)
        first = view.render(view.poll())
        time.sleep(0.3)
        second = view.render(view.poll())
        for rendered in (first, second):
            assert "supervisor pid" in rendered
            assert "worker" in rendered
            assert "(machine)" in rendered
        # one row per worker plus the machine-total line
        rows = [
            line for line in second.splitlines()
            if line.strip().startswith(("0 ", "1 "))
        ]
        assert len(rows) == 2

    def test_stale_port_is_reused_across_churn(self, pool):
        port = pool.port
        pool.kill_worker(1, sig=signal.SIGKILL)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            states = pool.worker_states()
            if all(s is not None for s in states) and pool.respawns >= 1:
                break
            time.sleep(0.05)
        assert pool.port == port
        status, _ = _get_json(f"{pool.url}/healthz", timeout=10.0)
        assert status == 200


# -- loadgen: HTTP mode + connection pool ------------------------------------


class TestHttpLoadgen:
    def test_connection_pool_round_trips_and_reuses(self, pool, index):
        http_pool = HttpConnectionPool.for_target(pool.url, size=2)
        try:
            asn = index.asns()[0]
            for _ in range(12):
                status, body = http_pool.request("GET", f"/v1/asn/{asn}")
                assert status == 200
                assert json.loads(body)["asn"] == asn
            assert http_pool.created <= 2
            assert http_pool.conn_errors == 0
        finally:
            http_pool.close()

    def test_overload_against_pool_reports_per_worker(self, pool, index):
        generator = LoadGenerator(None, index.asns(), seed=5)
        report = generator.run_overload(
            240,
            workers=3,
            target=pool.url,
        )
        assert report.requests > 0
        assert report.classes.get("5xx", 0) == 0
        assert len(report.per_worker) == 3
        payload = report.to_json()
        assert payload["aggregate_qps"] == round(report.qps, 1)
        assert all(row["qps"] > 0 for row in report.per_worker)
        assert sum(r["requests"] for r in report.per_worker) == report.requests

    def test_pipelined_client_counts_statuses(self, pool, index):
        paths = [f"/v1/asn/{asn}" for asn in index.asns()[:50]]
        paths.append("/v1/asn/999999999")  # a 404 must not count as ok
        result = run_pipelined(pool.url, paths, repeat=2)
        assert result["requests"] == len(paths) * 2
        assert result["ok"] == (len(paths) - 1) * 2
        assert result["errors"] == 0
        assert result["qps"] > 0
