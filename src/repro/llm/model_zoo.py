"""Simulated model zoo: alternative LLMs at different quality tiers.

The paper's conclusion points at "future, more complex LLM models, and
alternative models ... such as Meta's Llama and DeepSeek's R1."  Offline,
a model is its error profile: each profile reuses the same engines with
different calibrated error rates (and a cost multiplier for the budget
analysis), so the pipeline can be swept across the zoo to measure how
mapping quality tracks model quality.

Rates are loosely anchored to public benchmark gaps between the model
families at the paper's timeframe; they are *profiles*, not measurements.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import LLMConfig
from ..errors import ConfigError


@dataclass(frozen=True)
class ModelProfile:
    """One simulated model: identity, error rates, relative price."""

    name: str
    extraction_error_rate: float
    classifier_error_rate: float
    #: Price per prompt/completion token relative to GPT-4o-mini.
    cost_multiplier: float
    description: str = ""

    def llm_config(self, base: Optional[LLMConfig] = None) -> LLMConfig:
        """An :class:`LLMConfig` running the simulator as this model."""
        base = base or LLMConfig()
        return dataclasses.replace(
            base,
            model=self.name,
            extraction_error_rate=self.extraction_error_rate,
            classifier_error_rate=self.classifier_error_rate,
        )


#: The zoo.  GPT-4o-mini is the paper's model and the calibration anchor.
MODEL_ZOO: Dict[str, ModelProfile] = {
    profile.name: profile
    for profile in (
        ModelProfile(
            name="gpt-4o-mini-sim",
            extraction_error_rate=0.03,
            classifier_error_rate=0.09,
            cost_multiplier=1.0,
            description="the paper's model (calibration anchor)",
        ),
        ModelProfile(
            name="gpt-4o-sim",
            extraction_error_rate=0.015,
            classifier_error_rate=0.045,
            cost_multiplier=16.7,
            description="frontier tier: half the error at ~17x the price",
        ),
        ModelProfile(
            name="llama-3-8b-sim",
            extraction_error_rate=0.09,
            classifier_error_rate=0.18,
            cost_multiplier=0.4,
            description="small open-weights tier: cheap, noticeably noisier",
        ),
        ModelProfile(
            name="llama-3-70b-sim",
            extraction_error_rate=0.04,
            classifier_error_rate=0.11,
            cost_multiplier=3.0,
            description="large open-weights tier: near-parity extraction",
        ),
        ModelProfile(
            name="deepseek-r1-sim",
            extraction_error_rate=0.01,
            classifier_error_rate=0.05,
            cost_multiplier=2.2,
            description="reasoning tier: best extraction, slower/pricier",
        ),
    )
}


def get_profile(name: str) -> ModelProfile:
    try:
        return MODEL_ZOO[name]
    except KeyError:
        raise ConfigError(
            f"unknown model {name!r}; available: {sorted(MODEL_ZOO)}"
        ) from None


def zoo_names() -> List[str]:
    return sorted(MODEL_ZOO)
