"""Serve: the read-path subsystem over completed AS-to-Org mappings.

The write side of the repo (pipeline → :class:`~repro.core.OrgMapping` →
release file) *produces* mappings; this package *answers queries* against
them, the way downstream tools consume CAIDA's AS2Org:

* :mod:`repro.serve.index` — :class:`MappingIndex`: immutable O(1)
  ASN→org / org→members lookups plus tokenized org-name search;
* :mod:`repro.serve.store` — :class:`SnapshotStore`: loads generations
  (pipeline results, mapping JSON, CAIDA-format release files, merge
  artifacts) and hot-swaps them atomically, draining retired readers;
* :mod:`repro.serve.service` — :class:`QueryService`: batched lookups,
  an LRU response cache, and per-endpoint sub-millisecond latency
  histograms in the shared metrics registry;
* :mod:`repro.serve.httpd` — :class:`QueryServer`: a stdlib threading
  HTTP JSON API (``/v1/asn``, ``/v1/org``, ``/v1/siblings``,
  ``/v1/search``, ``/healthz``, ``/metrics``);
* :mod:`repro.serve.admission` — :class:`AdmissionController`: bounded
  concurrency with a finite wait queue and per-endpoint deadlines, so
  saturated load sheds fast (HTTP 429/503) instead of piling up;
* :mod:`repro.serve.loadgen` — seeded Zipfian traffic for benchmarks,
  including a multi-threaded overload mode with response-class
  accounting and per-request trace-context propagation;
* :mod:`repro.serve.top` — the ``borges top`` terminal dashboard,
  polling ``/metrics`` + ``/v1/admin/slo`` into a live view;
* :mod:`repro.serve.shm` — the multi-worker tier: snapshot→blob
  compiler, zero-copy :class:`~repro.serve.shm.BlobIndex` reader, and
  the :class:`~repro.serve.shm.WorkerPool` supervisor forking N query
  servers over one shared read-only mapping (``borges serve
  --workers N``).

Observability rides through the whole stack: every HTTP response
carries ``x-borges-trace-id``, request outcomes feed the
:class:`~repro.obs.slo.SLOTracker`'s burn-rate alerts, and sampled
``http.access`` events land in the structured event log.

``borges serve``, ``borges query`` and ``borges top`` are the CLI entry
points.
"""

from .admission import AdmissionController, AdmissionLimits
from .index import AsnRecord, MappingIndex, OrgRecord, org_handle, tokenize
from .loadgen import (
    RESPONSE_CLASSES,
    SLOWEST_REPORTED,
    HttpConnectionPool,
    LoadGenerator,
    LoadReport,
    ZipfianSampler,
    percentile,
    run_pipelined,
)
from .service import ENDPOINTS, QueryService
from .store import Snapshot, SnapshotStore
from .httpd import MAX_BATCH_ASNS, MAX_CONTENT_LENGTH, QueryServer
from .top import PoolTopView, TopView, run_top
from .shm import (
    BlobIndex,
    SegmentStore,
    WorkerConfig,
    WorkerPool,
    compile_index,
    map_blob_file,
)

__all__ = [
    "AdmissionController",
    "AdmissionLimits",
    "AsnRecord",
    "MappingIndex",
    "OrgRecord",
    "org_handle",
    "tokenize",
    "LoadGenerator",
    "LoadReport",
    "RESPONSE_CLASSES",
    "SLOWEST_REPORTED",
    "ZipfianSampler",
    "percentile",
    "PoolTopView",
    "TopView",
    "run_top",
    "ENDPOINTS",
    "QueryService",
    "Snapshot",
    "SnapshotStore",
    "MAX_BATCH_ASNS",
    "MAX_CONTENT_LENGTH",
    "QueryServer",
    "BlobIndex",
    "HttpConnectionPool",
    "SegmentStore",
    "WorkerConfig",
    "WorkerPool",
    "compile_index",
    "map_blob_file",
    "run_pipelined",
]
