"""Shared fixtures for the benchmark suite.

Benches run at the default (paper-shaped, ≈14k-ASN) scale; the context is
built once per session.  Every bench times its experiment with a single
pedantic round (these are dataset-scale computations, not microbenches)
and prints the regenerated table so `pytest benchmarks/ --benchmark-only`
doubles as the paper-reproduction harness.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentContext


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext.build()


def run_and_render(benchmark, ctx, experiment_id, max_rows=25):
    """Time one experiment and print its rendered report."""
    from repro.experiments import run_experiment

    report = benchmark.pedantic(
        lambda: run_experiment(experiment_id, context=ctx),
        rounds=1,
        iterations=1,
    )
    print()
    print(report.render(max_rows=max_rows))
    return report
