"""AS-Rank substrate: AS-level topology, customer cones, and ranking.

CAIDA's AS-Rank orders ASes by customer-cone size — the set of ASes
reachable by following provider→customer edges.  The transit analysis
(Fig. 8) needs that ordering; this package computes it from the synthetic
AS topology the universe generator emits.
"""

from .topology import ASTopology, Relationship
from .cone import customer_cones
from .rank import ASRank, compute_rank

__all__ = [
    "ASTopology",
    "Relationship",
    "customer_cones",
    "ASRank",
    "compute_rank",
]
