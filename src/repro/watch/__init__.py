"""Watch: the continuous-operation subsystem (``borges watch``).

The paper's mapping is a living artifact — WHOIS records churn, M&A
events land, web evidence drifts — so a production Borges re-derives
and re-publishes continuously.  This package is the fault-tolerant loop
that does it without ever taking the serve tier down:

* :mod:`repro.watch.journal` — :class:`RunJournal`: an append-only,
  digest-chained JSONL record of every cycle; a ``kill -9``'d daemon
  replays it and resumes, skipping already-published dataset digests
  and quarantining digests that crashed the process twice;
* :mod:`repro.watch.archive` — :class:`SnapshotArchive`: every
  published generation as an immutable, digest-verified on-disk entry
  (never overwritten, bounded retention, oldest-first cleanup, free-disk
  guardrail), the CAIDA-style versioned-release discipline;
* :mod:`repro.watch.gate` — :class:`PublishGate`: candidate generations
  are diffed against the active one and refused when org count, ASN
  coverage, churn or ground-truth precision regress past thresholds;
* :mod:`repro.watch.diff` — :class:`GenerationDiff`: orgs merged/split
  and ASNs moved between any two generations (the ``/v1/diff`` body);
* :mod:`repro.watch.daemon` — :class:`WatchDaemon`: the supervised loop
  tying it together, with seeded-jitter backoff after failures and a
  restart budget that halts a wedged loop while serving continues.

The serve tier consumes the archive for time-travel queries
(``/v1/asn?gen=N``, ``/v1/diff?from=&to=``) and exposes the daemon via
``/v1/admin/watch``; ``scripts/watch_soak.py`` is the chaos soak that
holds the whole loop to zero 5xx.
"""

from .archive import DEFAULT_MAX_ENTRIES, SnapshotArchive
from .daemon import (
    OUTCOMES,
    SimulatedProcessKill,
    WatchConfig,
    WatchDaemon,
    WatchRunResult,
)
from .diff import GenerationDiff, diff_indexes
from .gate import GateDecision, GateThresholds, PublishGate
from .journal import QUARANTINE_CRASHES, RunJournal

__all__ = [
    "DEFAULT_MAX_ENTRIES",
    "SnapshotArchive",
    "OUTCOMES",
    "SimulatedProcessKill",
    "WatchConfig",
    "WatchDaemon",
    "WatchRunResult",
    "GenerationDiff",
    "diff_indexes",
    "GateDecision",
    "GateThresholds",
    "PublishGate",
    "QUARANTINE_CRASHES",
    "RunJournal",
]
