"""Request-scoped trace context: W3C ``traceparent`` in, trace IDs out.

Every serve request and pipeline run carries a :class:`TraceContext` —
a 128-bit trace ID naming the whole operation and a 64-bit span ID
naming the caller's position in it.  The context rides a
:mod:`contextvars` variable, so anything downstream (the span tracer,
the structured event log, the SLO exemplar store) can stamp the current
trace ID without threading an argument through every call.

Interop follows the W3C Trace Context spec for the ``traceparent``
header::

    traceparent: 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
                 ^^ ^^^^^^^^^^^^ trace-id ^^^^^^^^^ ^^ parent-id ^^^ ^^flags

:func:`parse_traceparent` is strict where the spec is strict — IDs must
be lowercase hex of exactly the right length and must not be all zeros,
version ``ff`` is forbidden — and lenient where the spec demands it:
an unknown future version is accepted as long as its first four fields
parse (extra fields are ignored).  The HTTP layer answers every request
with an ``x-borges-trace-id`` response header so clients can correlate
their call with the server's access log and exemplars.

Note that :mod:`contextvars` values do **not** cross thread boundaries:
a new thread starts with an empty context.  Code that fans work out to
workers (the stage executor, the HTTP server's handler threads) must
re-install the context explicitly — :func:`use_trace_context` is the
tool for that.
"""

from __future__ import annotations

import os
import random
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional

#: Incoming request header carrying the upstream trace context.
TRACEPARENT_HEADER = "traceparent"

#: Response header stamping the trace ID the server used for a request.
TRACE_RESPONSE_HEADER = "x-borges-trace-id"

TRACE_ID_HEX_LENGTH = 32
SPAN_ID_HEX_LENGTH = 16

_HEX_DIGITS = frozenset("0123456789abcdef")

#: ID generator.  Seeded from the OS once per process: IDs must be
#: unpredictable across processes but need no cryptographic strength,
#: and ``getrandbits`` is an order of magnitude cheaper than
#: ``os.urandom`` per call (the load generator mints one per request).
_RNG = random.Random(int.from_bytes(os.urandom(16), "big"))


def _is_lower_hex(value: str, length: int) -> bool:
    return len(value) == length and not set(value) - _HEX_DIGITS


def generate_trace_id() -> str:
    """A new 32-hex-char, non-zero trace ID."""
    value = 0
    while not value:
        value = _RNG.getrandbits(128)
    return f"{value:032x}"


def generate_span_id() -> str:
    """A new 16-hex-char, non-zero span ID."""
    value = 0
    while not value:
        value = _RNG.getrandbits(64)
    return f"{value:016x}"


class TraceContext:
    """One position in one distributed trace.

    A ``__slots__`` class rather than a dataclass: the serve tier builds
    one per request and the load generator one per simulated request, so
    construction cost is on the hot path (a frozen dataclass ``__init__``
    routes every field through ``object.__setattr__``).  Treat instances
    as immutable; the one sanctioned exception is the load generator,
    which reuses a single installed context across a run and re-stamps
    its ``trace_id`` per request to keep tracing overhead inside the
    throughput budget.
    """

    __slots__ = ("trace_id", "span_id", "flags")

    def __init__(self, trace_id: str, span_id: str, flags: int = 1) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.flags = flags

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceContext):
            return NotImplemented
        return (
            self.trace_id == other.trace_id
            and self.span_id == other.span_id
            and self.flags == other.flags
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id, self.flags))

    def __repr__(self) -> str:
        return (
            f"TraceContext(trace_id={self.trace_id!r}, "
            f"span_id={self.span_id!r}, flags={self.flags!r})"
        )

    @property
    def sampled(self) -> bool:
        return bool(self.flags & 0x01)

    def child(self) -> "TraceContext":
        """A new context in the same trace, one hop down."""
        return TraceContext(self.trace_id, generate_span_id(), self.flags)

    def to_traceparent(self) -> str:
        """The outgoing ``traceparent`` header value (version 00)."""
        return f"00-{self.trace_id}-{self.span_id}-{self.flags & 0xFF:02x}"


def new_trace_context() -> TraceContext:
    """A fresh root context (new trace, sampled)."""
    return TraceContext(generate_trace_id(), generate_span_id(), flags=1)


def parse_traceparent(header: Optional[str]) -> Optional[TraceContext]:
    """Parse a ``traceparent`` header; ``None`` for anything invalid.

    Per the W3C spec: the version is two lowercase hex chars and must
    not be ``ff``; the trace ID is 32 lowercase hex chars, the parent
    (span) ID 16, and neither may be all zeros; the flags are two hex
    chars.  A version ``00`` header must have exactly four fields;
    higher versions may carry extra fields, which are ignored.
    """
    if not header:
        return None
    parts = header.strip().split("-")
    if len(parts) < 4:
        return None
    version, trace_id, span_id, flags_hex = parts[:4]
    if not _is_lower_hex(version, 2) or version == "ff":
        return None
    if version == "00" and len(parts) != 4:
        return None
    if not _is_lower_hex(trace_id, TRACE_ID_HEX_LENGTH):
        return None
    if trace_id == "0" * TRACE_ID_HEX_LENGTH:
        return None
    if not _is_lower_hex(span_id, SPAN_ID_HEX_LENGTH):
        return None
    if span_id == "0" * SPAN_ID_HEX_LENGTH:
        return None
    if not _is_lower_hex(flags_hex, 2):
        return None
    return TraceContext(trace_id, span_id, int(flags_hex, 16))


# -- contextvar propagation ----------------------------------------------------

_CURRENT: "ContextVar[Optional[TraceContext]]" = ContextVar(
    "borges_trace_context", default=None
)


def current_trace_context() -> Optional[TraceContext]:
    """The context of the operation this code is running inside, if any."""
    return _CURRENT.get()


def set_trace_context(context: Optional[TraceContext]):
    """Install *context*; returns a token for :func:`reset_trace_context`."""
    return _CURRENT.set(context)


def reset_trace_context(token) -> None:
    _CURRENT.reset(token)


def ensure_trace_context() -> TraceContext:
    """The current context, installing a fresh root one if absent."""
    context = _CURRENT.get()
    if context is None:
        context = new_trace_context()
        _CURRENT.set(context)
    return context


@contextmanager
def use_trace_context(
    context: Optional[TraceContext] = None,
) -> Iterator[TraceContext]:
    """Install *context* (default: a fresh root) for the block's duration."""
    context = context or new_trace_context()
    token = _CURRENT.set(context)
    try:
        yield context
    finally:
        _CURRENT.reset(token)
