#!/usr/bin/env python
"""CI scale smoke: a 100k-ASN sharded run must be exact and bounded.

Runs ``borges run`` twice over the same ~100k-ASN universe — once with
``--shards 4`` and once with ``--shards 1`` — each in a fresh
subprocess (``ru_maxrss`` is a per-process high-water mark), then
asserts:

* the two saved mappings are **byte-identical** — sharding is an
  execution strategy, never a result change;
* neither run degraded;
* the sharded run's peak RSS (read from the telemetry manifest's
  ``process_peak_rss_bytes`` gauge) stays under a ceiling.

Run from the repository root::

    python scripts/scale_smoke.py

Exits non-zero with a diagnostic on any violation.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: ~100k ASNs under the default universe config.
DEFAULT_ORGS = 67_700

#: Peak-RSS ceiling for the sharded run.  Measured ~0.6 GiB at 100k
#: ASNs; 3 GiB leaves headroom for allocator noise without letting an
#: accidental full-universe copy (≫1 GiB at this scale) slip through.
DEFAULT_RSS_CEILING_GIB = 3.0


def run_borges(label: str, tmp: Path, orgs: int, shards: int) -> dict:
    mapping = tmp / f"mapping-{label}.json"
    manifest = tmp / f"manifest-{label}.json"
    cmd = [
        sys.executable, "-m", "repro.cli",
        "--telemetry-out", str(manifest),
        "--seed", "11",
        "--orgs", str(orgs),
        "run",
        "--shards", str(shards),
        "--save-mapping", str(mapping),
    ]
    env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
    start = time.perf_counter()
    proc = subprocess.run(
        cmd, cwd=ROOT, env=env, capture_output=True, text=True
    )
    seconds = time.perf_counter() - start
    if proc.returncode != 0:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        raise SystemExit(f"{label}: borges run failed ({proc.returncode})")
    if "DEGRADED" in proc.stdout:
        print(proc.stdout)
        raise SystemExit(f"{label}: run degraded")
    payload = json.loads(manifest.read_text())
    series = (
        payload.get("metrics", {})
        .get("process_peak_rss_bytes", {})
        .get("series", [])
    )
    peak_rss = max((entry.get("value", 0) for entry in series), default=0)
    print(
        f"{label}: {seconds:,.1f}s, peak rss "
        f"{peak_rss / (1 << 30):.2f} GiB, org_count "
        f"{payload.get('org_count'):,}"
    )
    return {
        "mapping": mapping.read_bytes(),
        "org_count": payload.get("org_count"),
        "peak_rss": peak_rss,
        "seconds": seconds,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--orgs", type=int, default=DEFAULT_ORGS)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument(
        "--rss-ceiling-gib", type=float, default=DEFAULT_RSS_CEILING_GIB
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp_name:
        tmp = Path(tmp_name)
        sharded = run_borges("sharded", tmp, args.orgs, args.shards)
        single = run_borges("single", tmp, args.orgs, 1)

    if sharded["mapping"] != single["mapping"]:
        print(
            f"FAIL: --shards {args.shards} mapping differs from --shards 1 "
            f"({sharded['org_count']} vs {single['org_count']} orgs)",
            file=sys.stderr,
        )
        return 1
    print(
        f"byte-identical mappings ({len(sharded['mapping']):,} bytes, "
        f"{sharded['org_count']:,} orgs)"
    )

    ceiling = args.rss_ceiling_gib * (1 << 30)
    if not sharded["peak_rss"]:
        print("FAIL: sharded manifest carries no peak-RSS gauge", file=sys.stderr)
        return 1
    if sharded["peak_rss"] > ceiling:
        print(
            f"FAIL: sharded peak RSS {sharded['peak_rss'] / (1 << 30):.2f} GiB "
            f"exceeds ceiling {args.rss_ceiling_gib} GiB",
            file=sys.stderr,
        )
        return 1
    print(
        f"peak RSS {sharded['peak_rss'] / (1 << 30):.2f} GiB "
        f"<= ceiling {args.rss_ceiling_gib} GiB"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
