"""Calibrated, deterministic error injection for the simulated LLM.

A perfect-oracle simulator would make the validation tables trivially
100% and distort every downstream number.  Real GPT-4o-mini errs at known
rates (Table 4: accuracy 0.947; Table 5: 0.986), so the simulated backend
passes its engine outputs through this error model.

Errors must be *deterministic* (the paper runs at temperature 0) and
*stable across runs*, so each decision is keyed by a hash of the seed and
the item's identity rather than by a shared RNG stream whose state would
depend on call order.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Tuple


def stable_unit(seed: int, *identity: object) -> float:
    """A deterministic pseudo-uniform value in [0, 1) for *identity*.

    Identical ``(seed, identity)`` always yields the same value,
    independent of call order — the property that makes temperature-0
    error injection reproducible.
    """
    hasher = hashlib.sha256()
    hasher.update(str(seed).encode("utf-8"))
    for part in identity:
        hasher.update(b"\x1f")
        hasher.update(repr(part).encode("utf-8"))
    (value,) = struct.unpack(">Q", hasher.digest()[:8])
    return value / float(2**64)


def stable_choice_index(seed: int, n: int, *identity: object) -> int:
    """A deterministic index in ``range(n)`` for *identity*."""
    if n <= 0:
        raise ValueError("n must be positive")
    return int(stable_unit(seed, "choice", *identity) * n) % n


class ErrorInjector:
    """Decides, per item, whether the simulated model slips.

    ``should(kind, *identity)`` answers one yes/no question at the rate
    configured for *kind*.  Distinct *kind* strings draw independent
    deterministic coins for the same item.
    """

    def __init__(self, seed: int, rates: dict) -> None:
        self._seed = seed
        self._rates = dict(rates)

    def rate(self, kind: str) -> float:
        return self._rates.get(kind, 0.0)

    def should(self, kind: str, *identity: object) -> bool:
        rate = self.rate(kind)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return stable_unit(self._seed, kind, *identity) < rate

    def pick(self, kind: str, options: Tuple, *identity: object):
        """Deterministically pick one of *options* for this item."""
        index = stable_choice_index(self._seed, len(options), kind, *identity)
        return options[index]
