"""Final isolated-unit batch: small helpers not yet directly exercised."""

import pytest

from repro.experiments.svg import _axis_ticks, _scale
from repro.llm.usage import TokenUsage
from repro.metrics.growth import baseline_components
from repro.metrics.partition import score_partition
from repro.universe.events import EventKind, MnAEvent, Timeline
from repro.universe.names import REGION_LANGUAGES, NameForge


class TestSvgInternals:
    def test_scale_endpoints(self):
        assert _scale(0, 0, 10, 100, 200) == 100
        assert _scale(10, 0, 10, 100, 200) == 200

    def test_scale_inverted_output_range(self):
        # SVG y-axes grow downward: out_lo > out_hi must work.
        assert _scale(5, 0, 10, 300, 100) == 200

    def test_scale_degenerate_domain(self):
        assert _scale(5, 5, 5, 0, 100) == 0  # span defaults to 1

    def test_axis_ticks_span(self):
        ticks = _axis_ticks(0.0, 100.0, count=5)
        assert ticks[0] == 0.0
        assert ticks[-1] == 100.0
        assert len(ticks) == 5

    def test_axis_ticks_flat_domain(self):
        ticks = _axis_ticks(7.0, 7.0)
        assert ticks[0] == 7.0


class TestTokenUsageEdge:
    def test_zero_usage_costs_nothing(self):
        assert TokenUsage().cost_usd() == 0.0

    def test_custom_prices(self):
        usage = TokenUsage(prompt_tokens=0, completion_tokens=1_000_000)
        assert usage.cost_usd(completion_per_million=2.0) == pytest.approx(2.0)


class TestTimelineQueries:
    def test_acquisitions_into(self):
        timeline = Timeline(
            events=[
                MnAEvent(EventKind.ACQUISITION, 2016, "lumen", "level3"),
                MnAEvent(EventKind.MERGER, 2022, "edgio", "edgecast"),
                MnAEvent(EventKind.SPINOFF, 2022, "lumen", "cirion"),
            ]
        )
        into_lumen = timeline.acquisitions_into("lumen")
        assert len(into_lumen) == 1
        assert into_lumen[0].object_id == "level3"

    def test_spinoff_describe(self):
        event = MnAEvent(EventKind.SPINOFF, 2022, "lumen", "cirion")
        assert "spins off" in event.describe()

    def test_rebrand_describe(self):
        event = MnAEvent(
            EventKind.REBRAND, 2020, "lumen", "centurylink", new_name="Lumen"
        )
        text = event.describe()
        assert "rebrands" in text and "Lumen" in text

    def test_len(self):
        assert len(Timeline(events=[])) == 0


class TestNameForgeLanguages:
    def test_language_matches_region_table(self):
        forge = NameForge(seed=3)
        for region, languages in REGION_LANGUAGES.items():
            for _ in range(10):
                assert forge.language_for(region) in languages

    def test_unknown_region_defaults_english(self):
        forge = NameForge(seed=3)
        assert forge.language_for("atlantis") == "en"


class TestMetricEdges:
    def test_baseline_components_identity(self):
        cluster = frozenset({1, 2})
        components = baseline_components(cluster, lambda asn: cluster)
        assert components == [cluster]

    def test_v_measure_single_cluster_both_sides(self):
        scores = score_partition([frozenset({1, 2, 3})], [frozenset({1, 2, 3})])
        assert scores.v_measure == pytest.approx(1.0)
        assert scores.adjusted_rand == pytest.approx(1.0)

    def test_homogeneity_degenerate_truth(self):
        # Truth is one blob: homogeneity is vacuously perfect for any
        # prediction (h_truth == 0 branch).
        scores = score_partition(
            [frozenset({1}), frozenset({2, 3})], [frozenset({1, 2, 3})]
        )
        assert scores.homogeneity == 1.0
