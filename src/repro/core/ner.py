"""The LLM-based NER module (§4.2): siblings from notes and aka.

Three stages, exactly as the paper describes:

1. **Input filter** — only records whose notes or aka contain digits are
   sent to the model (most free text carries no ASN information; this
   dropout filter saves model calls and improves accuracy).
2. **Information extraction** — the Listing-2 few-shot prompt is rendered
   per record and sent through the chat client; the JSON reply is parsed
   into candidate sibling ASNs.
3. **Output filter** — hallucination guard: only numbers literally
   present in the record's notes/aka survive; the record's own ASN and
   syntactically invalid ASNs are dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from ..config import BorgesConfig
from ..errors import LLMResponseError
from ..logutil import get_logger
from ..llm.client import ChatClient, ChatMessage
from ..llm.extraction_engine import contains_number, find_all_numbers
from ..llm.parsing import parse_extraction_reply
from ..llm.prompts import render_extraction_prompt
from ..peeringdb import Network, PDBSnapshot
from ..types import ASN, Cluster, is_valid_asn

_LOG = get_logger("core.ner")


@dataclass(frozen=True)
class NERRecordResult:
    """Extraction outcome for one PeeringDB record."""

    asn: ASN
    raw_extracted: Tuple[ASN, ...]
    siblings: Tuple[ASN, ...]
    filtered_out: Tuple[ASN, ...]
    reasoning: str = ""
    parse_failed: bool = False

    @property
    def cluster(self) -> Cluster:
        """The sibling cluster this record induces (itself + siblings)."""
        return frozenset((self.asn,) + self.siblings)


@dataclass
class NERStats:
    """Counters mirroring §5.2's notes-and-aka accounting."""

    records_total: int = 0
    records_with_text: int = 0
    records_numeric: int = 0
    records_queried: int = 0
    records_with_siblings: int = 0
    asns_extracted: int = 0
    parse_failures: int = 0


class NERModule:
    """Runs the three-stage extraction over a PeeringDB snapshot."""

    def __init__(self, client: ChatClient, config: Optional[BorgesConfig] = None) -> None:
        self._client = client
        self._config = (config or BorgesConfig()).validate()
        self.stats = NERStats()

    def run(self, pdb: PDBSnapshot) -> List[NERRecordResult]:
        """Extract siblings for every eligible record in *pdb*."""
        results: List[NERRecordResult] = []
        for net in pdb.networks():
            self.stats.records_total += 1
            if not net.freeform_text:
                continue
            self.stats.records_with_text += 1
            numeric = contains_number(net.freeform_text)
            if numeric:
                self.stats.records_numeric += 1
            if self._config.ner_input_filter and not numeric:
                continue
            result = self.extract_record(net)
            results.append(result)
            if result.siblings:
                self.stats.records_with_siblings += 1
                self.stats.asns_extracted += len(result.siblings)
        return results

    def extract_record(self, net: Network) -> NERRecordResult:
        """Stages 2–3 for a single record."""
        self.stats.records_queried += 1
        prompt = render_extraction_prompt(net.asn, net.notes, net.aka)
        response = self._client.chat([ChatMessage(role="user", content=prompt)])
        try:
            parsed = parse_extraction_reply(response.content)
        except LLMResponseError as exc:
            self.stats.parse_failures += 1
            _LOG.warning("unparsable extraction reply for AS%d: %s", net.asn, exc)
            return NERRecordResult(
                asn=net.asn, raw_extracted=(), siblings=(),
                filtered_out=(), parse_failed=True,
            )
        siblings, filtered = self._output_filter(net, parsed.sibling_asns)
        return NERRecordResult(
            asn=net.asn,
            raw_extracted=parsed.sibling_asns,
            siblings=tuple(sorted(siblings)),
            filtered_out=tuple(sorted(filtered)),
            reasoning=parsed.reasoning,
        )

    def _output_filter(
        self, net: Network, candidates: Sequence[ASN]
    ) -> Tuple[Set[ASN], Set[ASN]]:
        """Keep only literal, valid, non-self ASNs (the §4.2 guard)."""
        keep: Set[ASN] = set()
        dropped: Set[ASN] = set()
        literal_numbers = (
            set(find_all_numbers(net.freeform_text))
            if self._config.ner_output_filter
            else None
        )
        for candidate in candidates:
            candidate = int(candidate)
            if candidate == net.asn or not is_valid_asn(candidate):
                dropped.add(candidate)
                continue
            if literal_numbers is not None and candidate not in literal_numbers:
                dropped.add(candidate)
                continue
            keep.add(candidate)
        return keep, dropped

    def clusters(self, results: Sequence[NERRecordResult]) -> List[Cluster]:
        """The feature's sibling clusters (records with ≥1 sibling)."""
        return [r.cluster for r in results if r.siblings]
