"""Fault-tolerant sharded execution: retry, watchdog, salvage, resume.

The contract under test is *graceful degradation with exact recovery*:

* a shard attempt that raises, crashes its forked child, or outlives the
  deadline is retried; one that exhausts its budget is quarantined and
  the run completes ``degraded`` over the survivors;
* the salvaged mapping equals the unsharded mapping restricted to the
  surviving shards' ASNs — no invented knowledge about dead shards;
* with a checkpoint, ``resume=True`` re-runs only the missing shards and
  converges to a mapping byte-identical to the uninterrupted run;
* the supervised fan-out never blocks past ``deadline × (retries + 1)``
  (plus backoff) per task.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.config import BorgesConfig, UniverseConfig
from repro.core import BorgesPipeline, run_sharded
from repro.core.checkpoint import RunCheckpoint, run_identity
from repro.obs import MetricsRegistry
from repro.resilience.faults import (
    PROFILES,
    resolve_fault_profile,
    shard_fault_decision,
)
from repro.serve.shm.pool import ForkedOutcome, run_supervised
from repro.universe import generate_universe

SMALL = UniverseConfig(seed=3, n_organizations=100)


@pytest.fixture(scope="module")
def small_universe():
    return generate_universe(SMALL)


def mapping_bytes(mapping, tmp_path, name):
    path = tmp_path / name
    mapping.save(path)
    return path.read_bytes()


def cluster_key(mapping):
    return sorted(sorted(cluster) for cluster in mapping.clusters())


# -- the supervised fan-out -------------------------------------------------


class TestRunSupervised:
    def test_all_ok_returns_values_in_order(self):
        outcomes = run_supervised(
            [lambda a, i=i: i * 10 for i in range(4)], mode="thread"
        )
        assert [o.value for o in outcomes] == [0, 10, 20, 30]
        assert all(o.ok and o.attempts == 1 for o in outcomes)

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_flaky_task_recovers_on_retry(self, mode):
        def flaky(attempt: int):
            if attempt == 0:
                raise RuntimeError("first attempt dies")
            return "recovered"

        (outcome,) = run_supervised([flaky], mode=mode, retries=2)
        assert outcome.ok
        assert outcome.value == "recovered"
        assert outcome.attempts == 2
        assert outcome.retries == 1

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_always_failing_task_quarantined(self, mode):
        def doomed(attempt: int):
            raise ValueError(f"doomed on {attempt}")

        (outcome,) = run_supervised([doomed], mode=mode, retries=1)
        assert not outcome.ok
        assert outcome.attempts == 2
        assert outcome.exit_reason == "error"
        assert "doomed" in outcome.error

    def test_process_crash_is_reported_not_raised(self):
        def crash(attempt: int):
            os._exit(41)

        (outcome,) = run_supervised([crash], mode="process", retries=1)
        assert not outcome.ok
        assert outcome.exit_reason == "crashed"
        assert outcome.attempts == 2

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_hung_task_killed_within_wall_clock_bound(self, mode):
        """The tight regression test: never blocks past deadline×(retries+1)."""
        deadline, retries = 0.4, 1

        def hang(attempt: int):
            time.sleep(60.0)
            return "never"

        started = time.monotonic()
        (outcome,) = run_supervised(
            [hang], mode=mode, deadline=deadline, retries=retries
        )
        elapsed = time.monotonic() - started
        assert not outcome.ok
        assert outcome.exit_reason == "deadline"
        assert outcome.attempts == retries + 1
        # deadline × attempts, plus generous supervision/backoff slack —
        # nowhere near the 60 s the task wanted.
        assert elapsed < deadline * (retries + 1) + 2.0

    def test_heartbeats_counted_in_process_mode(self):
        def slow_but_alive(attempt: int):
            time.sleep(0.5)
            return "done"

        (outcome,) = run_supervised(
            [slow_but_alive],
            mode="process",
            deadline=5.0,
            heartbeat_interval=0.05,
        )
        assert outcome.ok
        assert outcome.heartbeats > 0

    def test_fail_fast_cancels_siblings(self):
        def doomed(attempt: int):
            raise RuntimeError("die early")

        def slow(attempt: int):
            time.sleep(0.2)
            return "late"

        outcomes = run_supervised(
            [doomed] + [slow] * 3,
            mode="thread",
            max_workers=1,
            fail_fast=True,
        )
        assert not outcomes[0].ok
        assert any(o.exit_reason == "cancelled" for o in outcomes[1:])

    def test_outcome_json_round_trip(self):
        (outcome,) = run_supervised([lambda a: "x"], mode="thread")
        record = outcome.to_json()
        assert record["ok"] is True
        assert record["attempts"] == 1
        assert record["retries"] == 0
        json.dumps(record)  # must be serialisable as-is

    def test_unknown_mode_rejected(self):
        from repro.errors import ServeError

        with pytest.raises(ServeError):
            run_supervised([lambda a: 1], mode="coroutine")


# -- deterministic shard fault decisions ------------------------------------


class TestShardFaultDecision:
    def test_crash_is_attempt_independent(self):
        profile = PROFILES["shard-crash"]
        for shard in range(8):
            first = shard_fault_decision(profile, 7, shard, 0)
            for attempt in range(1, 4):
                assert shard_fault_decision(profile, 7, shard, attempt) == first

    def test_flaky_only_poisons_attempt_zero(self):
        profile = PROFILES["shard-flaky"]
        decisions = [shard_fault_decision(profile, 7, s, 0) for s in range(16)]
        assert any(d == "crash" for d in decisions)
        assert all(
            shard_fault_decision(profile, 7, s, 1) is None for s in range(16)
        )

    def test_clean_profile_never_faults(self):
        profile = resolve_fault_profile("none")
        assert all(
            shard_fault_decision(profile, seed, shard, 0) is None
            for seed in range(3)
            for shard in range(8)
        )


# -- the run checkpoint -----------------------------------------------------


class TestRunCheckpoint:
    def test_begin_and_resume_same_identity(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path / "ckpt.jsonl")
        identity = run_identity({"whois": "d1"}, "cfg", 4, ["a", "b"])
        assert checkpoint.begin(identity, 4) == {}
        checkpoint.record_shard(
            2, merged=[frozenset({1, 2})], features={"rr": [frozenset({1, 2})]}
        )
        reopened = RunCheckpoint(tmp_path / "ckpt.jsonl")
        completed = reopened.begin(identity, 4)
        assert sorted(completed) == [2]
        assert RunCheckpoint.shard_clusters(completed[2]) == [frozenset({1, 2})]
        assert RunCheckpoint.shard_feature_clusters(completed[2]) == {
            "rr": [frozenset({1, 2})]
        }

    def test_identity_change_resets_file(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path / "ckpt.jsonl")
        checkpoint.begin("identity-a", 2)
        checkpoint.record_shard(0, merged=[frozenset({1})], features={})
        assert checkpoint.begin("identity-b", 2) == {}
        assert checkpoint.completed_shards("identity-a") == {}

    def test_corrupt_tail_dropped_and_survivors_kept(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        checkpoint = RunCheckpoint(path)
        checkpoint.begin("identity-a", 3)
        checkpoint.record_shard(0, merged=[frozenset({1})], features={})
        checkpoint.record_shard(1, merged=[frozenset({2})], features={})
        # Torn final write: a crash mid-append leaves half a JSON line.
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"torn":')
        reopened = RunCheckpoint(path)
        assert reopened.dropped_tail == 1
        assert sorted(reopened.begin("identity-a", 3)) == [0, 1]

    def test_identity_ignores_resilience_and_executor_config(self):
        import dataclasses

        from repro.config import ExecutorConfig, ResilienceConfig
        from repro.digest import stable_digest

        chaos = BorgesConfig().with_fault_profile("shard-crash")
        clean = BorgesConfig()

        def fingerprint(config):
            return stable_digest(
                dataclasses.replace(
                    config,
                    resilience=ResilienceConfig(),
                    executor=ExecutorConfig(),
                )
            )

        assert fingerprint(chaos) == fingerprint(clean)


# -- sharded runs under chaos -----------------------------------------------


class TestShardedChaos:
    def test_shard_crash_quarantines_and_salvages(
        self, small_universe, tmp_path
    ):
        """shard-crash at 4 shards: degraded, quarantined, salvage exact."""
        u = small_universe
        registry = MetricsRegistry()
        chaos = BorgesConfig().with_fault_profile("shard-crash")
        result = run_sharded(
            u.whois, u.pdb, u.web, chaos, 4,
            registry=registry,
            checkpoint_path=tmp_path / "ckpt.jsonl",
            shard_retries=1,
        )
        assert result.degraded is True
        assert result.failed_shards, "shard-crash at 4 shards must quarantine"
        posture = result.shard_posture()
        assert posture["degraded"] is True
        assert posture["failed"] == result.failed_shards
        assert posture["ok"] == 4 - len(result.failed_shards)
        # Attempt records: every quarantined shard exhausted its budget.
        by_shard = {int(r["shard"]): r for r in result.shard_attempts}
        for index in result.failed_shards:
            assert by_shard[index]["attempts"] == 2
            assert by_shard[index]["ok"] is False
            assert f"shard:{index}" in result.feature_errors
        fault = result.diagnostics["fault_tolerance"]
        assert fault["failed_shards"] == result.failed_shards
        assert fault["salvaged_shards"], "survivors must be salvaged"
        # Salvage contract (satellite): degraded mapping == unsharded
        # mapping restricted to the surviving shards' ASNs.
        flat = BorgesPipeline(u.whois, u.pdb, u.web, BorgesConfig()).run()
        survivors = set()
        for shard in result.partition.shards:
            if shard.index not in result.failed_shards:
                survivors.update(shard.asns)
        restricted = [
            trimmed
            for trimmed in (
                frozenset(cluster) & survivors
                for cluster in flat.mapping.clusters()
            )
            if trimmed
        ]
        assert cluster_key(result.mapping) == sorted(
            sorted(cluster) for cluster in restricted
        )
        # Telemetry: quarantine/retry counters and attempt histograms.
        from repro.obs import render_prometheus

        rendered = render_prometheus(registry)
        assert "pipeline_shard_quarantined_total" in rendered
        assert "pipeline_shard_attempts" in rendered
        assert registry.gauge(
            "pipeline_shards_failed", ""
        ).value == len(result.failed_shards)

    def test_resume_converges_to_byte_identical_mapping(
        self, small_universe, tmp_path
    ):
        """Fault cleared + --resume: only failed shards re-run, bytes equal."""
        u = small_universe
        ckpt = tmp_path / "ckpt.jsonl"
        chaos = BorgesConfig().with_fault_profile("shard-crash")
        degraded = run_sharded(
            u.whois, u.pdb, u.web, chaos, 4,
            checkpoint_path=ckpt, shard_retries=1,
        )
        assert degraded.failed_shards
        clean = BorgesConfig()
        resumed = run_sharded(
            u.whois, u.pdb, u.web, clean, 4,
            checkpoint_path=ckpt, resume=True,
        )
        assert resumed.failed_shards == []
        assert resumed.degraded is False
        # Resume re-ran only the previously-failed shards.
        assert sorted(resumed.resumed_shards) == sorted(
            set(range(4)) - set(degraded.failed_shards)
        )
        reference = run_sharded(u.whois, u.pdb, u.web, clean, 4)
        unsharded = BorgesPipeline(u.whois, u.pdb, u.web, clean).run()
        assert mapping_bytes(resumed.mapping, tmp_path, "resumed.json") == (
            mapping_bytes(reference.mapping, tmp_path, "reference.json")
        )
        assert mapping_bytes(resumed.mapping, tmp_path, "r2.json") == (
            mapping_bytes(unsharded.mapping, tmp_path, "flat.json")
        )

    def test_shard_flaky_recovers_clean_via_retry(self, small_universe):
        """flaky faults die on attempt 0 only: retries make the run exact."""
        u = small_universe
        flaky = BorgesConfig().with_fault_profile("shard-flaky")
        result = run_sharded(u.whois, u.pdb, u.web, flaky, 4, shard_retries=2)
        assert result.failed_shards == []
        assert result.degraded is False
        fault = result.diagnostics["fault_tolerance"]
        assert fault["retry_total"] > 0, "shard-flaky must force retries"
        clean = run_sharded(u.whois, u.pdb, u.web, BorgesConfig(), 4)
        assert cluster_key(result.mapping) == cluster_key(clean.mapping)

    def test_shard_hang_killed_at_deadline_and_bounded(self, small_universe):
        u = small_universe
        chaos = BorgesConfig().with_fault_profile("shard-hang")
        started = time.monotonic()
        result = run_sharded(
            u.whois, u.pdb, u.web, chaos, 4,
            shard_deadline=0.5, shard_retries=1,
        )
        elapsed = time.monotonic() - started
        assert result.failed_shards, "shard-hang at 4 shards must quarantine"
        by_shard = {int(r["shard"]): r for r in result.shard_attempts}
        for index in result.failed_shards:
            assert by_shard[index]["exit_reason"] == "deadline"
        # Serial under chaos: 4 shards × deadline × 2 attempts + slack.
        assert elapsed < 4 * 0.5 * 2 + 10.0

    def test_all_shards_lost_raises(self, small_universe):
        from repro.errors import DataError

        u = small_universe
        # Every attempt of every shard crashes: nothing to salvage.
        chaos = BorgesConfig().with_fault_profile("shard-crash")
        profile = resolve_fault_profile("shard-crash")
        import dataclasses

        total = dataclasses.replace(profile, shard_crash=1.0)
        import repro.resilience.faults as faults_module

        original = faults_module.PROFILES["shard-crash"]
        faults_module.PROFILES["shard-crash"] = total
        try:
            with pytest.raises(DataError, match="nothing to salvage"):
                run_sharded(
                    u.whois, u.pdb, u.web, chaos, 4, shard_retries=0
                )
        finally:
            faults_module.PROFILES["shard-crash"] = original

    def test_thread_exception_names_its_shard(self, small_universe):
        """A shard failure's message carries the shard index (satellite)."""
        u = small_universe
        chaos = BorgesConfig().with_fault_profile("shard-crash")
        result = run_sharded(
            u.whois, u.pdb, u.web, chaos, 4, shard_retries=0
        )
        for index in result.failed_shards:
            error = result.feature_errors[f"shard:{index}"]
            assert f"shard {index}:" in error


# -- watch / serve surfacing ------------------------------------------------


class TestShardPostureSurfacing:
    def test_watch_status_and_healthz_carry_posture(self, tmp_path):
        from repro.core.mapping import OrgMapping
        from repro.obs import MetricsRegistry
        from repro.serve import QueryService
        from repro.serve.store import SnapshotStore
        from repro.watch import (
            RunJournal,
            SnapshotArchive,
            WatchConfig,
            WatchDaemon,
            WatchRunResult,
        )

        registry = MetricsRegistry()
        store = SnapshotStore(registry=registry)
        archive = SnapshotArchive(tmp_path / "archive", registry=registry)
        journal = RunJournal(tmp_path / "journal.jsonl")
        posture = {
            "shards": 4, "ok": 3, "failed": [2], "resumed": [],
            "retries": 1, "degraded": True,
        }
        mapping = OrgMapping(
            universe=[1, 2, 3],
            clusters=[frozenset({1, 2})],
            method="test",
        )

        def runner():
            return WatchRunResult(
                mapping=mapping,
                dataset_digest="d1",
                shard_posture=posture,
            )

        daemon = WatchDaemon(
            store, archive, journal, runner,
            WatchConfig(interval=0.0, max_cycles=1),
            registry=registry,
        )
        daemon.cycle()
        assert daemon.status()["last_shard_posture"] == posture
        service = QueryService(store=store, registry=registry)
        service.attach_watch(daemon)
        ready, body = service.health()
        assert ready
        assert body["watch"]["shard_posture"] == posture

    def test_top_renders_shard_posture_line(self):
        from repro.serve.top import TopView

        view = TopView("http://127.0.0.1:1")
        state = {
            "at": time.time(),
            "metrics": {},
            "health": {
                "status": "ok",
                "watch": {
                    "running": True,
                    "shard_posture": {
                        "shards": 4, "ok": 3, "failed": [2],
                        "resumed": [0], "retries": 2, "degraded": True,
                    },
                },
            },
        }
        rendered = view.render(state)
        assert "shards 3/4 ok" in rendered
        assert "QUARANTINED [2]" in rendered
        assert "retries 2" in rendered
