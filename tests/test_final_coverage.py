"""Last-mile coverage: formatting, stats counters, constant sanity."""

import pytest

from repro.config import TEST_UNIVERSE, UniverseConfig
from repro.experiments.report import _fmt, render_table


class TestFormatting:
    def test_int_thousands(self):
        assert _fmt(1234567) == "1,234,567"

    def test_whole_float_rendered_as_int(self):
        assert _fmt(42.0) == "42"

    def test_large_float_one_decimal(self):
        assert _fmt(12345.678) == "12,345.7"

    def test_small_float_four_decimals(self):
        assert _fmt(0.34567) == "0.3457"

    def test_bool_not_treated_as_number(self):
        assert _fmt(True) == "True"

    def test_string_passthrough(self):
        assert _fmt("Borges") == "Borges"

    def test_missing_column_renders_empty(self):
        text = render_table([{"a": 1, "b": 2}, {"a": 3}])
        assert text  # no KeyError


class TestTestUniverseConstant:
    def test_is_valid(self):
        TEST_UNIVERSE.validate()

    def test_small_enough_for_fast_tests(self):
        assert TEST_UNIVERSE.n_organizations <= 1000

    def test_differs_from_default_seed(self):
        assert TEST_UNIVERSE.seed != UniverseConfig().seed


class TestPipelineStatsCounters:
    def test_ner_stats_consistent(self, pipeline, borges_result):
        stats = pipeline._ner.stats
        assert stats.records_total >= stats.records_with_text
        assert stats.records_with_text >= stats.records_numeric
        # The input filter queried exactly the numeric records (possibly
        # accumulated across the pipeline run and validation reruns).
        assert stats.records_queried >= stats.records_numeric
        assert stats.asns_extracted >= stats.records_with_siblings

    def test_web_stats_consistent(self, borges_result):
        stats = borges_result.web_result.stats
        assert stats.unique_urls <= stats.nets_with_website
        assert stats.reachable_urls <= stats.unique_urls
        assert stats.unique_final_urls <= stats.reachable_urls + 1
        assert stats.shared_favicon_groups <= stats.unique_favicons
        assert (
            stats.llm_groups_accepted + stats.llm_groups_rejected
            <= stats.shared_favicon_groups
        )

    def test_mapping_cluster_order(self, borges_mapping):
        clusters = borges_mapping.clusters()
        sizes = [len(c) for c in clusters]
        assert sizes == sorted(sizes, reverse=True)
        multi = borges_mapping.multi_asn_clusters()
        assert all(len(c) > 1 for c in multi)
        assert len(multi) < len(clusters)
