"""Longitudinal bench: organizational evolution across snapshots.

Extension of the paper's §7 future work — no paper table exists; the
assertions pin the qualitative dynamics: consolidation is monotone in
time (θ up, org count down), the canonical merger stories flip from
"independent" to "sibling" at their event years, and merge events are
recovered between consecutive snapshots.
"""

from repro.longitudinal import build_snapshot_series, run_longitudinal_study
from repro.universe.canonical import (
    AS_CENTURYLINK,
    AS_CLEARWIRE,
    AS_LUMEN,
    AS_TMOBILE_US,
)


def test_longitudinal_evolution(benchmark, ctx):
    universe = ctx.universe
    series = build_snapshot_series(universe, years=(2008, 2015, 2019, 2024))
    report = benchmark.pedantic(
        lambda: run_longitudinal_study(series), rounds=1, iterations=1
    )

    print()
    for result in report.results:
        print(
            f"  {result.year}: theta={result.theta:.4f} "
            f"orgs={result.org_count:,}"
        )
    print(f"  merge events detected: {len(report.merges)}")

    thetas = [r.theta for r in report.results]
    counts = [r.org_count for r in report.results]
    assert all(b >= a - 1e-9 for a, b in zip(thetas, thetas[1:]))
    assert all(b <= a for a, b in zip(counts, counts[1:]))
    assert report.merges

    by_year = {r.year: r.mapping for r in report.results}
    # CenturyLink (2016): split in 2015, together by 2019.
    assert not by_year[2015].are_siblings(AS_LUMEN, AS_CENTURYLINK)
    assert by_year[2019].are_siblings(AS_LUMEN, AS_CENTURYLINK)
    # Clearwire (2020): split in 2019, together by 2024.
    assert not by_year[2019].are_siblings(AS_CLEARWIRE, AS_TMOBILE_US)
    assert by_year[2024].are_siblings(AS_CLEARWIRE, AS_TMOBILE_US)
