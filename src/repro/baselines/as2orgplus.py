"""The as2org+ baseline (Arturi et al., PAM 2023).

Extends AS2Org with PeeringDB: OID_P clusters, plus (optionally) regex
extraction from notes/aka.  §5.1 of the Borges paper evaluates as2org+
in a "simple setup that uses only pdb.org_id" with all manual steps
removed — the default here.  Enabling ``use_regex_extraction`` runs the
published regex machinery (with its customer-to-provider filter when a
topology is supplied), which is what the extraction ablations compare
against the LLM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..asrank.topology import ASTopology
from ..core.mapping import OrgMapping
from ..core.org_keys import oid_p_clusters, oid_w_clusters
from ..peeringdb import PDBSnapshot
from ..types import Cluster
from ..whois import WhoisDataset
from .regex_extract import filter_provider_relations, regex_extract_asns


@dataclass(frozen=True)
class As2OrgPlusConfig:
    """Which parts of the as2org+ methodology to run."""

    #: The paper's benchmark configuration is OID_P only (False here).
    use_regex_extraction: bool = False
    #: Loose regexes also match bare numbers (the published behaviour).
    loose_regex: bool = True
    #: Apply the customer-to-provider filter (needs a topology).
    provider_filter: bool = True


def as2orgplus_text_clusters(
    pdb: PDBSnapshot,
    config: As2OrgPlusConfig,
    topology: Optional[ASTopology] = None,
) -> List[Cluster]:
    """Regex-extracted sibling clusters from notes/aka."""
    clusters: List[Cluster] = []
    for net in pdb.networks():
        text = net.freeform_text
        if not text:
            continue
        candidates = regex_extract_asns(text, own_asn=net.asn, loose=config.loose_regex)
        if config.provider_filter and topology is not None:
            candidates = filter_provider_relations(net.asn, candidates, topology)
        if candidates:
            clusters.append(frozenset([net.asn, *candidates]))
    return clusters


def build_as2orgplus_mapping(
    whois: WhoisDataset,
    pdb: PDBSnapshot,
    config: Optional[As2OrgPlusConfig] = None,
    topology: Optional[ASTopology] = None,
) -> OrgMapping:
    """The as2org+ mapping over a WHOIS dataset + PeeringDB snapshot."""
    config = config or As2OrgPlusConfig()
    clusters: List[Cluster] = []
    clusters.extend(oid_w_clusters(whois))
    clusters.extend(oid_p_clusters(pdb))
    if config.use_regex_extraction:
        clusters.extend(as2orgplus_text_clusters(pdb, config, topology))
    method = "as2org+[regex]" if config.use_regex_extraction else "as2org+"
    org_names = {asn: whois.org_name_of(asn) for asn in whois.asns()}
    return OrgMapping(
        universe=whois.asns(),
        clusters=clusters,
        method=method,
        org_names=org_names,
    )
