"""Chen et al.'s mismatch-driven sibling refinement (PAM 2023).

§2.1: "Chen et al. followed a complementary path, identifying mismatches
between CAIDA's AS2Org dataset and PeeringDB's records.  Their method
flags these discrepancies as candidates for reclassification and uses
keyword matching along with semi-manual inspection to refine mappings."

Implemented fully automated (like the paper evaluates as2org+): a
*mismatch candidate* is a pair of ASNs grouped by exactly one of the two
org-ID sources; the candidate is accepted when the WHOIS/PDB organization
names behind the pair agree on their distinctive keywords.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set

from ..core.mapping import OrgMapping
from ..core.org_keys import oid_w_clusters
from ..peeringdb import PDBSnapshot
from ..types import ASN, Cluster
from ..whois import WhoisDataset

#: Generic corporate tokens that carry no identity signal.
_STOPWORDS = frozenset(
    {
        "the", "of", "and", "de", "do", "da", "llc", "inc", "ltd", "sa",
        "sas", "gmbh", "ag", "bv", "plc", "co", "corp", "company",
        "telecom", "telekom", "telecommunications", "communications",
        "comunicaciones", "internet", "network", "networks", "net",
        "cable", "fibra", "broadband", "wireless", "movil", "carrier",
        "services", "group", "holdings", "international", "global",
    }
)

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def name_keywords(name: str) -> FrozenSet[str]:
    """The distinctive tokens of an organization name."""
    tokens = set(_TOKEN_RE.findall(name.lower()))
    distinctive = tokens - _STOPWORDS
    return frozenset(t for t in distinctive if len(t) >= 3 or t.isdigit())


def keyword_match(name_a: str, name_b: str) -> bool:
    """Do two org names share any distinctive keyword?"""
    return bool(name_keywords(name_a) & name_keywords(name_b))


@dataclass(frozen=True)
class MismatchCandidate:
    """A sibling candidate one source asserts and the other misses."""

    cluster: Cluster
    source: str  # "pdb_only" or "whois_only"
    accepted: bool
    reason: str


def _member_text(pdb: PDBSnapshot, asn: ASN) -> str:
    """The PDB-side text Chen et al. keyword-match for one network."""
    net = pdb.nets[asn]
    return " ".join((net.name, net.aka, net.notes))


def find_mismatch_candidates(
    whois: WhoisDataset, pdb: PDBSnapshot
) -> List[MismatchCandidate]:
    """All cross-source disagreements, scored by keyword matching."""
    whois_org_of: Dict[ASN, str] = {
        asn: whois.org_id_of(asn) for asn in whois.asns()
    }
    candidates: List[MismatchCandidate] = []
    for org_id, members in sorted(pdb.org_members().items()):
        if len(members) < 2:
            continue
        whois_orgs = {whois_org_of.get(a) for a in members}
        whois_orgs.discard(None)
        if len(whois_orgs) <= 1:
            continue  # sources agree
        # PDB groups what WHOIS splits: accept when, for every WHOIS org
        # in the span, the PDB-side text of its member nets (name, aka,
        # notes — what Chen et al. keyword-match against) shares
        # distinctive keywords with the PDB organization's name or with
        # the other WHOIS orgs' names.
        pdb_name = pdb.orgs[org_id].name
        names = [whois.orgs[w].name for w in sorted(whois_orgs)]
        reference = pdb_name + " " + " ".join(names)
        members_by_whois: Dict[str, List[ASN]] = {}
        for asn in members:
            whois_org = whois_org_of.get(asn)
            if whois_org is not None:
                members_by_whois.setdefault(whois_org, []).append(asn)
        accepted = all(
            any(
                keyword_match(_member_text(pdb, asn), reference)
                for asn in member_asns
            )
            for member_asns in members_by_whois.values()
        )
        reason = (
            f"PDB org {pdb_name!r} spans WHOIS orgs {names}"
            + ("; keywords agree" if accepted else "; keywords disagree")
        )
        candidates.append(
            MismatchCandidate(
                cluster=frozenset(members),
                source="pdb_only",
                accepted=accepted,
                reason=reason,
            )
        )
    return candidates


def build_chen_mapping(
    whois: WhoisDataset, pdb: PDBSnapshot
) -> OrgMapping:
    """The mismatch-refinement mapping: AS2Org + accepted candidates."""
    clusters: List[Cluster] = list(oid_w_clusters(whois))
    clusters.extend(
        c.cluster for c in find_mismatch_candidates(whois, pdb) if c.accepted
    )
    org_names = {asn: whois.org_name_of(asn) for asn in whois.asns()}
    return OrgMapping(
        universe=whois.asns(),
        clusters=clusters,
        method="chen-mismatch",
        org_names=org_names,
    )
