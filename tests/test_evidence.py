"""Tests for evidence collection and the mapping explainer."""

import pytest

from repro.core.evidence import Evidence, MappingExplainer, collect_evidence
from repro.universe.canonical import (
    AS_CENTURYLINK,
    AS_CLEARWIRE,
    AS_COGENT,
    AS_DEUTSCHE_TELEKOM,
    AS_EDGECAST,
    AS_LIMELIGHT,
    AS_LUMEN,
    AS_MAXIHOST,
    AS_SLOVAK_TELEKOM,
    AS_TMOBILE_US,
)


@pytest.fixture(scope="module")
def explainer(borges_result, universe):
    evidence = collect_evidence(borges_result, universe.whois, universe.pdb)
    return MappingExplainer(evidence)


class TestEvidenceCollection:
    def test_all_features_produce_evidence(self, explainer):
        stats = explainer.stats()
        for feature in ("oid_w", "oid_p", "notes_aka", "rr", "favicons"):
            assert stats.get(feature, 0) > 0, stats

    def test_evidence_covers_multi_asn_assertions_only(self, explainer):
        for item in explainer._evidence:
            assert len(item.asns) >= 2

    def test_describe_readable(self, explainer):
        text = explainer._evidence[0].describe()
        assert text.startswith("[")
        assert "AS" in text


class TestExplainer:
    def test_lumen_centurylink_explained_by_oid_p(self, explainer):
        chain = explainer.why_siblings(AS_LUMEN, AS_CENTURYLINK)
        assert chain is not None
        assert any(e.feature == "oid_p" for e in chain)

    def test_dtag_subsidiary_explained_by_notes(self, explainer):
        chain = explainer.why_siblings(AS_DEUTSCHE_TELEKOM, AS_SLOVAK_TELEKOM)
        assert chain is not None
        features = {e.feature for e in chain}
        assert "notes_aka" in features or "favicons" in features

    def test_edgio_explained_by_rr(self, explainer):
        chain = explainer.why_siblings(AS_EDGECAST, AS_LIMELIGHT)
        assert chain is not None
        assert any(e.feature == "rr" for e in chain)
        assert any("edg.io" in e.detail for e in chain if e.feature == "rr")

    def test_clearwire_chain_is_multi_hop_or_direct(self, explainer):
        chain = explainer.why_siblings(AS_CLEARWIRE, AS_TMOBILE_US)
        assert chain is not None
        assert 1 <= len(chain) <= 4

    def test_unrelated_asns_have_no_chain(self, explainer):
        assert explainer.why_siblings(AS_MAXIHOST, AS_COGENT) is None

    def test_self_query_is_empty_chain(self, explainer):
        assert explainer.why_siblings(AS_LUMEN, AS_LUMEN) == []

    def test_unknown_asn_returns_none(self, explainer):
        assert explainer.why_siblings(AS_LUMEN, 999_999_999) is None

    def test_chain_is_connected(self, explainer, borges_mapping):
        """Every returned chain must actually connect its endpoints."""
        chain = explainer.why_siblings(AS_CLEARWIRE, AS_TMOBILE_US)
        assert chain
        reachable = {AS_CLEARWIRE}
        for item in chain:
            assert reachable & set(item.asns)
            reachable |= item.asns
        assert AS_TMOBILE_US in reachable

    def test_explainer_consistent_with_mapping(self, explainer, borges_mapping):
        """Evidence connectivity implies mapping siblinghood."""
        sample = sorted(borges_mapping.multi_asn_clusters(), key=min)[:20]
        for cluster in sample:
            members = sorted(cluster)
            chain = explainer.why_siblings(members[0], members[-1])
            if chain is not None:
                assert borges_mapping.are_siblings(members[0], members[-1])

    def test_evidence_for_lists_assertions(self, explainer):
        items = explainer.evidence_for(AS_EDGECAST)
        assert items
        assert all(AS_EDGECAST in e.asns for e in items)


class TestConfidence:
    def test_lumen_pair_corroborated(self, explainer):
        from repro.universe.canonical import AS_LUMEN, AS_GLOBAL_CROSSING

        # Lumen's own ASNs share WHOIS org, PDB org, notes and final URL.
        grade = explainer.confidence(AS_LUMEN, AS_GLOBAL_CROSSING)
        assert grade == "corroborated"

    def test_unrelated_pair_unsupported(self, explainer):
        assert explainer.confidence(AS_MAXIHOST, AS_COGENT) == "unsupported"

    def test_direct_support_lists_features(self, explainer):
        from repro.universe.canonical import AS_LUMEN, AS_GLOBAL_CROSSING

        support = explainer.direct_support(AS_LUMEN, AS_GLOBAL_CROSSING)
        features = {item.feature for item in support}
        assert "oid_w" in features
        assert len(features) >= 2

    def test_clearwire_grade_known(self, explainer):
        # Clearwire links to T-Mobile US through one feature (R&R).
        grade = explainer.confidence(AS_CLEARWIRE, AS_TMOBILE_US)
        assert grade in ("single-source", "corroborated", "transitive")
        assert grade != "unsupported"

    def test_confidence_vocabulary(self, explainer, borges_mapping):
        sample = sorted(borges_mapping.multi_asn_clusters(), key=min)[:15]
        for cluster in sample:
            members = sorted(cluster)
            grade = explainer.confidence(members[0], members[-1])
            assert grade in (
                "corroborated", "single-source", "transitive", "unsupported"
            )
