"""Content-addressed artifact store for the stage DAG.

Every stage's output is an :class:`Artifact`: a JSON payload addressed
by a *fingerprint* — a SHA-256 over the stage name, the config slice the
stage declares, the digests of the datasets it reads, and the
fingerprints of its upstream artifacts.  Two runs that would compute the
same thing therefore share the same address, so re-runs and ablation
sweeps (Table 6's 16 feature combinations) reuse unchanged stages
instead of recomputing them.

The store keeps artifacts in memory and, when given a ``root``
directory, mirrors them to disk as canonical JSON — one file per
artifact, byte-identical across identical runs — so a later process
(CI's warm-cache job, a repeated CLI run with ``--artifact-cache``) is
served from cache.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from ..digest import canonical_json, stable_digest
from ..logutil import get_logger

_LOG = get_logger("core.artifacts")

#: Bump when the artifact payload encoding changes incompatibly; the
#: version participates in every fingerprint, so stale caches miss
#: instead of decoding garbage.
ARTIFACT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Artifact:
    """One stage output: a JSON payload plus its addresses.

    ``fingerprint`` is the *input* address (what produced it);
    ``content_digest`` is the hash of the payload itself, used by the
    determinism property tests ("same inputs ⇒ byte-identical output").
    """

    stage: str
    fingerprint: str
    content_digest: str
    payload: object

    def to_json(self) -> Dict[str, object]:
        return {
            "schema_version": ARTIFACT_SCHEMA_VERSION,
            "stage": self.stage,
            "fingerprint": self.fingerprint,
            "content_digest": self.content_digest,
            "payload": self.payload,
        }


def compute_fingerprint(
    stage: str,
    config_slice: object,
    dataset_digests: Dict[str, str],
    upstream: Dict[str, str],
    salt: Optional[object] = None,
) -> str:
    """The content address of a stage execution (before it runs)."""
    material: Dict[str, object] = {
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "stage": stage,
        "config": config_slice,
        "datasets": dict(dataset_digests),
        "upstream": dict(upstream),
    }
    if salt is not None:
        material["salt"] = salt
    return stable_digest(material)


def make_artifact(stage: str, fingerprint: str, payload: object) -> Artifact:
    """Wrap an encoded payload, computing its content digest."""
    return Artifact(
        stage=stage,
        fingerprint=fingerprint,
        content_digest=stable_digest(payload),
        payload=payload,
    )


class ArtifactStore:
    """In-memory artifact cache with an optional on-disk JSON mirror.

    Thread-safe: the executor may finish independent stages concurrently.
    Per-stage counters (computed / memory_hits / disk_hits / misses) are
    the ground truth the sweep tests and the warm-cache CI job assert on.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = Path(root) if root is not None else None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
        self._memory: Dict[str, Artifact] = {}
        self._lock = threading.Lock()
        #: stage name → {"computed": n, "memory_hits": n, "disk_hits": n,
        #:               "misses": n}
        self.counters: Dict[str, Dict[str, int]] = {}

    def __len__(self) -> int:
        return len(self._memory)

    def _count(self, stage: str, event: str) -> None:
        with self._lock:
            per_stage = self.counters.setdefault(
                stage,
                {"computed": 0, "memory_hits": 0, "disk_hits": 0, "misses": 0},
            )
            per_stage[event] += 1

    def _path_for(self, stage: str, fingerprint: str) -> Optional[Path]:
        if self.root is None:
            return None
        return self.root / f"{stage}.{fingerprint[:32]}.json"

    # -- lookups ----------------------------------------------------------

    def peek(self, stage: str, fingerprint: str) -> Optional[str]:
        """Where a hit would come from (``memory``/``disk``), sans counters."""
        if fingerprint in self._memory:
            return "memory"
        path = self._path_for(stage, fingerprint)
        if path is not None and path.exists():
            return "disk"
        return None

    def get(self, stage: str, fingerprint: str) -> Optional[Artifact]:
        """Fetch an artifact by address, updating hit/miss counters."""
        artifact = self._memory.get(fingerprint)
        if artifact is not None:
            self._count(stage, "memory_hits")
            return artifact
        path = self._path_for(stage, fingerprint)
        if path is not None and path.exists():
            try:
                import json

                document = json.loads(path.read_text(encoding="utf-8"))
                if (
                    document.get("schema_version") == ARTIFACT_SCHEMA_VERSION
                    and document.get("fingerprint") == fingerprint
                ):
                    artifact = Artifact(
                        stage=str(document["stage"]),
                        fingerprint=fingerprint,
                        content_digest=str(document["content_digest"]),
                        payload=document["payload"],
                    )
                    with self._lock:
                        self._memory[fingerprint] = artifact
                    self._count(stage, "disk_hits")
                    return artifact
            except (OSError, ValueError, KeyError) as exc:
                _LOG.warning("unreadable artifact %s: %s", path, exc)
        self._count(stage, "misses")
        return None

    # -- writes -----------------------------------------------------------

    def put(self, artifact: Artifact, computed: bool = True) -> Artifact:
        """Record an artifact; persists to disk when a root is set."""
        with self._lock:
            self._memory[artifact.fingerprint] = artifact
        if computed:
            self._count(artifact.stage, "computed")
        path = self._path_for(artifact.stage, artifact.fingerprint)
        if path is not None:
            try:
                path.write_text(
                    canonical_json(artifact.to_json()) + "\n", encoding="utf-8"
                )
            except OSError as exc:
                _LOG.warning("cannot persist artifact to %s: %s", path, exc)
        return artifact

    # -- accounting -------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Aggregate and per-stage cache accounting for diagnostics."""
        with self._lock:
            per_stage = {k: dict(v) for k, v in sorted(self.counters.items())}
        totals = {"computed": 0, "memory_hits": 0, "disk_hits": 0, "misses": 0}
        for counts in per_stage.values():
            for key in totals:
                totals[key] += counts.get(key, 0)
        hits = totals["memory_hits"] + totals["disk_hits"]
        lookups = hits + totals["misses"]
        return {
            "entries": len(self._memory),
            "hits": hits,
            "misses": totals["misses"],
            "computed": totals["computed"],
            "hit_rate": (hits / lookups) if lookups else 0.0,
            "persistent": self.root is not None,
            "stages": per_stage,
        }

    def manifest(self) -> Dict[str, Dict[str, str]]:
        """Deterministic fingerprint→content map (no timestamps).

        Two identical runs must produce byte-identical manifests; this is
        the object the determinism property compares.
        """
        with self._lock:
            artifacts = list(self._memory.values())
        return {
            a.fingerprint: {"stage": a.stage, "content_digest": a.content_digest}
            for a in sorted(artifacts, key=lambda a: (a.stage, a.fingerprint))
        }

    def save_manifest(self, path: Union[str, Path]) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(canonical_json(self.manifest()) + "\n", encoding="utf-8")
        return target
