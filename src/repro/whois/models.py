"""WHOIS data objects: organizations and ASN delegations.

The model follows the shape of CAIDA's AS2Org inputs: an ``organization``
record keyed by ``org_id`` (a registry handle such as ``"LEVEL3-ARIN"``)
and an ``asn`` record linking each allocated ASN to exactly one org.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from ..errors import SchemaError
from ..types import ASN, CountryCode, WhoisOrgID, is_valid_asn

#: The five Regional Internet Registries.
RIRS = ("arin", "ripencc", "apnic", "lacnic", "afrinic")


@dataclass(frozen=True)
class WhoisOrg:
    """A WHOIS organization record (the legal/contractual entity)."""

    org_id: WhoisOrgID
    name: str
    country: CountryCode = ""
    source: str = "arin"

    def validate(self) -> "WhoisOrg":
        if not self.org_id:
            raise SchemaError("WHOIS org with empty org_id")
        if not self.name:
            raise SchemaError(f"WHOIS org {self.org_id}: empty name")
        if self.source not in RIRS:
            raise SchemaError(
                f"WHOIS org {self.org_id}: unknown RIR {self.source!r}"
            )
        return self

    def to_json(self) -> Dict[str, Any]:
        return {
            "type": "Organization",
            "organizationId": self.org_id,
            "name": self.name,
            "country": self.country,
            "source": self.source.upper(),
        }

    @classmethod
    def from_json(cls, record: Dict[str, Any]) -> "WhoisOrg":
        try:
            return cls(
                org_id=str(record["organizationId"]),
                name=str(record["name"]),
                country=str(record.get("country", "") or ""),
                source=str(record.get("source", "arin")).lower(),
            ).validate()
        except KeyError as exc:
            raise SchemaError(f"bad Organization record: {record!r}") from exc


@dataclass(frozen=True)
class ASNDelegation:
    """A WHOIS ASN record: the allocation of one ASN to one organization."""

    asn: ASN
    org_id: WhoisOrgID
    name: str = ""
    source: str = "arin"

    def validate(self) -> "ASNDelegation":
        if not is_valid_asn(self.asn):
            raise SchemaError(f"delegation with invalid ASN {self.asn!r}")
        if not self.org_id:
            raise SchemaError(f"AS{self.asn}: empty org_id")
        if self.source not in RIRS:
            raise SchemaError(f"AS{self.asn}: unknown RIR {self.source!r}")
        return self

    def to_json(self) -> Dict[str, Any]:
        return {
            "type": "ASN",
            "asn": str(self.asn),
            "organizationId": self.org_id,
            "name": self.name,
            "source": self.source.upper(),
        }

    @classmethod
    def from_json(cls, record: Dict[str, Any]) -> "ASNDelegation":
        try:
            return cls(
                asn=int(record["asn"]),
                org_id=str(record["organizationId"]),
                name=str(record.get("name", "") or ""),
                source=str(record.get("source", "arin")).lower(),
            ).validate()
        except (KeyError, ValueError) as exc:
            raise SchemaError(f"bad ASN record: {record!r}") from exc
