"""Table 9 — top 20 country-level footprint growths.

Paper: Digicel 4 → 25 countries (+21) leads by far; Deutsche Telekom
3 → 14; Claro 1 → 6; 101 orgs expand with mean +2.37 countries.  The
shape: Digicel leads, Caribbean/LatAm conglomerates populate the top,
and the mean marginal increase is a small number of countries.
"""

from conftest import run_and_render


def test_table9_footprint_growth(benchmark, ctx):
    report = run_and_render(benchmark, ctx, "table9")
    assert report.rows

    top = report.rows[0]
    assert "Digicel" in str(top["company"])
    # Digicel: 4 WHOIS-visible countries → ≈25 under Borges (paper: +21).
    assert top["as2org_countries"] == 4
    assert top["borges_countries"] >= 18
    assert top["difference"] >= 14

    from repro.analysis import footprint_summary

    summary = footprint_summary(ctx.borges, ctx.as2org, ctx.universe.apnic)
    assert summary.expanded_count >= 10
    assert 1.0 <= summary.mean_marginal_countries <= 6.0  # paper: 2.37
