"""Throughput benches: universe generation and pipeline stages at scale.

These are genuine performance measurements (multiple rounds) of the
system's hot paths: generating a universe, running the full pipeline,
scraping/resolving, and computing θ over large size vectors.

Besides the pytest-benchmark tests, this module is an executable scale
runner (``python benchmarks/bench_pipeline_scale.py``) that sweeps a
10k→1M-ASN curve: for each point it measures streamed generation,
full materialization, and the sharded pipeline — each in a *fresh
subprocess*, because ``ru_maxrss`` is a monotonic high-water mark per
process and reusing one would hide every later point's real footprint.
The run writes a JSON report and asserts the streaming contract: at
the largest point, streamed generation's peak RSS must be well below
full materialization's (``--min-rss-ratio``, default 2x).
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import pytest

from repro.config import BorgesConfig, UniverseConfig
from repro.core import ArtifactStore, BorgesPipeline
from repro.metrics.org_factor import org_factor
from repro.universe import generate_universe
from repro.web.scraper import HeadlessScraper


SMALL = UniverseConfig(seed=11, n_organizations=800, total_users=30_000_000)


@pytest.fixture(scope="module")
def small_universe():
    return generate_universe(SMALL)


def test_bench_universe_generation(benchmark):
    universe = benchmark(lambda: generate_universe(SMALL))
    assert len(universe.whois) > 800


def test_bench_full_pipeline(benchmark, small_universe):
    def run():
        pipeline = BorgesPipeline(
            small_universe.whois, small_universe.pdb, small_universe.web
        )
        return pipeline.run().mapping

    mapping = benchmark(run)
    assert len(mapping) > 0


def test_bench_warm_cache_pipeline(benchmark, small_universe):
    """Warm-cache runs against a primed artifact store, vs the cold run.

    The benchmark proper measures the warm path (every stage served from
    the content-addressed store); the one-off cold wall time that primed
    the store is recorded in ``extra_info`` so trajectories can track the
    cold/warm ratio.
    """
    store = ArtifactStore()

    def run():
        pipeline = BorgesPipeline(
            small_universe.whois, small_universe.pdb, small_universe.web,
            artifact_store=store,
        )
        return pipeline.run()

    cold_start = time.perf_counter()
    cold = run()
    cold_seconds = time.perf_counter() - cold_start
    assert all(r["status"] == "ok" for r in cold.stage_records)

    warm = benchmark(run)
    assert all(r["status"] == "cached" for r in warm.stage_records)
    assert warm.mapping.clusters() == cold.mapping.clusters()
    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 4)


def test_bench_scraper_resolution(benchmark, small_universe):
    urls = [
        net.website for net in small_universe.pdb.nets_with_websites()
    ]

    def resolve_all():
        scraper = HeadlessScraper(small_universe.web)
        return sum(1 for url in urls if scraper.resolve(url).ok)

    reachable = benchmark(resolve_all)
    assert 0 < reachable <= len(urls)


def test_bench_org_factor_large_vector(benchmark):
    # 100k organizations with a heavy tail: θ must stay sub-second.
    sizes = [1] * 90_000 + [2] * 8_000 + [10] * 1_500 + [500] * 12
    theta = benchmark(lambda: org_factor(sizes))
    assert 0.0 < theta < 1.0


def test_bench_asrank(benchmark, small_universe):
    from repro.asrank import compute_rank

    rank = benchmark(lambda: compute_rank(small_universe.topology))
    assert len(rank) == len(small_universe.topology)


# -- scale-curve runner (CLI, not collected by pytest) ----------------------

#: Default sweep: target ASN counts from 10k to 1M.
DEFAULT_POINTS = (10_000, 30_000, 100_000, 300_000, 1_000_000)

#: Marginal ASNs per organization under the default universe config
#: (empirical; each point reports its *actual* ASN count, so this only
#: has to land the sweep near its targets, not hit them).
_ASNS_PER_ORG = 1.47
_CANONICAL_ASNS = 500


def _orgs_for_target(target_asns: int) -> int:
    return max(60, int((target_asns - _CANONICAL_ASNS) / _ASNS_PER_ORG))


def _peak_rss_bytes() -> int:
    from repro.obs import peak_rss_bytes

    return peak_rss_bytes()


def _child_gen_full(config: UniverseConfig) -> dict:
    start = time.perf_counter()
    universe = generate_universe(config)
    return {
        "asns": len(universe.whois),
        "seconds": round(time.perf_counter() - start, 3),
    }


def _child_gen_stream(config: UniverseConfig) -> dict:
    from repro.universe import export_universe_streaming

    start = time.perf_counter()
    with tempfile.TemporaryDirectory() as out:
        summary = export_universe_streaming(config, out)
    return {
        "asns": summary["asns"],
        "chunks": summary["chunks"],
        "seconds": round(time.perf_counter() - start, 3),
    }


def _child_pipeline(config: UniverseConfig, n_shards: int) -> dict:
    from repro.core import run_sharded

    gen_start = time.perf_counter()
    universe = generate_universe(config)
    gen_seconds = time.perf_counter() - gen_start
    run_start = time.perf_counter()
    result = run_sharded(
        universe.whois,
        universe.pdb,
        universe.web,
        BorgesConfig(),
        n_shards=n_shards,
    )
    return {
        "asns": len(universe.whois),
        "orgs_mapped": len(result.mapping),
        "degraded": result.degraded,
        "generate_seconds": round(gen_seconds, 3),
        "pipeline_seconds": round(time.perf_counter() - run_start, 3),
        "partition": result.diagnostics["partition"],
        "shard_timings": [
            {
                "shard": entry["shard"],
                "asns": entry["asns"],
                "duration_seconds": entry["duration_seconds"],
            }
            for entry in result.diagnostics["shards"]
        ],
    }


def _run_child(args: argparse.Namespace) -> int:
    config = UniverseConfig(seed=args.seed, n_organizations=args.orgs)
    if args.child == "gen-full":
        payload = _child_gen_full(config)
    elif args.child == "gen-stream":
        payload = _child_gen_stream(config)
    elif args.child == "pipeline":
        payload = _child_pipeline(config, args.shards)
    else:  # pragma: no cover - argparse choices guard this
        raise SystemExit(f"unknown child mode {args.child}")
    payload["mode"] = args.child
    payload["orgs"] = args.orgs
    payload["peak_rss_bytes"] = _peak_rss_bytes()
    print(json.dumps(payload, sort_keys=True))
    return 0


def _spawn(mode: str, orgs: int, seed: int, shards: int) -> dict:
    """Run one measurement in a fresh subprocess and parse its JSON."""
    root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(root / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [
            sys.executable,
            str(Path(__file__).resolve()),
            "--child", mode,
            "--orgs", str(orgs),
            "--seed", str(seed),
            "--shards", str(shards),
        ],
        env=env,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"{mode} child failed (orgs={orgs}):\n{proc.stderr[-2000:]}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Borges scale curve: generation + sharded pipeline"
    )
    parser.add_argument("--child", choices=["gen-full", "gen-stream", "pipeline"])
    parser.add_argument("--orgs", type=int, default=0)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument(
        "--max-asns",
        type=int,
        default=DEFAULT_POINTS[-1],
        help="largest curve point to run (default 1M ASNs)",
    )
    parser.add_argument(
        "--pipeline-max-asns",
        type=int,
        default=None,
        help="largest point that also runs the sharded pipeline "
        "(default: same as --max-asns)",
    )
    parser.add_argument(
        "--min-rss-ratio",
        type=float,
        default=2.0,
        help="full-materialization / streamed peak-RSS ratio the largest "
        "point must reach (default 2.0)",
    )
    parser.add_argument(
        "--report",
        type=Path,
        default=Path("scale_curve_report.json"),
        help="JSON report path",
    )
    args = parser.parse_args(argv)
    if args.child:
        return _run_child(args)

    pipeline_cap = (
        args.pipeline_max_asns
        if args.pipeline_max_asns is not None
        else args.max_asns
    )
    points = [p for p in DEFAULT_POINTS if p <= args.max_asns]
    report = {
        "seed": args.seed,
        "shards": args.shards,
        "points": [],
    }
    for target in points:
        orgs = _orgs_for_target(target)
        entry = {"target_asns": target, "orgs": orgs}
        for mode in ("gen-stream", "gen-full"):
            result = _spawn(mode, orgs, args.seed, args.shards)
            entry[mode] = result
            print(
                f"[{target:>9,}] {mode:<10} {result['seconds']:>8.1f}s  "
                f"peak rss {result['peak_rss_bytes'] / (1 << 20):>8.0f} MiB  "
                f"({result['asns']:,} ASNs)"
            )
        if target <= pipeline_cap:
            result = _spawn("pipeline", orgs, args.seed, args.shards)
            entry["pipeline"] = result
            print(
                f"[{target:>9,}] {'pipeline':<10} "
                f"{result['pipeline_seconds']:>8.1f}s  "
                f"peak rss {result['peak_rss_bytes'] / (1 << 20):>8.0f} MiB  "
                f"({result['orgs_mapped']:,} orgs mapped, "
                f"{args.shards} shards)"
            )
        report["points"].append(entry)

    largest = report["points"][-1]
    ratio = (
        largest["gen-full"]["peak_rss_bytes"]
        / max(1, largest["gen-stream"]["peak_rss_bytes"])
    )
    report["rss_ratio_at_largest_point"] = round(ratio, 2)
    report["min_rss_ratio"] = args.min_rss_ratio
    args.report.write_text(json.dumps(report, indent=2, sort_keys=True))
    print(f"report written to {args.report}")
    print(
        f"streamed-vs-full peak RSS at {largest['target_asns']:,} ASNs: "
        f"{ratio:.1f}x smaller"
    )
    if ratio < args.min_rss_ratio:
        print(
            f"FAIL: streamed generation only {ratio:.2f}x below full "
            f"materialization (required {args.min_rss_ratio}x)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
