"""Response cache for deterministic (temperature-0) LLM calls.

An in-memory LRU-ish cache with optional JSON persistence, so re-running
an experiment over an unchanged snapshot costs zero model calls — the
property the paper relies on for reproducibility.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional, Union


def _digest(key: str) -> str:
    return hashlib.sha256(key.encode("utf-8")).hexdigest()


class ResponseCache:
    """Bounded key→completion cache keyed by request digest."""

    def __init__(self, max_entries: int = 100_000) -> None:
        self._entries: "OrderedDict[str, str]" = OrderedDict()
        self._max_entries = max(1, max_entries)
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[str]:
        digest = _digest(key)
        if digest in self._entries:
            self._entries.move_to_end(digest)
            self.hits += 1
            return self._entries[digest]
        self.misses += 1
        return None

    def put(self, key: str, value: str) -> None:
        digest = _digest(key)
        self._entries[digest] = value
        self._entries.move_to_end(digest)
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._entries), "hits": self.hits, "misses": self.misses}

    # -- persistence ---------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(dict(self._entries)), encoding="utf-8"
        )

    def load(self, path: Union[str, Path]) -> None:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        for digest, value in data.items():
            self._entries[digest] = value
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)
