"""Table 4 — LLM information-extraction validation over 320 records.

Paper: TP 187, TN 116, FN 12, FP 5 → precision 0.974, recall 0.94,
accuracy 0.947.  The reproduction target is the accuracy band: high
(>0.9) but visibly imperfect, with both FP and FN present.
"""

from conftest import run_and_render


def test_table4_extraction_validation(benchmark, ctx):
    report = run_and_render(benchmark, ctx, "table4")
    values = {row["metric"]: row["value"] for row in report.rows}

    assert values["TP"] + values["TN"] + values["FP"] + values["FN"] == 320
    # Paper: accuracy 0.947, precision 0.974, recall 0.94.
    assert 0.90 <= values["accuracy"] <= 0.995
    assert 0.90 <= values["precision"] <= 1.0
    assert 0.88 <= values["recall"] <= 1.0
    # The model errs in both directions (it is not a perfect oracle).
    assert values["FP"] >= 1
    assert values["FN"] >= 1
