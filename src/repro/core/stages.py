"""The declarative stage DAG: Borges as a dataflow of cached stages.

§3–§4 of the paper is naturally a DAG — four sibling-signal features
feed one union-find consolidation, with R&R and favicons sharing a
scrape stage::

    oid_w ───────────────────────────┐
    oid_p ───────────────────────────┤
    ner_extract ──▶ notes_aka ───────┼──▶ merge
    scrape ──┬──▶ rr ────────────────┤
             └──▶ favicons ──────────┘

Each :class:`StageSpec` declares its dependencies, the config slice and
dataset digests that enter its fingerprint, the resources it needs (so
the executor can serialise stages sharing the LLM client or web driver),
and a JSON codec.  The executor always round-trips a produced value
through ``encode``/``decode``, so cold and warm runs hand downstream
stages the *identical* value — the artifact is the interface.

The DAG replaces the old hand-written feature flow in ``pipeline.py``:
the rr-salvage special case is gone because rr depends only on the
scrape artifact, so a favicon-stage failure cannot drag it down.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

try:  # pragma: no cover - 3.7+ always has this
    from collections import OrderedDict
except ImportError:  # pragma: no cover
    OrderedDict = dict  # type: ignore[assignment,misc]

from ..config import (
    FEATURE_FAVICONS,
    FEATURE_NOTES_AKA,
    FEATURE_OID_P,
    FEATURE_OID_W,
    FEATURE_RR,
    BorgesConfig,
)
from ..errors import ConfigError
from ..obs.registry import MetricsRegistry
from ..obs.tracer import Tracer
from ..types import Cluster
from .mapping import OrgMapping
from .ner import NERRecordResult
from .org_keys import oid_p_clusters, oid_w_clusters
from .web_inference import FaviconDecision, WebInferenceStats

#: Stage names, in canonical definition order.
STAGE_OID_W = "oid_w"
STAGE_OID_P = "oid_p"
STAGE_NER_EXTRACT = "ner_extract"
STAGE_NOTES_AKA = "notes_aka"
STAGE_SCRAPE = "scrape"
STAGE_RR = "rr"
STAGE_FAVICONS = "favicons"
STAGE_MERGE = "merge"

ALL_STAGES: Tuple[str, ...] = (
    STAGE_OID_W,
    STAGE_OID_P,
    STAGE_NER_EXTRACT,
    STAGE_NOTES_AKA,
    STAGE_SCRAPE,
    STAGE_RR,
    STAGE_FAVICONS,
    STAGE_MERGE,
)

#: Resources stages may contend on; the executor holds one lock per name.
RESOURCE_LLM = "llm"
RESOURCE_WEB = "web"


@dataclass
class StageContext:
    """Everything a stage's ``produce`` may touch.

    Service objects (scraper, LLM client, NER module, web-inference
    module) are owned by the pipeline and shared across stages; datasets
    are read-only inputs whose digests anchor the fingerprints.
    """

    whois: object
    pdb: object
    config: BorgesConfig
    client: object = None
    ner: object = None
    web_module: object = None
    tracer: Optional[Tracer] = None
    registry: Optional[MetricsRegistry] = None
    dataset_digests: Dict[str, str] = field(default_factory=dict)

    def span(self, name: str, **attributes: object):
        if self.tracer is not None:
            return self.tracer.span(name, **attributes)
        from ..obs.tracer import get_tracer

        return get_tracer().span(name, **attributes)


@dataclass
class StageSpec:
    """One node of the DAG: identity, wiring, fingerprint inputs, codec."""

    name: str
    produce: Callable[[StageContext, Dict[str, object]], object]
    encode: Callable[[object], object]
    decode: Callable[[object, StageContext], object]
    deps: Tuple[str, ...] = ()
    #: Feature name whose clusters this stage emits (None for infra
    #: stages such as scrape/ner_extract and for merge).
    feature: Optional[str] = None
    #: Backbone stages abort the whole run on failure (oid_w defines the
    #: universe; merge produces the result).  Everything else degrades.
    backbone: bool = False
    #: When False the stage runs with whatever dependencies survived
    #: (merge consolidates the surviving features).
    require_all_deps: bool = True
    resources: FrozenSet[str] = frozenset()
    #: Keys of ``ctx.dataset_digests`` that enter this stage's fingerprint.
    datasets: Tuple[str, ...] = ()
    config_slice: Callable[[BorgesConfig], object] = lambda config: None


# -- codecs -------------------------------------------------------------------


def encode_clusters(clusters: Sequence[Cluster]) -> List[List[int]]:
    """Canonical JSON form of a cluster list (sorted, deterministic)."""
    return sorted(sorted(int(a) for a in cluster) for cluster in clusters)


def decode_clusters(payload: object) -> List[Cluster]:
    return [frozenset(int(a) for a in members) for members in payload]


def stage_clusters(value: object) -> List[Cluster]:
    """The cluster list of any feature stage's decoded value."""
    if isinstance(value, dict):
        return list(value.get("clusters", []))
    return list(value)


def _identity_decode(payload: object, ctx: StageContext) -> object:
    return payload


# -- stage implementations ----------------------------------------------------


def _produce_oid_w(ctx: StageContext, inputs: Dict[str, object]) -> object:
    with ctx.span("feature.oid_w"):
        return oid_w_clusters(ctx.whois)


def _produce_oid_p(ctx: StageContext, inputs: Dict[str, object]) -> object:
    with ctx.span("feature.oid_p"):
        return oid_p_clusters(ctx.pdb)


def _produce_ner_extract(ctx: StageContext, inputs: Dict[str, object]) -> object:
    with ctx.span("ner.extract") as span:
        results = ctx.ner.run(ctx.pdb)
        span.set_attribute("records_queried", ctx.ner.stats.records_queried)
        return {
            "records": results,
            "stats": {k: int(v) for k, v in vars(ctx.ner.stats).items()},
        }


def _encode_ner_extract(value: Dict[str, object]) -> object:
    return {
        "records": [
            {
                "asn": int(r.asn),
                "raw_extracted": [int(a) for a in r.raw_extracted],
                "siblings": [int(a) for a in r.siblings],
                "filtered_out": [int(a) for a in r.filtered_out],
                "reasoning": r.reasoning,
                "parse_failed": bool(r.parse_failed),
            }
            for r in value["records"]
        ],
        "stats": {k: int(v) for k, v in sorted(value["stats"].items())},
    }


def _decode_ner_extract(payload: object, ctx: StageContext) -> object:
    # Restore the module's counters so warm-run diagnostics (and the
    # Table-4 accounting, which reads ``pipeline._ner.stats``) match the
    # cold run that produced the artifact.
    if ctx.ner is not None:
        for name, value in payload["stats"].items():
            if hasattr(ctx.ner.stats, name):
                setattr(ctx.ner.stats, name, int(value))
    return {
        "records": [
            NERRecordResult(
                asn=int(record["asn"]),
                raw_extracted=tuple(int(a) for a in record["raw_extracted"]),
                siblings=tuple(int(a) for a in record["siblings"]),
                filtered_out=tuple(int(a) for a in record["filtered_out"]),
                reasoning=str(record.get("reasoning", "")),
                parse_failed=bool(record.get("parse_failed", False)),
            )
            for record in payload["records"]
        ],
        "stats": dict(payload["stats"]),
    }


def _produce_notes_aka(ctx: StageContext, inputs: Dict[str, object]) -> object:
    with ctx.span("feature.notes_aka") as span:
        clusters = ctx.ner.clusters(inputs[STAGE_NER_EXTRACT]["records"])
        span.set_attribute("clusters", len(clusters))
        return clusters


def _produce_scrape(ctx: StageContext, inputs: Dict[str, object]) -> object:
    final_of_asn, stats = ctx.web_module.scrape_urls(ctx.pdb)
    return {"final_url_of_asn": final_of_asn, "stats": stats}


def _encode_scrape(value: Dict[str, object]) -> object:
    return {
        "final_url_of_asn": sorted(
            [int(asn), str(url)]
            for asn, url in value["final_url_of_asn"].items()
        ),
        "stats": {k: int(v) for k, v in sorted(value["stats"].items())},
    }


def _decode_scrape(payload: object, ctx: StageContext) -> object:
    return {
        "final_url_of_asn": {
            int(asn): str(url) for asn, url in payload["final_url_of_asn"]
        },
        "stats": dict(payload["stats"]),
    }


def _produce_rr(ctx: StageContext, inputs: Dict[str, object]) -> object:
    with ctx.span("feature.rr") as span:
        final_of_asn = inputs[STAGE_SCRAPE]["final_url_of_asn"]
        by_final, blocked = ctx.web_module.rr_grouping(final_of_asn)
        clusters = [frozenset(asns) for asns in by_final.values()]
        span.set_attribute("clusters", len(clusters))
        span.set_attribute("blocked_final_urls", blocked)
        return {"clusters": clusters, "blocked_final_urls": blocked}


def _encode_rr(value: Dict[str, object]) -> object:
    return {
        "clusters": encode_clusters(value["clusters"]),
        "blocked_final_urls": int(value["blocked_final_urls"]),
    }


def _decode_rr(payload: object, ctx: StageContext) -> object:
    return {
        "clusters": decode_clusters(payload["clusters"]),
        "blocked_final_urls": int(payload["blocked_final_urls"]),
    }


def _produce_favicons(ctx: StageContext, inputs: Dict[str, object]) -> object:
    with ctx.span("feature.favicons") as span:
        final_of_asn = inputs[STAGE_SCRAPE]["final_url_of_asn"]
        # The grouping is cheap, pure dictionary work; recomputing it here
        # keeps favicons independent of the rr stage, so an rr failure
        # cannot cascade (and vice versa).
        by_final, _blocked = ctx.web_module.rr_grouping(final_of_asn)
        clusters, decisions, stats = ctx.web_module.favicon_stage(by_final)
        span.set_attribute("clusters", len(clusters))
        span.set_attribute("shared_favicon_groups", stats.shared_favicon_groups)
        return {"clusters": clusters, "decisions": decisions, "stats": stats}


def _encode_favicons(value: Dict[str, object]) -> object:
    stats: WebInferenceStats = value["stats"]
    return {
        "clusters": encode_clusters(value["clusters"]),
        "decisions": [
            {
                "favicon": d.favicon,
                "urls": list(d.urls),
                "step": d.step,
                "grouped": bool(d.grouped),
                "llm_reply": d.llm_reply,
            }
            for d in value["decisions"]
        ],
        "stats": {
            name: int(getattr(stats, name))
            for name in (
                "favicons_fetched",
                "unique_favicons",
                "shared_favicon_groups",
                "same_subdomain_groups",
                "llm_groups_accepted",
                "llm_groups_rejected",
            )
        },
    }


def _decode_favicons(payload: object, ctx: StageContext) -> object:
    stats = WebInferenceStats()
    for name, value in payload["stats"].items():
        setattr(stats, name, int(value))
    decisions = [
        FaviconDecision(
            favicon=str(d["favicon"]),
            urls=tuple(str(u) for u in d["urls"]),
            step=str(d["step"]),
            grouped=bool(d["grouped"]),
            llm_reply=str(d.get("llm_reply", "")),
        )
        for d in payload["decisions"]
    ]
    return {
        "clusters": decode_clusters(payload["clusters"]),
        "decisions": decisions,
        "stats": stats,
    }


def _produce_merge(ctx: StageContext, inputs: Dict[str, object]) -> object:
    with ctx.span("pipeline.merge") as span:
        all_clusters: List[Cluster] = []
        for name in ALL_STAGES:
            value = inputs.get(name)
            if value is None:
                continue
            all_clusters.extend(stage_clusters(value))
        org_names = {
            asn: ctx.whois.org_name_of(asn) for asn in ctx.whois.asns()
        }
        label = "borges[" + ",".join(sorted(ctx.config.features)) + "]"
        mapping = OrgMapping(
            universe=ctx.whois.asns(),
            clusters=all_clusters,
            method=label,
            org_names=org_names,
        )
        span.set_attribute("orgs", len(mapping))
        return mapping


def _encode_merge(mapping: OrgMapping) -> object:
    return mapping.to_json()


def _decode_merge(payload: object, ctx: StageContext) -> object:
    return OrgMapping.from_json(payload)


# -- config slices ------------------------------------------------------------


def _llm_slice(config: BorgesConfig) -> object:
    return dataclasses.asdict(config.llm)


def _ner_slice(config: BorgesConfig) -> object:
    return {
        "llm": _llm_slice(config),
        "ner_input_filter": config.ner_input_filter,
        "ner_output_filter": config.ner_output_filter,
    }


def _scrape_slice(config: BorgesConfig) -> object:
    return dataclasses.asdict(config.scraper)


def _rr_slice(config: BorgesConfig) -> object:
    return {"apply_blocklists": config.apply_blocklists}


def _favicons_slice(config: BorgesConfig) -> object:
    return {
        "apply_blocklists": config.apply_blocklists,
        "favicon_llm_step": config.favicon_llm_step,
        "llm": _llm_slice(config),
    }


def _merge_slice(config: BorgesConfig) -> object:
    return {"features": sorted(config.features)}


# -- graph construction -------------------------------------------------------


def _all_specs() -> "OrderedDict[str, StageSpec]":
    specs = OrderedDict()
    specs[STAGE_OID_W] = StageSpec(
        name=STAGE_OID_W,
        produce=_produce_oid_w,
        encode=encode_clusters,
        decode=lambda payload, ctx: decode_clusters(payload),
        feature=FEATURE_OID_W,
        backbone=True,
        datasets=("whois",),
    )
    specs[STAGE_OID_P] = StageSpec(
        name=STAGE_OID_P,
        produce=_produce_oid_p,
        encode=encode_clusters,
        decode=lambda payload, ctx: decode_clusters(payload),
        feature=FEATURE_OID_P,
        datasets=("pdb",),
    )
    specs[STAGE_NER_EXTRACT] = StageSpec(
        name=STAGE_NER_EXTRACT,
        produce=_produce_ner_extract,
        encode=_encode_ner_extract,
        decode=_decode_ner_extract,
        resources=frozenset((RESOURCE_LLM,)),
        datasets=("pdb",),
        config_slice=_ner_slice,
    )
    specs[STAGE_NOTES_AKA] = StageSpec(
        name=STAGE_NOTES_AKA,
        produce=_produce_notes_aka,
        encode=encode_clusters,
        decode=lambda payload, ctx: decode_clusters(payload),
        deps=(STAGE_NER_EXTRACT,),
        feature=FEATURE_NOTES_AKA,
        config_slice=_ner_slice,
    )
    specs[STAGE_SCRAPE] = StageSpec(
        name=STAGE_SCRAPE,
        produce=_produce_scrape,
        encode=_encode_scrape,
        decode=_decode_scrape,
        resources=frozenset((RESOURCE_WEB,)),
        datasets=("pdb", "web"),
        config_slice=_scrape_slice,
    )
    specs[STAGE_RR] = StageSpec(
        name=STAGE_RR,
        produce=_produce_rr,
        encode=_encode_rr,
        decode=_decode_rr,
        deps=(STAGE_SCRAPE,),
        feature=FEATURE_RR,
        config_slice=_rr_slice,
    )
    specs[STAGE_FAVICONS] = StageSpec(
        name=STAGE_FAVICONS,
        produce=_produce_favicons,
        encode=_encode_favicons,
        decode=_decode_favicons,
        deps=(STAGE_SCRAPE,),
        feature=FEATURE_FAVICONS,
        resources=frozenset((RESOURCE_WEB, RESOURCE_LLM)),
        datasets=("web",),
        config_slice=_favicons_slice,
    )
    specs[STAGE_MERGE] = StageSpec(
        name=STAGE_MERGE,
        produce=_produce_merge,
        encode=_encode_merge,
        decode=_decode_merge,
        deps=(),  # filled in by build_stage_graph from the enabled features
        backbone=True,
        require_all_deps=False,
        datasets=("whois",),
        config_slice=_merge_slice,
    )
    return specs


def _enabled_stage_names(config: BorgesConfig) -> List[str]:
    names = [STAGE_OID_W]
    if config.has(FEATURE_OID_P):
        names.append(STAGE_OID_P)
    if config.has(FEATURE_NOTES_AKA):
        names.extend([STAGE_NER_EXTRACT, STAGE_NOTES_AKA])
    if config.has(FEATURE_RR) or config.has(FEATURE_FAVICONS):
        names.append(STAGE_SCRAPE)
    if config.has(FEATURE_RR):
        names.append(STAGE_RR)
    if config.has(FEATURE_FAVICONS):
        names.append(STAGE_FAVICONS)
    names.append(STAGE_MERGE)
    return names


def build_stage_graph(
    config: BorgesConfig,
    targets: Optional[Sequence[str]] = None,
) -> "OrderedDict[str, StageSpec]":
    """The resolved DAG for one configuration.

    *targets* optionally restricts execution to a stage subset (the CLI's
    ``--stages``): the graph keeps the targets, their transitive
    dependencies, and the backbone (``oid_w`` and ``merge``), so a
    restricted run still yields a mapping over the surviving features.
    """
    specs = _all_specs()
    enabled = [n for n in _enabled_stage_names(config)]
    if targets is not None:
        unknown = sorted(set(targets) - set(ALL_STAGES))
        if unknown:
            raise ConfigError(
                f"unknown stages: {unknown}; known: {sorted(ALL_STAGES)}"
            )
        keep = {STAGE_OID_W, STAGE_MERGE}
        frontier = [t for t in targets if t in enabled]
        while frontier:
            name = frontier.pop()
            if name in keep:
                continue
            keep.add(name)
            frontier.extend(specs[name].deps)
        enabled = [n for n in enabled if n in keep]

    graph: "OrderedDict[str, StageSpec]" = OrderedDict()
    for name in enabled:
        spec = specs[name]
        if name == STAGE_MERGE:
            feature_stages = tuple(
                n for n in enabled if specs[n].feature is not None
            )
            spec = dataclasses.replace(spec, deps=feature_stages)
        else:
            spec = dataclasses.replace(
                spec, deps=tuple(d for d in spec.deps if d in enabled)
            )
        graph[name] = spec
    return graph
