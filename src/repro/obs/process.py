"""Process-level resource observations.

One number matters for the scale work: the high-water resident set size
of this process.  ``ru_maxrss`` is monotonic for a process lifetime —
it never goes down — which is why the scale benchmarks measure each
point in a fresh subprocess; within one run it is exactly the "did we
ever materialize too much at once" gauge the streaming/sharding
refactor is accountable to.
"""

from __future__ import annotations

import sys
from typing import Optional

from .registry import MetricsRegistry, get_registry

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]

#: Gauge name the manifest / `borges telemetry` surface.
PEAK_RSS_GAUGE = "process_peak_rss_bytes"


def peak_rss_bytes() -> int:
    """The process's peak resident set size in bytes (0 if unknown).

    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS; both are
    normalised to bytes here.
    """
    if resource is None:
        return 0
    usage = resource.getrusage(resource.RUSAGE_SELF)
    scale = 1 if sys.platform == "darwin" else 1024
    return int(usage.ru_maxrss) * scale


def record_peak_rss(registry: Optional[MetricsRegistry] = None) -> int:
    """Sample peak RSS into :data:`PEAK_RSS_GAUGE`; returns the bytes."""
    value = peak_rss_bytes()
    target = registry if registry is not None else get_registry()
    target.gauge(
        PEAK_RSS_GAUGE, "high-water resident set size of this process"
    ).set(value)
    return value
