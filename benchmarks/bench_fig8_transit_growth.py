"""Figure 8 — marginal network growth of organizations along AS-Rank.

Paper: the top 100 networks gain ≈5 additional ASNs on average under
Borges; the effect extends through the top 1,000 (cumulative slope ≈1)
and tapers to near zero in the long tail.  The shape: a steep decreasing
gradient of mean marginal growth from the top-100 window to the full
table (absolute magnitudes scale with the 1:10 universe).
"""

from conftest import run_and_render


def test_fig8_transit_marginal_growth(benchmark, ctx):
    report = run_and_render(benchmark, ctx, "fig8")
    rows = {row["window"]: row for row in report.rows}

    top100 = rows["top 100"]["mean_marginal_growth"]
    top1k = rows["top 1,000"]["mean_marginal_growth"]
    top10k = rows["top 10,000"]["mean_marginal_growth"]

    # Strictly decreasing gradient: consolidation concentrates at the top.
    assert top100 > top1k > top10k
    # The top-100 ranks gain substantially (paper: ≈5 at full scale; the
    # 1:10 universe caps carrier size to keep Table 6's deltas in band).
    assert top100 >= 0.8
    assert top100 > 4 * top10k
    # The long tail is essentially flat.
    assert top10k < 0.5 * top1k

    # The cumulative series is monotone and growth is top-loaded: the
    # top decile of ranks holds several times its proportional share.
    xs, ys = report.series["cumulative_growth"]
    assert ys == sorted(ys)
    total = ys[-1]
    top_decile_cut = max(i for i, x in enumerate(xs) if x <= 0.1 * xs[-1])
    assert ys[top_decile_cut] > 0.3 * total
