"""Exception hierarchy for the Borges reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Sub-hierarchies
mirror the package layout (data loading, LLM, web, pipeline).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package.

    ``retryable`` classifies the failure for the resilience layer
    (:mod:`repro.resilience`): transient faults — rate limits, timeouts,
    connection resets — are worth retrying with backoff; everything else
    is fatal and propagates immediately.
    """

    retryable = False


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class DataError(ReproError):
    """A dataset is malformed, inconsistent, or missing required fields."""


class SchemaError(DataError):
    """A record does not conform to the expected data schema."""


class SnapshotError(DataError):
    """A snapshot file could not be loaded or serialized."""


class UnknownASNError(DataError):
    """An ASN was referenced that is not present in the dataset."""

    def __init__(self, asn: int) -> None:
        super().__init__(f"unknown ASN: {asn}")
        self.asn = asn


class UnknownOrgError(DataError):
    """An organization id was referenced that no snapshot knows about."""

    def __init__(self, org_id: str) -> None:
        super().__init__(f"unknown organization: {org_id}")
        self.org_id = org_id


class ServeError(ReproError):
    """Base class for query-service (read-path) failures."""


class NoSnapshotError(ServeError):
    """The query service has no mapping snapshot loaded yet."""

    def __init__(self) -> None:
        super().__init__("no mapping snapshot loaded")


class OverloadedError(ServeError):
    """The admission gate shed this request (HTTP 429 analogue).

    Shedding happens *before* any work: the concurrency gate is full and
    the wait queue is at its depth limit, so the cheapest correct answer
    is an immediate rejection with a retry hint.  ``retry_after`` is the
    suggested client backoff in seconds.
    """

    retryable = True

    def __init__(
        self, endpoint: str, retry_after: float, inflight: int, queued: int
    ) -> None:
        super().__init__(
            f"overloaded: {endpoint!r} shed with {inflight} in flight and "
            f"{queued} queued; retry after {retry_after:.3f}s"
        )
        self.endpoint = endpoint
        self.retry_after = retry_after
        self.inflight = inflight
        self.queued = queued


class DeadlineExceededError(ServeError):
    """A request's deadline expired while it waited for admission.

    Unlike :class:`OverloadedError` this request *did* spend its full
    time budget queued — the service is saturated rather than bursting —
    so the HTTP layer answers 503, not 429.
    """

    def __init__(self, endpoint: str, deadline: float) -> None:
        super().__init__(
            f"deadline exceeded: {endpoint!r} waited past its "
            f"{deadline:.3f}s budget"
        )
        self.endpoint = endpoint
        self.deadline = deadline


class SnapshotIntegrityError(SnapshotError):
    """A mapping/release input failed digest or schema verification.

    Raised *before* :meth:`~repro.serve.store.SnapshotStore.swap`, so a
    corrupt input can never become the active generation.  The fields
    make the failure actionable: what was loaded, why it was rejected,
    and where the corrupt bytes were quarantined (if they were a file).
    """

    def __init__(
        self,
        source: str,
        reason: str,
        path: str = "",
        expected_digest: str = "",
        actual_digest: str = "",
        quarantined_to: str = "",
    ) -> None:
        detail = f"snapshot integrity failure ({source}): {reason}"
        if path:
            detail += f" [{path}]"
        if quarantined_to:
            detail += f" (quarantined to {quarantined_to})"
        super().__init__(detail)
        self.source = source
        self.reason = reason
        self.path = path
        self.expected_digest = expected_digest
        self.actual_digest = actual_digest
        self.quarantined_to = quarantined_to

    def to_json(self) -> dict:
        """Structured form for logs, manifests and HTTP error bodies."""
        return {
            "source": self.source,
            "reason": self.reason,
            "path": self.path,
            "expected_digest": self.expected_digest,
            "actual_digest": self.actual_digest,
            "quarantined_to": self.quarantined_to,
        }


class RollbackUnavailableError(ServeError):
    """A rollback was requested but no last-known-good generation exists."""

    def __init__(self) -> None:
        super().__init__("no last-known-good generation to roll back to")


class UnknownGenerationError(ServeError):
    """A time-travel query named a generation the archive does not hold."""

    def __init__(self, generation: int, reason: str = "") -> None:
        detail = f"unknown snapshot generation: {generation}"
        if reason:
            detail += f" ({reason})"
        super().__init__(detail)
        self.generation = generation
        self.reason = reason


class WatchError(ReproError):
    """Base class for continuous-operation (``borges watch``) failures."""


class JournalIntegrityError(WatchError):
    """The run journal's digest chain is broken mid-file.

    A truncated *final* line is the expected crash artifact and is
    tolerated by replay; a mid-file break means the journal was edited
    or corrupted and resuming from it would be unsafe.
    """

    def __init__(self, path: str, seq: int, reason: str) -> None:
        super().__init__(
            f"journal integrity failure at entry {seq} in {path}: {reason}"
        )
        self.path = path
        self.seq = seq
        self.reason = reason


class ArchiveError(WatchError):
    """The versioned snapshot archive refused an operation."""


class ArchiveImmutabilityError(ArchiveError):
    """A write would have overwritten an existing archive generation."""

    def __init__(self, generation: int, path: str) -> None:
        super().__init__(
            f"archive generation {generation} already exists at {path}; "
            "archive entries are immutable"
        )
        self.generation = generation
        self.path = path


class DiskPressureError(ArchiveError):
    """Free disk below the archive's floor even after pruning.

    Retryable: the supervisor backs off and re-tries the publish once
    retention (or an operator) has freed space.
    """

    retryable = True

    def __init__(self, free_bytes: int, floor_bytes: int) -> None:
        super().__init__(
            f"disk pressure: {free_bytes} bytes free is below the "
            f"{floor_bytes}-byte archive floor"
        )
        self.free_bytes = free_bytes
        self.floor_bytes = floor_bytes


class RestartBudgetExceededError(WatchError):
    """The watch supervisor exhausted its crash-restart budget."""

    def __init__(self, restarts: int, window_seconds: float) -> None:
        super().__init__(
            f"watch restart budget exhausted: {restarts} pipeline crashes "
            f"within {window_seconds:.0f}s"
        )
        self.restarts = restarts
        self.window_seconds = window_seconds


class LLMError(ReproError):
    """Base class for LLM client/back-end failures."""


class PromptError(LLMError):
    """A prompt template could not be rendered."""


class LLMResponseError(LLMError):
    """The model returned output that could not be parsed."""

    def __init__(self, message: str, raw_output: str = "") -> None:
        super().__init__(message)
        self.raw_output = raw_output


class LLMBackendError(LLMError):
    """The backing model/service failed (simulated rate limits, etc.).

    Backend failures default to retryable; :class:`LLMInvalidRequestError`
    marks the ones where retrying the same request cannot help.
    """

    retryable = True


class LLMRateLimitError(LLMBackendError):
    """The backend rate-limited the request (HTTP 429 analogue)."""


class LLMTimeoutError(LLMBackendError):
    """The backend did not answer in time."""


class LLMConnectionError(LLMBackendError):
    """The connection to the backend dropped mid-request."""


class LLMInvalidRequestError(LLMBackendError):
    """The request itself is malformed; retrying it is pointless."""

    retryable = False


class WebError(ReproError):
    """Base class for simulated-web failures."""


class URLError(WebError):
    """A URL could not be parsed or normalized."""

    def __init__(self, url: str, reason: str) -> None:
        super().__init__(f"bad URL {url!r}: {reason}")
        self.url = url
        self.reason = reason


class FetchError(WebError):
    """A simulated HTTP fetch failed (host down, too many redirects...).

    ``transient`` distinguishes failures worth re-attempting (timeouts,
    resets, 5xx) from permanent ones (NXDOMAIN, bad redirects); the
    scraper retries and re-attempts only the former.
    """

    def __init__(self, url: str, reason: str, transient: bool = False) -> None:
        super().__init__(f"fetch failed for {url!r}: {reason}")
        self.url = url
        self.reason = reason
        self.transient = transient
        self.retryable = transient


class RedirectLoopError(FetchError):
    """A redirect chain exceeded the maximum number of hops."""

    def __init__(self, url: str, max_hops: int) -> None:
        super().__init__(url, f"redirect chain exceeded {max_hops} hops")
        self.max_hops = max_hops


class CircuitOpenError(ReproError):
    """A circuit breaker rejected the call without attempting it."""

    def __init__(self, name: str) -> None:
        super().__init__(f"circuit {name!r} is open; failing fast")
        self.name = name


class PipelineError(ReproError):
    """A Borges pipeline stage failed."""


class ExperimentError(ReproError):
    """An experiment harness failure (unknown experiment id, etc.)."""
