"""WorkerPool: N forked query servers over one shared snapshot mapping.

The single-process serve tier tops out at one GIL's worth of lookups.
:class:`WorkerPool` breaks that ceiling without giving up any snapshot
semantics: the supervisor compiles each generation to a blob segment
(one physical copy under ``/dev/shm``), and forks N worker processes
that ``mmap`` it read-only and serve the full HTTP API behind
``SO_REUSEPORT`` — the kernel load-balances accepted connections across
workers, so clients see one host:port with N processes behind it.

**Hot-swap fence.**  ``publish(blob)`` writes the new segment, then
atomically renames the generation pointer (the fence — see
:mod:`.segment`), then waits for every worker's state file to ack the
new generation before unlinking the replaced segment.  Workers that
were killed mid-swap are respawned by the monitor thread and come up
*on the current pointer*, so the fence converges even under churn;
POSIX keeps already-mapped old segments valid for workers still
draining or holding rollback history.

**Per-worker semantics.**  Each worker owns a private
:class:`~repro.serve.store.SnapshotStore` (rollback history, stale
accounting, quarantine) and :class:`~repro.obs.MetricsRegistry`, plus
an admin HTTP server on an ephemeral port for per-worker ``/metrics``
(``borges top --pool`` aggregates these).  Worker generation numbers
are aligned to the pool pointer via
:meth:`~repro.serve.store.SnapshotStore.advance_generation`, so a
respawned worker reports the same generation as its siblings.

:func:`run_forked` is the generic fork-and-supervise primitive the pool
and ``run_sharded(--shard-workers process)`` share: run callables in
forked children, pickle only results back over a pipe.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from ...errors import ServeError
from ...logutil import get_logger
from ...obs import MetricsRegistry
from ..store import DEFAULT_HISTORY_LIMIT, SnapshotStore
from .blob import compile_index
from .segment import MappedBlob, SegmentStore, default_shm_root

_LOG = get_logger("serve.shm.pool")

#: Fork start method: children inherit the compiled blob path and config
#: by memory, and (unlike spawn) the callables given to
#: :func:`run_forked` need not be picklable.
_MP = multiprocessing.get_context("fork")

#: Supervisor state file other tools (``borges top --pool``) read.
POOL_STATE_NAME = "pool.json"


# ---------------------------------------------------------------------------
# generic fork/supervise plumbing


@dataclass
class ForkedOutcome:
    """Final verdict for one supervised task across all of its attempts.

    ``exit_reason`` is the *last* attempt's fate: ``ok``, ``error`` (the
    thunk raised), ``crashed`` (the child died without reporting —
    segfault, ``kill -9``, ``os._exit``), ``deadline`` (the watchdog
    SIGKILLed / abandoned a hung attempt), or ``cancelled`` (a
    ``fail_fast`` sibling failed before this task was decided).
    """

    index: int
    ok: bool
    value: object = None
    error: str = ""
    exit_reason: str = "ok"
    attempts: int = 1
    duration_seconds: float = 0.0
    heartbeats: int = 0

    @property
    def retries(self) -> int:
        return max(0, self.attempts - 1)

    def to_json(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "ok": self.ok,
            "error": self.error,
            "exit_reason": self.exit_reason,
            "attempts": self.attempts,
            "retries": self.retries,
            "duration_seconds": round(self.duration_seconds, 6),
            "heartbeats": self.heartbeats,
        }


@dataclass
class _Running:
    """One in-flight forked attempt (parent-side bookkeeping)."""

    index: int
    attempt: int  # 0-based
    proc: object
    started: float
    heartbeats: int = 0


def _supervised_entry(thunk, attempt: int, conn, heartbeat_interval: float) -> None:
    """Child side: heartbeat over the result pipe while the thunk runs.

    The pipe carries ``(tag, payload)`` tuples — ``("hb", n)`` liveness
    beats from a daemon thread, then exactly one ``("ok", result)`` or
    ``("err", message)``.  A lock serialises the two senders; interleaved
    ``send`` calls from different threads would corrupt the stream.
    """
    send_lock = threading.Lock()
    stop = threading.Event()

    def _beat() -> None:
        beats = 0
        while not stop.wait(heartbeat_interval):
            beats += 1
            try:
                with send_lock:
                    conn.send(("hb", beats))
            except OSError:
                return

    if heartbeat_interval > 0:
        threading.Thread(
            target=_beat, daemon=True, name="borges-heartbeat"
        ).start()
    try:
        result = thunk(attempt)
    except BaseException as exc:  # noqa: BLE001 — report, don't traceback
        stop.set()
        try:
            with send_lock:
                conn.send(("err", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        os._exit(1)
    stop.set()
    with send_lock:
        conn.send(("ok", result))
    conn.close()
    os._exit(0)


def _drain_and_reap(conn, proc, timeout: float = 5.0) -> None:
    """Drain a child's pipe end, then terminate and join the child.

    Order matters: a child mid-``send`` of a payload larger than the
    pipe buffer is blocked in ``write(2)`` and cannot exit, so a
    ``join()`` that never drains the parent end deadlocks.  Drain first,
    keep draining while the join waits, escalate to SIGKILL at the
    timeout.
    """

    def _drain() -> None:
        try:
            while conn.poll(0):
                try:
                    conn.recv()
                except (EOFError, OSError):
                    return
        except (OSError, ValueError):
            return

    _drain()
    if proc.is_alive():
        proc.terminate()
    deadline = time.monotonic() + timeout
    while proc.is_alive() and time.monotonic() < deadline:
        _drain()
        proc.join(0.05)
    if proc.is_alive():
        proc.kill()
    proc.join(1.0)
    conn.close()


def run_supervised(
    thunks: Sequence[Callable[[int], object]],
    *,
    max_workers: Optional[int] = None,
    mode: str = "process",
    deadline: Optional[float] = None,
    retries: int = 0,
    retry_policy=None,
    heartbeat_interval: float = 0.5,
    fail_fast: bool = False,
    on_outcome: Optional[Callable[[ForkedOutcome], None]] = None,
) -> List[ForkedOutcome]:
    """Supervised fan-out: run each thunk to a :class:`ForkedOutcome`.

    Each *thunk* is called as ``thunk(attempt)`` (0-based attempt
    number).  At most *max_workers* attempts run at once.  An attempt
    that raises, crashes, or outlives *deadline* seconds (process mode:
    SIGKILL; thread mode: the watchdog abandons the daemon thread —
    threads cannot be killed) is retried up to *retries* more times,
    sleeping *retry_policy*'s seeded-jitter backoff between attempts.
    Nothing raises: every task gets an outcome, and ``on_outcome`` fires
    from the supervisor as each task reaches its final verdict.

    With ``fail_fast`` the first exhausted task stops the fan-out:
    in-flight siblings are drained-then-terminated (never joined while
    their pipe is full) and undecided tasks come back ``cancelled``.

    The total wall clock per task is bounded by
    ``deadline × (retries + 1)`` plus backoff, which is what makes a
    sharded run survive a sleep-forever shard.
    """
    thunks = list(thunks)
    if not thunks:
        return []
    if mode not in ("process", "thread"):
        raise ServeError(f"unknown supervised mode {mode!r}")
    cap = max(1, max_workers if max_workers else len(thunks))
    if retry_policy is None:
        from ...resilience.policy import RetryPolicy

        retry_policy = RetryPolicy(base_delay=0.0, jitter=0.0)
    if mode == "thread":
        return _run_supervised_threads(
            thunks, cap, deadline, retries, retry_policy, fail_fast,
            on_outcome,
        )
    return _run_supervised_procs(
        thunks, cap, deadline, retries, retry_policy, heartbeat_interval,
        fail_fast, on_outcome,
    )


def _cancelled(index: int, attempts: int = 0) -> ForkedOutcome:
    return ForkedOutcome(
        index=index,
        ok=False,
        error="cancelled after a sibling task failed",
        exit_reason="cancelled",
        attempts=attempts,
    )


def _run_supervised_procs(
    thunks, cap, deadline, retries, retry_policy, heartbeat_interval,
    fail_fast, on_outcome,
) -> List[ForkedOutcome]:
    results: List[Optional[ForkedOutcome]] = [None] * len(thunks)
    heartbeat_tally = [0] * len(thunks)
    spent = [0.0] * len(thunks)  # completed-attempt seconds per task
    pending = list(range(len(thunks)))  # first attempts, ready now
    retry_at: List[tuple] = []  # (ready_monotonic, index, attempt)
    active: Dict[object, _Running] = {}
    stop_fanout = False

    def _spawn(index: int, attempt: int) -> None:
        parent, child = _MP.Pipe(duplex=False)
        proc = _MP.Process(
            target=_supervised_entry,
            args=(thunks[index], attempt, child, heartbeat_interval),
            daemon=True,
            name=f"borges-forked-{index}-a{attempt}",
        )
        proc.start()
        child.close()
        active[parent] = _Running(index, attempt, proc, time.monotonic())

    def _finalize(run: _Running, ok, value, error, reason, duration) -> ForkedOutcome:
        outcome = ForkedOutcome(
            index=run.index,
            ok=ok,
            value=value,
            error=error,
            exit_reason=reason,
            attempts=run.attempt + 1,
            duration_seconds=spent[run.index] + duration,
            heartbeats=heartbeat_tally[run.index],
        )
        results[run.index] = outcome
        if on_outcome is not None:
            on_outcome(outcome)
        return outcome

    def _attempt_failed(run: _Running, error: str, reason: str) -> bool:
        """Retry or finalize a failed attempt; True when task is exhausted."""
        duration = time.monotonic() - run.started
        if run.attempt < retries:
            spent[run.index] += duration
            delay = retry_policy.delay_for(
                run.attempt + 1, key=f"task-{run.index}"
            )
            retry_at.append((time.monotonic() + delay, run.index, run.attempt + 1))
            _LOG.warning(
                "supervised task %d attempt %d failed (%s: %s); retrying "
                "in %.3fs", run.index, run.attempt + 1, reason, error, delay,
            )
            return False
        _finalize(run, False, None, error, reason, duration)
        return True

    try:
        while pending or retry_at or active:
            now = time.monotonic()
            retry_at.sort()
            while retry_at and retry_at[0][0] <= now and len(active) < cap:
                _, index, attempt = retry_at.pop(0)
                _spawn(index, attempt)
            while pending and len(active) < cap:
                _spawn(pending.pop(0), 0)
            if not active:
                # Only backoff sleeps remain; wait for the earliest.
                time.sleep(
                    max(0.0, min(r[0] for r in retry_at) - time.monotonic())
                )
                continue
            timeout = None
            if deadline is not None:
                expiry = min(r.started + deadline for r in active.values())
                timeout = max(0.0, expiry - time.monotonic())
            if retry_at:
                until_retry = max(0.0, retry_at[0][0] - time.monotonic())
                timeout = (
                    until_retry if timeout is None
                    else min(timeout, until_retry)
                )
            exhausted = False
            for conn in _connection_wait(list(active), timeout):
                run = active[conn]
                try:
                    tag, payload = conn.recv()
                except (EOFError, OSError):
                    active.pop(conn)
                    conn.close()
                    run.proc.join()
                    exhausted |= _attempt_failed(
                        run,
                        f"exited with code {run.proc.exitcode} "
                        "before reporting a result",
                        "crashed",
                    )
                    continue
                if tag == "hb":
                    run.heartbeats += 1
                    heartbeat_tally[run.index] += 1
                    continue
                active.pop(conn)
                conn.close()
                run.proc.join()
                duration = time.monotonic() - run.started
                if tag == "ok":
                    _finalize(run, True, payload, "", "ok", duration)
                else:
                    exhausted |= _attempt_failed(run, str(payload), "error")
            if deadline is not None:
                now = time.monotonic()
                hung = [
                    conn for conn, run in active.items()
                    if now - run.started >= deadline
                ]
                for conn in hung:
                    run = active.pop(conn)
                    # SIGKILL, not SIGTERM: a truly hung child may ignore
                    # or never reach a TERM handler.
                    run.proc.kill()
                    _drain_and_reap(conn, run.proc)
                    exhausted |= _attempt_failed(
                        run,
                        f"hung past the {deadline:.3g}s deadline (SIGKILLed "
                        f"after {run.heartbeats} heartbeats)",
                        "deadline",
                    )
            if fail_fast and exhausted:
                stop_fanout = True
                break
    finally:
        for conn, run in list(active.items()):
            run.proc.kill()
            _drain_and_reap(conn, run.proc)
        active.clear()
    if stop_fanout:
        for index, outcome in enumerate(results):
            if outcome is None:
                results[index] = _cancelled(index)
    return [outcome for outcome in results if outcome is not None]


def _run_supervised_threads(
    thunks, cap, deadline, retries, retry_policy, fail_fast, on_outcome,
) -> List[ForkedOutcome]:
    from concurrent.futures import ThreadPoolExecutor, as_completed

    abort = threading.Event()

    def _supervise_one(index: int) -> ForkedOutcome:
        total = 0.0
        for attempt in range(retries + 1):
            if abort.is_set():
                return _cancelled(index, attempts=attempt)
            box: Dict[str, object] = {}
            done = threading.Event()

            def _attempt_body(attempt: int = attempt) -> None:
                try:
                    box["value"] = thunks[index](attempt)
                    box["ok"] = True
                except BaseException as exc:  # noqa: BLE001
                    box["ok"] = False
                    box["error"] = f"{type(exc).__name__}: {exc}"
                finally:
                    done.set()

            started = time.monotonic()
            threading.Thread(
                target=_attempt_body,
                daemon=True,
                name=f"borges-supervised-{index}-a{attempt}",
            ).start()
            if deadline is not None:
                finished = done.wait(deadline)
            else:
                done.wait()
                finished = True
            total += time.monotonic() - started
            if finished and box.get("ok"):
                return ForkedOutcome(
                    index=index,
                    ok=True,
                    value=box.get("value"),
                    attempts=attempt + 1,
                    duration_seconds=total,
                )
            if not finished:
                # A thread cannot be SIGKILLed; abandon the attempt (the
                # daemon thread keeps running harmlessly and its late
                # result is ignored) and account it like a killed child.
                error = (
                    f"hung past the {deadline:.3g}s deadline "
                    "(attempt abandoned)"
                )
                reason = "deadline"
            else:
                error = str(box.get("error", ""))
                reason = "error"
            if attempt < retries:
                delay = retry_policy.delay_for(attempt + 1, key=f"task-{index}")
                if delay > 0.0:
                    time.sleep(delay)
                continue
            return ForkedOutcome(
                index=index,
                ok=False,
                error=error,
                exit_reason=reason,
                attempts=attempt + 1,
                duration_seconds=total,
            )
        raise AssertionError("unreachable")  # pragma: no cover

    results: List[Optional[ForkedOutcome]] = [None] * len(thunks)
    with ThreadPoolExecutor(max_workers=cap) as pool:
        futures = {
            pool.submit(_supervise_one, index): index
            for index in range(len(thunks))
        }
        for future in as_completed(futures):
            outcome = future.result()
            results[futures[future]] = outcome
            if outcome.exit_reason != "cancelled" and on_outcome is not None:
                on_outcome(outcome)
            if fail_fast and not outcome.ok:
                abort.set()
    return [outcome for outcome in results if outcome is not None]


def run_forked(
    thunks: Sequence[Callable[[], object]],
    max_workers: Optional[int] = None,
) -> List[object]:
    """Run *thunks* in forked child processes; results in input order.

    The strict façade over :func:`run_supervised`: no retries, no
    deadline, and the first failure raises
    :class:`~repro.errors.ServeError` after in-flight siblings are
    drained-then-terminated (draining first matters — a sibling blocked
    writing a large pickled result cannot exit, so joining it without
    emptying the pipe would deadlock).  Callers that want partial
    results or retries use :func:`run_supervised` directly.
    """
    wrapped = [
        (lambda _attempt, thunk=thunk: thunk()) for thunk in thunks
    ]
    outcomes = run_supervised(
        wrapped,
        max_workers=max_workers,
        mode="process",
        heartbeat_interval=0.0,
        fail_fast=True,
    )
    for outcome in outcomes:
        if not outcome.ok and outcome.exit_reason != "cancelled":
            raise ServeError(
                f"forked worker {outcome.index} failed: {outcome.error}"
            )
    return [outcome.value for outcome in outcomes]


# ---------------------------------------------------------------------------
# the serve worker pool


@dataclass(frozen=True)
class WorkerConfig:
    """Knobs shared by the supervisor and every worker it forks."""

    host: str = "127.0.0.1"
    #: Shared listen port; 0 lets the supervisor reserve an ephemeral one.
    port: int = 0
    workers: int = 2
    #: Seconds between a worker's generation-pointer polls.
    poll_interval: float = 0.05
    #: Per-worker rollback history depth (mirrors the single-process tier).
    history_limit: int = DEFAULT_HISTORY_LIMIT
    #: Per-worker admission gate; 0 disables it.
    max_inflight: int = 0
    max_queue: int = 128
    deadline: float = 1.0
    #: How long ``publish`` waits for every worker to ack a generation.
    swap_timeout: float = 15.0
    #: Minimum gap between respawns of the same worker index (crash-loop
    #: damping, not a rate limiter).
    respawn_backoff: float = 0.25


def _worker_main(
    config: WorkerConfig, worker_index: int, root: str, port: int
) -> None:
    """One forked query worker: map the pointer, serve, follow swaps."""
    # Imported here, not at module top: the parent imports this module
    # long before forking, so these are warm; keeping them out of the
    # module namespace documents that only workers need the serve stack.
    from ..admission import AdmissionController, AdmissionLimits
    from ..httpd import QueryServer
    from ..service import QueryService

    segments = SegmentStore(root)
    registry = MetricsRegistry()
    store = SnapshotStore(
        registry=registry, history_limit=config.history_limit
    )
    admission = None
    if config.max_inflight:
        limits = AdmissionLimits(
            max_inflight=config.max_inflight,
            max_queue=config.max_queue,
            default_deadline=config.deadline,
        ).validate()
        admission = AdmissionController(limits, registry=registry)
    service = QueryService(store=store, registry=registry, admission=admission)
    registry.gauge(
        "serve_worker_index", "This process's index within the pool"
    ).set(worker_index)

    # Mapped segments this worker still references: the active one, any
    # retiring one, and the rollback history.  Sized so nothing a local
    # rollback could restore is ever closed; evicted mappings are closed
    # explicitly (the files themselves may be long unlinked).
    mapped: "OrderedDict[int, MappedBlob]" = OrderedDict()
    applied = 0

    def _swap_to(generation: int):
        blob = segments.map_generation(generation)
        store.advance_generation(generation)
        snapshot = store.swap(
            blob.index, source="pool", label=f"segment generation {generation}"
        )
        mapped[generation] = blob
        while len(mapped) > config.history_limit + 2:
            _, evicted = mapped.popitem(last=False)
            evicted.close()
        return snapshot

    # First generation: the supervisor publishes before forking, so the
    # pointer is normally already there; a short wait covers races.
    deadline = time.monotonic() + config.swap_timeout
    pointer = segments.pointer()
    while pointer is None and time.monotonic() < deadline:
        time.sleep(config.poll_interval)
        pointer = segments.pointer()
    if pointer is None:
        _LOG.error("worker %d: no generation pointer, exiting", worker_index)
        os._exit(3)
    _swap_to(int(pointer["generation"]))
    applied = int(pointer["generation"])

    server = QueryServer(
        service, host=config.host, port=port, reuse_port=True
    ).start()
    admin = QueryServer(service, host=config.host, port=0).start()

    state_path = segments.root / f"worker-{worker_index}.json"

    def _write_state() -> None:
        segments._atomic_write(
            state_path,
            json.dumps(
                {
                    "worker": worker_index,
                    "pid": os.getpid(),
                    "port": server.port,
                    "admin_port": admin.port,
                    "generation": applied,
                    "serving_generation": store.current().generation,
                    "updated_unix": round(time.time(), 3),
                },
                sort_keys=True,
            ).encode("utf-8"),
        )

    _write_state()
    _LOG.info(
        "worker %d (pid %d) serving generation %d on %s:%d (admin %d)",
        worker_index, os.getpid(), applied, config.host, server.port,
        admin.port,
    )

    stopping = threading.Event()

    def _terminate(signum: int, frame: object) -> None:
        stopping.set()

    signal.signal(signal.SIGTERM, _terminate)
    signal.signal(signal.SIGINT, _terminate)

    supervisor = os.getppid()
    while not stopping.is_set():
        stopping.wait(config.poll_interval)
        if os.getppid() != supervisor:
            # The supervisor died; exit rather than squat on the port.
            _LOG.warning("worker %d: supervisor gone, exiting", worker_index)
            break
        pointer = segments.pointer()
        if pointer is None:
            continue
        generation = int(pointer.get("generation", 0))
        if generation <= applied:
            continue
        # try_swap gives a failed remap (torn read mid-publish, corrupt
        # segment) the same keep-serving/stale semantics as every other
        # snapshot source; the next poll retries.
        if store.try_swap(
            lambda: _swap_to(generation), label=f"segment {generation}"
        ) is not None:
            applied = generation
            _write_state()

    server.stop()
    admin.stop()
    for blob in mapped.values():
        blob.close()
    try:
        state_path.unlink()
    except OSError:
        pass


class WorkerPool:
    """Supervise N forked query workers over one segment store.

    Lifecycle: ``start(blob)`` reserves the shared port, publishes the
    first generation, forks the workers and waits until every one acks
    it; ``publish(blob)`` hot-swaps all workers through the pointer
    fence; ``stop()`` tears everything down and removes the state
    directory.  A monitor thread respawns any worker that dies —
    respawned workers come up on the *current* pointer generation.
    """

    def __init__(
        self,
        config: Optional[WorkerConfig] = None,
        state_dir: Optional[Path] = None,
    ) -> None:
        self.config = config or WorkerConfig()
        if self.config.workers < 1:
            raise ValueError("a worker pool needs at least one worker")
        root = Path(
            state_dir
            if state_dir is not None
            else default_shm_root() / f"borges-pool-{os.getpid()}"
        )
        self.segments = SegmentStore(root)
        self.generation = 0
        self.respawns = 0
        self._reserve = None
        self._port = 0
        self._procs: List[Optional[multiprocessing.Process]] = []
        self._last_respawn: List[float] = []
        self._monitor: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._publish_lock = threading.Lock()

    # -- addressing --------------------------------------------------------

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def state_dir(self) -> Path:
        return self.segments.root

    def _reserve_port(self) -> None:
        """Hold the shared port with a bound, *non-listening* socket.

        Every member of an ``SO_REUSEPORT`` group must set the option
        before bind; a bound socket that never listens joins the group
        (keeping the port number stable across full worker churn) but
        receives no connections.
        """
        import socket as socket_module

        sock = socket_module.socket(
            socket_module.AF_INET, socket_module.SOCK_STREAM
        )
        if hasattr(socket_module, "SO_REUSEPORT"):
            sock.setsockopt(
                socket_module.SOL_SOCKET, socket_module.SO_REUSEPORT, 1
            )
        sock.bind((self.config.host, self.config.port))
        self._reserve = sock
        self._port = sock.getsockname()[1]

    # -- worker state ------------------------------------------------------

    def worker_state(self, index: int) -> Optional[Dict[str, object]]:
        """One worker's last state-file write, or ``None``."""
        path = self.segments.root / f"worker-{index}.json"
        try:
            state = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        return state if isinstance(state, dict) else None

    def worker_states(self) -> List[Optional[Dict[str, object]]]:
        return [self.worker_state(i) for i in range(self.config.workers)]

    def worker_pids(self) -> List[int]:
        return [
            proc.pid if proc is not None and proc.pid is not None else 0
            for proc in self._procs
        ]

    def _write_pool_state(self) -> None:
        self.segments._atomic_write(
            self.segments.root / POOL_STATE_NAME,
            json.dumps(
                {
                    "supervisor_pid": os.getpid(),
                    "host": self.host,
                    "port": self._port,
                    "workers": self.config.workers,
                    "generation": self.generation,
                    "worker_pids": self.worker_pids(),
                    "respawns": self.respawns,
                    "state_dir": str(self.segments.root),
                    "updated_unix": round(time.time(), 3),
                },
                sort_keys=True,
            ).encode("utf-8"),
        )

    # -- lifecycle ---------------------------------------------------------

    def _spawn(self, index: int) -> multiprocessing.Process:
        proc = _MP.Process(
            target=_worker_main,
            args=(self.config, index, str(self.segments.root), self._port),
            daemon=True,
            name=f"borges-worker-{index}",
        )
        proc.start()
        return proc

    def start(self, blob: bytes) -> "WorkerPool":
        """Publish *blob* as generation 1, fork workers, await readiness."""
        if self._procs:
            raise ServeError("worker pool already started")
        self._reserve_port()
        self.generation = 1
        self.segments.write_segment(1, blob)
        self.segments.set_pointer(1, workers=self.config.workers)
        self._procs = [self._spawn(i) for i in range(self.config.workers)]
        self._last_respawn = [time.monotonic()] * self.config.workers
        self._write_pool_state()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="borges-pool-monitor", daemon=True
        )
        self._monitor.start()
        self._await_generation(1)
        _LOG.info(
            "pool of %d workers serving generation 1 on %s",
            self.config.workers, self.url,
        )
        return self

    def start_index(self, index) -> "WorkerPool":
        """``start`` from a live ``MappingIndex`` (compiles the blob)."""
        return self.start(compile_index(index))

    def _monitor_loop(self) -> None:
        while not self._stopping.is_set():
            self._stopping.wait(0.1)
            if self._stopping.is_set():
                return
            changed = False
            for index, proc in enumerate(self._procs):
                if proc is None or proc.is_alive():
                    continue
                now = time.monotonic()
                if now - self._last_respawn[index] < self.config.respawn_backoff:
                    continue
                _LOG.warning(
                    "worker %d (pid %s) died with code %s; respawning",
                    index, proc.pid, proc.exitcode,
                )
                proc.join()
                self._procs[index] = self._spawn(index)
                self._last_respawn[index] = now
                self.respawns += 1
                changed = True
            if changed:
                self._write_pool_state()

    def _await_generation(self, generation: int) -> None:
        """Block until every worker acks *generation* (or later).

        An ack is a worker state file whose ``generation`` is current
        *and* whose pid matches a live worker — a stale file left by a
        killed process does not count.  The monitor thread keeps
        respawning the dead onto the current pointer, so this converges
        under churn.
        """
        deadline = time.monotonic() + self.config.swap_timeout
        while time.monotonic() < deadline:
            live = {
                proc.pid
                for proc in self._procs
                if proc is not None and proc.is_alive()
            }
            states = self.worker_states()
            acked = sum(
                1
                for state in states
                if state is not None
                and int(state.get("generation", 0)) >= generation
                and state.get("pid") in live
            )
            if acked >= self.config.workers:
                return
            time.sleep(0.02)
        raise ServeError(
            f"workers did not converge on generation {generation} within "
            f"{self.config.swap_timeout:.1f}s"
        )

    def publish(self, blob: bytes) -> int:
        """Hot-swap every worker to *blob*; returns the new generation.

        Fence ordering: segment write (fsync+rename) → pointer rename →
        all-workers ack → old segment unlink.  Workers still mapping the
        old segment (draining requests, rollback history) are unaffected
        by the unlink; the *file* disappears so nothing new maps it.
        """
        with self._publish_lock:
            if not self._procs:
                raise ServeError("worker pool is not running")
            previous = self.generation
            generation = previous + 1
            self.segments.write_segment(generation, blob)
            self.segments.set_pointer(
                generation, workers=self.config.workers
            )
            self.generation = generation
            self._await_generation(generation)
            self.segments.unlink_segment(previous)
            self._write_pool_state()
            _LOG.info(
                "pool hot-swapped to generation %d (%d bytes)",
                generation, len(blob),
            )
            return generation

    def publish_index(self, index) -> int:
        return self.publish(compile_index(index))

    def kill_worker(self, index: int, sig: int = signal.SIGKILL) -> int:
        """Hard-kill one worker (churn tests); returns the old pid."""
        proc = self._procs[index]
        if proc is None or proc.pid is None:
            raise ServeError(f"worker {index} is not running")
        pid = proc.pid
        os.kill(pid, sig)
        proc.join(5.0)
        return pid

    def stop(self, timeout: float = 5.0) -> None:
        """Terminate workers, remove segments/pointer/state, free the port."""
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout)
            self._monitor = None
        for proc in self._procs:
            if proc is not None and proc.is_alive():
                proc.terminate()
        deadline = time.monotonic() + timeout
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.kill()
                proc.join(1.0)
        self._procs = []
        if self._reserve is not None:
            self._reserve.close()
            self._reserve = None
        self.segments.cleanup()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- foreground mode (CLI) --------------------------------------------

    def serve_until_interrupt(self) -> None:
        """Block until SIGINT/SIGTERM, then stop the pool."""
        interrupted = threading.Event()

        def _interrupt(signum: int, frame: object) -> None:
            interrupted.set()

        previous = {
            sig: signal.signal(sig, _interrupt)
            for sig in (signal.SIGINT, signal.SIGTERM)
        }
        try:
            while not interrupted.is_set():
                interrupted.wait(0.5)
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
            self.stop()
