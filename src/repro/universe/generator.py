"""The universe generator: ground truth plus every exported view.

Given a :class:`~repro.config.UniverseConfig`, :func:`generate_universe`
builds one deterministic synthetic Internet:

1. ground truth — canonical paper scenarios + randomly drawn
   organizations (singletons, conglomerates, a few government-style
   many-ASN registrants) with an M&A timeline;
2. the WHOIS dataset, fragmenting conglomerates into legal entities;
3. the PeeringDB snapshot, with operator-written notes/aka/websites;
4. the simulated web, with post-merger redirect chains and favicons;
5. APNIC-style populations and an AS topology for AS-Rank;
6. annotations: the truth needed to score extraction/classification.

The implementation lives in :mod:`repro.universe.stream`, which splits
generation into a cheap plan phase and lazy org-complete chunks so huge
universes need not be materialized at once.  This module keeps the
stable entry points: :class:`UniverseGenerator` with ``plan()`` /
``stream()`` / ``generate()``, and the :class:`Universe` /
:class:`Annotations` containers.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..config import UniverseConfig
from .stream import (  # noqa: F401  (re-exported API surface)
    SYNTHETIC_ASN_BASE,
    Annotations,
    Universe,
    UniverseChunk,
    UniversePlan,
    _is_carrier,
    assemble_universe,
    build_plan,
    stream_chunks,
)

__all__ = [
    "SYNTHETIC_ASN_BASE",
    "Annotations",
    "Universe",
    "UniverseGenerator",
    "generate_universe",
]


class UniverseGenerator:
    """Deterministic builder; every random draw hangs off ``config.seed``.

    ``generate()`` is a thin collect-all facade over the streaming path:
    ``plan()`` draws every org's shape, ``stream()`` yields org-complete
    chunks, and :func:`~repro.universe.stream.assemble_universe` folds
    them — so the streamed universe is byte-identical to this one.
    """

    def __init__(self, config: Optional[UniverseConfig] = None) -> None:
        self._config = (config or UniverseConfig()).validate()

    @property
    def config(self) -> UniverseConfig:
        return self._config

    def plan(self, chunk_size: Optional[int] = None) -> UniversePlan:
        """Phase 1: per-org seeds + plan-level backbone facts."""
        return build_plan(self._config, chunk_size=chunk_size)

    def stream(
        self, chunk_size: Optional[int] = None
    ) -> Iterator[UniverseChunk]:
        """Phase 2: lazily yield org-complete chunks of the universe."""
        return stream_chunks(self.plan(chunk_size=chunk_size))

    def generate(self) -> Universe:
        """Collect-all facade: stream every chunk and assemble."""
        plan = self.plan()
        return assemble_universe(plan, stream_chunks(plan))


def generate_universe(config: Optional[UniverseConfig] = None) -> Universe:
    """Build one deterministic universe from *config* (or defaults)."""
    return UniverseGenerator(config).generate()
