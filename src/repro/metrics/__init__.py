"""Evaluation metrics: the Organization Factor (θ), confusion-matrix
scores for the LLM stages, and the marginal-growth measures of §6."""

from .org_factor import (
    cumulative_curve,
    org_factor,
    org_factor_from_mapping,
)
from .confusion import ConfusionCounts
from .growth import marginal_growth, marginal_members_growth
from .partition import PartitionScores, score_partition

__all__ = [
    "cumulative_curve",
    "org_factor",
    "org_factor_from_mapping",
    "ConfusionCounts",
    "marginal_growth",
    "marginal_members_growth",
    "PartitionScores",
    "score_partition",
]
