"""BGP-substrate bench: route propagation + relationship inference.

Extension covering the paper's §1 premise — AS-level research rests on
"heuristics to infer these connections from public BGP data".  The
synthetic topology lets the classic degree-based Gao heuristic be scored
exactly: the bench asserts valley-free propagation, ≈80% edge accuracy,
and the heuristic's textbook failure signature (peer links near the top
of the hierarchy misread as provider links).
"""

import random

from repro.asrank.bgp import collect_paths, is_valley_free
from repro.asrank.relationship_inference import (
    infer_relationships,
    score_inference,
)


def test_bgp_relationship_inference(benchmark, ctx):
    topology = ctx.universe.topology
    rng = random.Random(5)
    origins = rng.sample(topology.asns(), 200)
    collectors = topology.tier1s()[:4] + rng.sample(topology.asns(), 4)

    def run():
        announcements = collect_paths(
            topology, collectors=collectors, origins=origins
        )
        edges = infer_relationships(announcements)
        return announcements, edges

    announcements, edges = benchmark.pedantic(run, rounds=1, iterations=1)
    score = score_inference(topology, edges)
    print(
        f"\npaths={len(announcements)} edges={score.total} "
        f"accuracy={score.accuracy:.3f} "
        f"(wrong kind={score.wrong_kind}, wrong orientation="
        f"{score.wrong_orientation}, invented={score.nonexistent})"
    )

    # Every simulated announcement obeys Gao-Rexford export rules.
    assert all(is_valley_free(topology, a.path) for a in announcements)
    # The heuristic is highly accurate on the clean synthetic topology
    # (real-world dumps add noise the simulation does not model)...
    assert score.accuracy > 0.8
    # ...with the literature's failure signature: kind confusion (p2p vs
    # p2c) dominates, and adjacencies are never invented from thin air.
    assert score.wrong_kind >= score.wrong_orientation
    assert score.nonexistent == 0
