"""Trace context: W3C traceparent parsing, propagation, span identity."""

from __future__ import annotations

import threading

import pytest

from repro.obs.context import (
    SPAN_ID_HEX_LENGTH,
    TRACE_ID_HEX_LENGTH,
    TraceContext,
    current_trace_context,
    ensure_trace_context,
    generate_span_id,
    generate_trace_id,
    new_trace_context,
    parse_traceparent,
    reset_trace_context,
    set_trace_context,
    use_trace_context,
)
from repro.obs.tracer import Tracer

VALID = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"


class TestParseTraceparent:
    def test_valid_header(self):
        ctx = parse_traceparent(VALID)
        assert ctx is not None
        assert ctx.trace_id == "4bf92f3577b34da6a3ce929d0e0e4736"
        assert ctx.span_id == "00f067aa0ba902b7"
        assert ctx.flags == 1
        assert ctx.sampled

    def test_unsampled_flags(self):
        ctx = parse_traceparent(VALID[:-2] + "00")
        assert ctx is not None and not ctx.sampled

    def test_round_trip(self):
        ctx = new_trace_context()
        assert parse_traceparent(ctx.to_traceparent()) == ctx

    def test_surrounding_whitespace_tolerated(self):
        assert parse_traceparent(f"  {VALID}  ") is not None

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "garbage",
            "00-abc",  # too few fields
            VALID.replace("00-", "f-", 1),  # version too short
            VALID.replace("00-", "0x0-", 1),  # version not hex
            VALID.replace("00-", "ff-", 1),  # version ff forbidden
            VALID.replace("00-", "0A-", 1),  # uppercase version
            VALID + "-extra",  # version 00 must have exactly 4 fields
            VALID[:-1],  # flags too short
            VALID[:-2] + "zz",  # flags not hex
        ],
    )
    def test_malformed_version_and_flags(self, header):
        assert parse_traceparent(header) is None

    @pytest.mark.parametrize(
        "header",
        [
            # short trace id
            "00-4bf92f3577b34da6a3ce929d0e0e473-00f067aa0ba902b7-01",
            # short span id
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b-01",
            # uppercase hex in trace id (spec: lowercase only)
            "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",
            # non-hex trace id
            "00-" + "g" * 32 + "-00f067aa0ba902b7-01",
        ],
    )
    def test_short_or_bad_ids(self, header):
        assert parse_traceparent(header) is None

    def test_all_zero_trace_id_rejected(self):
        header = f"00-{'0' * 32}-00f067aa0ba902b7-01"
        assert parse_traceparent(header) is None

    def test_all_zero_span_id_rejected(self):
        header = f"00-4bf92f3577b34da6a3ce929d0e0e4736-{'0' * 16}-01"
        assert parse_traceparent(header) is None

    def test_future_version_accepted_with_extra_fields(self):
        header = "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"
        ctx = parse_traceparent(header)
        assert ctx is not None
        assert ctx.trace_id == "4bf92f3577b34da6a3ce929d0e0e4736"


class TestGeneration:
    def test_id_shapes(self):
        assert len(generate_trace_id()) == TRACE_ID_HEX_LENGTH
        assert len(generate_span_id()) == SPAN_ID_HEX_LENGTH
        assert generate_trace_id() != generate_trace_id()

    def test_child_keeps_trace_new_span(self):
        ctx = new_trace_context()
        child = ctx.child()
        assert child.trace_id == ctx.trace_id
        assert child.span_id != ctx.span_id
        assert child.flags == ctx.flags

    def test_to_traceparent_format(self):
        ctx = TraceContext("ab" * 16, "cd" * 8, flags=1)
        assert ctx.to_traceparent() == f"00-{'ab' * 16}-{'cd' * 8}-01"


class TestContextvarPropagation:
    def test_default_is_none(self):
        assert current_trace_context() is None

    def test_set_and_reset(self):
        ctx = new_trace_context()
        token = set_trace_context(ctx)
        try:
            assert current_trace_context() is ctx
        finally:
            reset_trace_context(token)
        assert current_trace_context() is None

    def test_use_trace_context_restores(self):
        outer = new_trace_context()
        with use_trace_context(outer):
            with use_trace_context() as inner:
                assert current_trace_context() is inner
                assert inner.trace_id != outer.trace_id
            assert current_trace_context() is outer
        assert current_trace_context() is None

    def test_ensure_creates_once(self):
        with use_trace_context():
            first = ensure_trace_context()
            assert ensure_trace_context() is first

    def test_new_thread_starts_empty(self):
        seen = []
        with use_trace_context():
            thread = threading.Thread(
                target=lambda: seen.append(current_trace_context())
            )
            thread.start()
            thread.join()
        assert seen == [None]


class TestSpanTraceIdentity:
    def test_root_span_adopts_ambient_context(self):
        tracer = Tracer()
        ctx = new_trace_context()
        with use_trace_context(ctx):
            with tracer.span("work") as span:
                pass
        assert span.trace_id == ctx.trace_id
        assert span.parent_span_id == ctx.span_id
        assert len(span.span_id) == SPAN_ID_HEX_LENGTH

    def test_root_span_mints_trace_without_context(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            pass
        assert len(span.trace_id) == TRACE_ID_HEX_LENGTH
        assert span.parent_span_id == ""

    def test_child_inherits_parent_identity(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                pass
        assert child.trace_id == parent.trace_id
        assert child.parent_span_id == parent.span_id
        assert child.span_id != parent.span_id

    def test_span_to_dict_carries_ids(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        root = tracer.to_dicts()[0]
        assert root["trace_id"]
        assert root["span_id"]
        assert "parent_span_id" not in root
        child = root["children"][0]
        assert child["trace_id"] == root["trace_id"]
        assert child["parent_span_id"] == root["span_id"]


class TestTracerThreadSafety:
    def test_two_threads_trace_concurrently_without_interleaving(self):
        """Regression: the active-span stack must be thread-local.

        Two threads each open parent→child spans, synchronizing at a
        barrier while both parents are open; with a shared stack one
        thread's child would nest under the *other* thread's parent.
        """
        tracer = Tracer()
        barrier = threading.Barrier(2, timeout=5.0)
        errors = []

        def trace(label: str) -> None:
            try:
                with tracer.span(f"parent.{label}") as parent:
                    barrier.wait()  # both parents open on both threads
                    with tracer.span(f"child.{label}") as child:
                        barrier.wait()  # both children open concurrently
                    assert child in parent.children
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=trace, args=(label,))
            for label in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        roots = tracer.spans()
        assert sorted(s.name for s in roots) == ["parent.a", "parent.b"]
        for root in roots:
            label = root.name.split(".")[1]
            assert [c.name for c in root.children] == [f"child.{label}"]
            assert root.children[0].trace_id == root.trace_id
            assert root.children[0].parent_span_id == root.span_id
