#!/usr/bin/env python3
"""Auditing a Borges mapping: evidence, confidence, and correctness.

A production AS-to-Org dataset needs three audit answers that θ alone
cannot give:

1. *Why* are two ASNs mapped together?  — the evidence chain;
2. *How strongly* is each merge supported? — the confidence grades;
3. *How correct* is the mapping overall? — partition scores against the
   (synthetic) ground truth, the check §5.4 says the real world lacks.

Run:  python examples/audit_mapping.py
"""

from collections import Counter

from repro import BorgesPipeline, build_as2org_mapping, generate_universe
from repro.analysis.ground_truth import score_mapping_against_truth
from repro.config import UniverseConfig
from repro.core.evidence import MappingExplainer, collect_evidence
from repro.universe.canonical import (
    AS_CENTURYLINK,
    AS_CLEARWIRE,
    AS_LUMEN,
    AS_TMOBILE_US,
)


def main() -> None:
    universe = generate_universe(UniverseConfig(n_organizations=1500))
    pipeline = BorgesPipeline(universe.whois, universe.pdb, universe.web)
    result = pipeline.run()
    mapping = result.mapping

    print("=== 1. why: evidence chains ===")
    explainer = MappingExplainer(
        collect_evidence(result, universe.whois, universe.pdb)
    )
    for a, b in ((AS_LUMEN, AS_CENTURYLINK), (AS_CLEARWIRE, AS_TMOBILE_US)):
        chain = explainer.why_siblings(a, b) or []
        print(f"AS{a} ~ AS{b} ({explainer.confidence(a, b)}):")
        for item in chain:
            print(f"   {item.describe()}")

    print("\n=== 2. how strongly: confidence census ===")
    grades = Counter()
    for cluster in mapping.multi_asn_clusters()[:400]:
        members = sorted(cluster)
        grades[explainer.confidence(members[0], members[-1])] += 1
    for grade, count in grades.most_common():
        print(f"   {grade:<14} {count}")

    print("\n=== 3. how correct: scores vs ground truth ===")
    for name, candidate in (
        ("AS2Org", build_as2org_mapping(universe.whois)),
        ("Borges", mapping),
    ):
        scores = score_mapping_against_truth(candidate, universe.ground_truth)
        print(
            f"   {name:<8} pair-precision={scores.pair_precision:.4f} "
            f"pair-recall={scores.pair_recall:.4f} "
            f"ARI={scores.adjusted_rand:.4f} "
            f"V-measure={scores.v_measure:.4f}"
        )
    print(
        "\nthe paper's claim in one line: Borges's extra recall comes at "
        "essentially no precision cost."
    )


if __name__ == "__main__":
    main()
