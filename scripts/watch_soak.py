#!/usr/bin/env python3
"""CI soak for the continuous-operation (``borges watch``) subsystem.

Runs N accelerated refresh cycles against a live HTTP query server with
background loadgen traffic, while the chaos schedule injects every
failure mode the daemon claims to survive:

* **pipeline crashes** — the runner raises on a fixed schedule; the
  supervisor must journal the failure and keep serving;
* **publish-crash kills** — the ``publish-crash`` fault profile "kills
  the process" between the archive write and the store swap
  (:class:`SimulatedProcessKill`); the harness models the restart by
  building a fresh daemon over the same journal/archive/store, whose
  ``recover()`` must finish the swap from the archive without
  re-running the pipeline;
* **seeded regressions** — on a fixed schedule the runner returns a
  collapsed mapping (one giant org); the publish gate must block every
  one and leave the active generation untouched;
* **one corrupt archive entry** — mid-soak, an archived generation is
  bit-flipped on disk; a time-travel query for it must answer 404 (and
  quarantine the file), never a 5xx, and never touch the active path.

A second scenario exercises *sharded* refreshes: a refresh that loses a
shard to chaos produces a salvaged (coverage-reduced) mapping that the
publish gate must block — serving never flips to a degraded generation
without the gate recording why — and a kill mid-sharded-refresh leaves
the run checkpoint holding the completed shards, so the next cycle
re-runs strictly fewer shards than the total and publishes a mapping
built from journaled + fresh shards.

Exit assertions: zero 5xx across all loadgen traffic, the journal
replays cleanly afterwards (no dropped tail, chain intact), no archive
entry was ever overwritten (first-seen bytes stay byte-identical),
every seeded regression was gate-blocked, and ``/v1/diff`` between the
first and last published generations matches a locally computed diff.

Run:  PYTHONPATH=src python scripts/watch_soak.py [--cycles N]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path
from tempfile import TemporaryDirectory

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.mapping import OrgMapping  # noqa: E402
from repro.obs import MetricsRegistry  # noqa: E402
from repro.resilience import PROFILES, FaultInjector  # noqa: E402
from repro.serve import QueryServer, QueryService  # noqa: E402
from repro.serve.index import MappingIndex  # noqa: E402
from repro.serve.store import SnapshotStore  # noqa: E402
from repro.watch import (  # noqa: E402
    GateThresholds,
    RunJournal,
    SimulatedProcessKill,
    SnapshotArchive,
    WatchConfig,
    WatchDaemon,
    WatchRunResult,
)
from repro.watch.archive import QUARANTINE_SUFFIX  # noqa: E402
from repro.watch.diff import diff_indexes  # noqa: E402

#: Universe: ASNs 1000..1400 in orgs of four.
UNIVERSE = list(range(1000, 1400))

#: Cycle schedule (1-based): every 8th-from-3 crashes, 8th-from-5 regresses.
CRASH_EVERY, CRASH_PHASE = 8, 3
REGRESS_EVERY, REGRESS_PHASE = 8, 5


def expect(condition: bool, label: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {label}")
    if not condition:
        sys.exit(f"watch soak failed: {label}")


def drifted_mapping(step: int) -> OrgMapping:
    """The universe partitioned into orgs of 4, with a small per-step
    drift: a handful of ASNs rotate to the neighbouring org, so churn
    stays well under the gate threshold while every step differs."""
    clusters = [UNIVERSE[i:i + 4] for i in range(0, len(UNIVERSE), 4)]
    moved = 0
    for i in range(len(clusters) - 1):
        if (i + step) % 20 == 0 and len(clusters[i]) > 1:
            clusters[i + 1] = clusters[i + 1] + [clusters[i][-1]]
            clusters[i] = clusters[i][:-1]
            moved += 1
    return OrgMapping(UNIVERSE, clusters, method=f"soak-step-{step}")


def collapsed_mapping() -> OrgMapping:
    """The seeded regression: everything in one giant organization."""
    return OrgMapping(UNIVERSE, [UNIVERSE], method="soak-regression")


def fetch(url: str):
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def run_soak(cycles: int, seed: int) -> int:
    registry = MetricsRegistry()
    injector = FaultInjector(
        PROFILES["publish-crash"], seed=seed, registry=registry
    )
    with TemporaryDirectory() as tmp:
        archive = SnapshotArchive(
            Path(tmp) / "archive", max_entries=cycles + 4, registry=registry
        )
        journal_path = Path(tmp) / "journal.jsonl"
        store = SnapshotStore(registry=registry)
        store.attach_archive(archive)
        service = QueryService(store=store, registry=registry)

        state = {"step": 0, "mode": "drift"}

        def runner() -> WatchRunResult:
            step = state["step"]
            if state["mode"] == "crash":
                raise RuntimeError(f"synthetic pipeline failure at step {step}")
            mapping = (
                collapsed_mapping() if state["mode"] == "regress"
                else drifted_mapping(step)
            )
            return WatchRunResult(
                mapping=mapping,
                dataset_digest=f"soak-dataset-{step}",
                label=f"step {step} ({state['mode']})",
            )

        config = WatchConfig(
            interval=0.0,
            thresholds=GateThresholds(),
            max_restarts=cycles,  # the harness, not the budget, drives halts
            restart_window=3600.0,
        )

        def build_daemon() -> WatchDaemon:
            daemon = WatchDaemon(
                store,
                archive,
                RunJournal(journal_path),
                runner,
                config,
                registry=registry,
                injector=injector,
                sleep=lambda _s: None,
            )
            daemon.recover()
            service.attach_watch(daemon)
            return daemon

        daemon = build_daemon()

        # gen -> [publish step or None, sha256 of file when first seen]
        published: dict = {}
        # The second published generation is reserved for the corruption
        # scenario: loadgen never time-travels to it, so its index is
        # never decoded into the store's LRU cache — the corrupt bytes
        # MUST be noticed on the (first) disk read.
        reserved: dict = {"gen": 0}
        outcomes: list = []
        statuses: list = []
        stop = threading.Event()
        kills = 0
        corrupted_gen = 0

        def snapshot_archive_bytes() -> None:
            for gen in archive.generations():
                digest = hashlib.sha256(
                    (archive.root / f"gen-{gen:06d}.json").read_bytes()
                ).hexdigest()
                if gen not in published:
                    published[gen] = [None, digest]
                else:
                    expect(
                        published[gen][1] == digest,
                        f"archive generation {gen} never overwritten",
                    )

        with QueryServer(service) as server:
            base = server.url
            print(f"soak server on {base} ({cycles} cycles)")

            def loadgen() -> None:
                i = 0
                while not stop.is_set():
                    asn = UNIVERSE[i % len(UNIVERSE)]
                    paths = [f"/v1/asn/{asn}", "/healthz", "/v1/admin/watch"]
                    gens = sorted(
                        g for g, v in list(published.items())
                        if v[0] is not None and g != reserved["gen"]
                    )
                    if gens:
                        paths.append(f"/v1/asn/{asn}?gen={gens[i % len(gens)]}")
                    if len(gens) >= 2:
                        paths.append(f"/v1/diff?from={gens[0]}&to={gens[-1]}")
                    try:
                        code, _ = fetch(base + paths[i % len(paths)])
                    except OSError:
                        if stop.is_set():
                            break
                        code = 599  # connection failure counts as a 5xx
                    statuses.append(code)
                    i += 1

            threads = []
            for n in range(1, cycles + 1):
                state["step"] = n
                if n % CRASH_EVERY == CRASH_PHASE:
                    state["mode"] = "crash"
                elif n % REGRESS_EVERY == REGRESS_PHASE:
                    state["mode"] = "regress"
                else:
                    state["mode"] = "drift"
                active_before = store.current_or_none()
                try:
                    outcome = daemon.cycle()
                except SimulatedProcessKill:
                    # kill -9 between archive write and swap: restart.
                    kills += 1
                    daemon = build_daemon()
                    resumed = store.current()
                    newest = archive.generations()[-1]
                    expect(
                        resumed.archive_generation == newest,
                        f"restart {kills} resumed archived gen {newest} "
                        "without re-running the pipeline",
                    )
                    outcome = "published"  # recover() finished the cycle
                outcomes.append(outcome)
                if outcome == "published":
                    gen = store.current().archive_generation
                    entry_bytes = (
                        archive.root / f"gen-{gen:06d}.json"
                    ).read_bytes()
                    published.setdefault(
                        gen, [None, hashlib.sha256(entry_bytes).hexdigest()]
                    )
                    published[gen][0] = state["step"]
                    publishes = sorted(
                        g for g, v in published.items() if v[0] is not None
                    )
                    if len(publishes) == 2 and not reserved["gen"]:
                        reserved["gen"] = publishes[1]
                if state["mode"] == "regress":
                    expect(
                        outcome == "gate_blocked",
                        f"cycle {n}: seeded regression gate-blocked",
                    )
                    after = store.current_or_none()
                    expect(
                        active_before is not None
                        and after is not None
                        and after.generation == active_before.generation,
                        f"cycle {n}: active generation untouched by "
                        "blocked candidate",
                    )
                if state["mode"] == "crash":
                    expect(
                        outcome == "failed",
                        f"cycle {n}: pipeline crash contained by supervisor",
                    )
                snapshot_archive_bytes()
                if n == 1:
                    # Traffic starts only once generation 1 serves: an
                    # empty store answers 503 by design, which is not
                    # the 5xx this soak hunts.
                    expect(
                        outcome == "published", "cycle 1 published gen 1"
                    )
                    threads = [
                        threading.Thread(target=loadgen) for _ in range(3)
                    ]
                    for t in threads:
                        t.start()
                if n == cycles // 2 and reserved["gen"]:
                    # The corrupt-snapshot scenario: bit-flip the
                    # reserved entry, which no reader has decoded yet.
                    corrupted_gen = reserved["gen"]
                    path = archive.root / f"gen-{corrupted_gen:06d}.json"
                    raw = bytearray(path.read_bytes())
                    raw[len(raw) // 2] ^= 0xFF
                    path.write_bytes(bytes(raw))
                    published.pop(corrupted_gen, None)
                    code, body = fetch(
                        f"{base}/v1/asn/{UNIVERSE[0]}?gen={corrupted_gen}"
                    )
                    expect(
                        code == 404,
                        f"corrupt archive gen {corrupted_gen} answers 404 "
                        f"({body.get('error', '')[:40]}...)",
                    )
                    expect(
                        path.with_name(
                            path.name + QUARANTINE_SUFFIX
                        ).exists(),
                        "corrupt entry quarantined on disk",
                    )

            stop.set()
            for t in threads:
                t.join(timeout=10.0)

            print(f"outcomes: { {o: outcomes.count(o) for o in set(outcomes)} }")
            expect(kills >= 1, f"publish-crash fired ({kills} kills)")
            expect(
                sum(1 for o in outcomes if o == "published") >= 3,
                "at least three generations published",
            )
            non_5xx = [s for s in statuses if s < 500]
            expect(
                len(non_5xx) == len(statuses),
                f"zero 5xx across {len(statuses)} loadgen requests "
                f"(got {sorted(set(statuses))})",
            )

            # /v1/diff between first and last published generations must
            # match a diff computed locally from the mappings we fed in.
            gens = sorted(g for g in published if published[g][0] is not None)
            first, last = gens[0], gens[-1]
            code, body = fetch(f"{base}/v1/diff?from={first}&to={last}")
            expect(code == 200, f"/v1/diff?from={first}&to={last} answered")
            local = diff_indexes(
                MappingIndex.build(drifted_mapping(published[first][0])),
                MappingIndex.build(drifted_mapping(published[last][0])),
            )
            expect(
                body["asns_moved"] == local.asns_moved
                and body["orgs_merged"] == local.orgs_merged
                and body["orgs_split"] == local.orgs_split,
                f"diff matches local computation "
                f"(moved {body['asns_moved']}, merged {body['orgs_merged']}, "
                f"split {body['orgs_split']})",
            )
            code, body = fetch(f"{base}/healthz")
            expect(
                code == 200 and body["status"] == "ok",
                "healthz ok after the soak",
            )

        # The journal must replay cleanly — chain intact, no dropped
        # tail — exactly as a post-kill restart would read it.
        replayed = RunJournal(journal_path)
        stats = replayed.stats()
        expect(
            stats["dropped_tail"] == 0,
            f"journal replays cleanly ({stats['entries']} entries)",
        )
        expect(
            len(replayed.published_digests()) == len(
                set(replayed.published_digests())
            ),
            "no dataset digest published twice",
        )
    print(f"watch soak passed: {cycles} cycles, {kills} kills, "
          f"corrupted gen {corrupted_gen}")
    return 0


def run_sharded_kill_scenario() -> int:
    """Kill a sharded refresh mid-run; the next cycle must resume.

    Four cycles against one daemon (restarted once, the kill):

    1. a clean 4-shard refresh publishes;
    2. a refresh that loses a shard to ``shard-crash`` hands the daemon
       a salvaged, coverage-reduced mapping — the publish gate must
       block it and serving must stay on the previous generation;
    3. a sharded refresh is killed after its surviving shards were
       journaled to the run checkpoint (``SimulatedProcessKill``, the
       same restart model the publish-crash soak uses);
    4. after the restart, the clean re-run resumes from the checkpoint
       — strictly fewer shards re-run than the total — and publishes.
    """
    from repro.config import BorgesConfig, UniverseConfig
    from repro.core import run_sharded
    from repro.universe import generate_universe

    print("sharded-refresh kill scenario")
    registry = MetricsRegistry()
    n_shards = 4
    u = generate_universe(UniverseConfig(seed=3, n_organizations=100))

    with TemporaryDirectory() as tmp:
        archive = SnapshotArchive(Path(tmp) / "archive", registry=registry)
        journal_path = Path(tmp) / "journal.jsonl"
        checkpoint_path = Path(tmp) / "archive" / "shard-checkpoint.jsonl"
        store = SnapshotStore(registry=registry)
        store.attach_archive(archive)

        # One universe throughout: the gate decisions below then hinge
        # purely on what the shard faults did (coverage loss from the
        # quarantined shard), not on dataset drift.  The daemon's
        # unchanged-digest skip is steered with an explicit digest.
        state = {"digest": "shard-soak-1", "profile": "none", "kill": False}

        def runner() -> WatchRunResult:
            config = BorgesConfig()
            if state["profile"] != "none":
                config = config.with_fault_profile(state["profile"])
            result = run_sharded(
                u.whois, u.pdb, u.web, config, n_shards,
                registry=registry,
                shard_retries=0,
                checkpoint_path=checkpoint_path,
                resume=True,
            )
            if state["kill"]:
                # The kill-during-refresh model: the surviving shards
                # are already journaled (record_shard fsyncs as each
                # lands), the process dies before the daemon sees a
                # result — exactly the on-disk state of a real kill -9
                # between shard K and K+1.
                raise SimulatedProcessKill(
                    "killed mid-sharded-refresh after checkpointing"
                )
            return WatchRunResult(
                mapping=result.mapping,
                dataset_digest=state["digest"],
                label=f"{state['digest']} ({state['profile']})",
                shard_posture=result.shard_posture(),
            )

        config = WatchConfig(
            interval=0.0, thresholds=GateThresholds(),
            max_restarts=10, restart_window=3600.0,
        )

        def build_daemon() -> WatchDaemon:
            daemon = WatchDaemon(
                store, archive, RunJournal(journal_path), runner,
                config, registry=registry, sleep=lambda _s: None,
            )
            daemon.recover()
            return daemon

        daemon = build_daemon()

        # Cycle 1: clean sharded refresh publishes generation 1.
        expect(daemon.cycle() == "published", "cycle 1: clean sharded publish")
        active = store.current()
        posture = daemon.status()["last_shard_posture"]
        expect(
            posture is not None and posture["ok"] == n_shards,
            f"cycle 1: posture {n_shards}/{n_shards} ok in daemon status",
        )

        # Cycle 2: a shard dies, the salvaged mapping loses its ASNs —
        # the gate must refuse to serve the degraded generation.  The
        # checkpoint is cleared first: with it, the chaos run would
        # resume every shard from cycle 1 and never fault.
        checkpoint_path.unlink()
        state.update(digest="shard-soak-2", profile="shard-crash")
        outcome = daemon.cycle()
        expect(
            outcome == "gate_blocked",
            "cycle 2: salvaged (degraded) mapping blocked by publish gate",
        )
        decision = daemon.status()["last_gate_decision"]
        expect(
            decision is not None and not decision.get("allowed", True)
            and decision.get("reasons"),
            f"cycle 2: gate recorded why ({(decision or {}).get('reasons')})",
        )
        expect(
            store.current().generation == active.generation,
            "cycle 2: serving never flipped to the degraded generation",
        )
        expect(
            (daemon.status()["last_shard_posture"] or {}).get("failed"),
            "cycle 2: daemon status shows the quarantined shard",
        )
        # Cycle 3: kill -9 mid-refresh.  Chaos quarantines one shard;
        # the survivors are journaled before the "process dies".  The
        # blocked cycle already journaled the same surviving shards, so
        # start the kill from an empty checkpoint to make the resume
        # accounting unambiguous.
        checkpoint_path.unlink()
        state.update(digest="shard-soak-3", profile="shard-crash", kill=True)
        try:
            daemon.cycle()
            expect(False, "cycle 3: kill fired")
        except SimulatedProcessKill:
            pass
        expect(
            store.current().generation == active.generation,
            "cycle 3: serving survived the mid-refresh kill",
        )

        # Cycle 4: restart, fault cleared.  The refresh must resume
        # from the checkpoint (fewer shards re-run than the total) and
        # publish a clean mapping.
        daemon = build_daemon()
        state.update(digest="shard-soak-4", profile="none", kill=False)
        expect(daemon.cycle() == "published", "cycle 4: resumed refresh published")
        posture = daemon.status()["last_shard_posture"]
        resumed = posture.get("resumed") or []
        expect(
            0 < len(resumed) < n_shards,
            f"cycle 4: resumed {len(resumed)}/{n_shards} shards from the "
            f"checkpoint (re-ran {n_shards - len(resumed)})",
        )
        expect(
            posture["ok"] == n_shards and not posture["failed"],
            "cycle 4: all shards accounted for, none quarantined",
        )
        expect(
            store.current().generation > active.generation,
            "cycle 4: serving flipped to the recovered generation",
        )
    print("sharded-refresh kill scenario passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--cycles", type=int, default=24,
        help="refresh cycles to run (default 24)",
    )
    parser.add_argument("--seed", type=int, default=11, help="chaos seed")
    args = parser.parse_args()
    if args.cycles < 10:
        sys.exit("--cycles must be >= 10 (the chaos schedule needs room)")
    status = run_soak(args.cycles, args.seed)
    if status:
        return status
    return run_sharded_kill_scenario()


if __name__ == "__main__":
    sys.exit(main())
