"""The paper's prompts, verbatim (Appendix C Listing 2, Appendix E Listing 3).

Rendering fills the placeholders; the simulated backend recognizes these
templates by their fixed framing lines, so the prompts are the actual
interface between pipeline and model — exactly as in the released system.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import PromptError
from .client import ChatMessage, ImageContent, TextContent
from .parsing import EXTRACTION_FORMAT_INSTRUCTIONS

#: Listing 2 — few-shot information-extraction prompt for notes/aka.
EXTRACTION_PROMPT_TEMPLATE = """\
You are a network topology expert who wants to find Autonomous Systems(ASs) \
that belongs to the same organization by reading the peeringdb information.

Please inform the ASs that are peering with the original AS.
Don't inform the AS that the original AS is connected to, inform the one \
that are peering as the same organization.
If some AS number is mentioned in the 'as-in' and 'as-out' sections in the \
Notes field, it doesn't mean that they belong to the same organization.

The PeeringDB information for the ASN {asn} is:

Notes: {notes}

AKA: {aka}

{format_instructions}

Just inform an AS if it is number is explicitly written in the AKA or Notes \
fields provided.
Yo don't know the relation between a company name and its AS number.
Also explain why you choose the ASs informed.
"""

#: Listing 3 — the text part of the favicon classifier message.
CLASSIFIER_TEXT_TEMPLATE = (
    "Accessing these URLs {final_urls} returned the attached favicon. "
    "If it is a telecommunications company, what is the company's name? "
    "If it is a subsidiary, provide the parent company's name. "
    "If it is not a telecommunications company, is it a hosting technology? "
    "Reply only with the name of the company or technology. "
    "If it is none of the above, reply 'I don't know'."
)


def render_extraction_prompt(asn: int, notes: str, aka: str) -> str:
    """Render Listing 2 for one PeeringDB record."""
    if asn <= 0:
        raise PromptError(f"bad ASN for extraction prompt: {asn}")
    return EXTRACTION_PROMPT_TEMPLATE.format(
        asn=asn,
        notes=notes or "(empty)",
        aka=aka or "(empty)",
        format_instructions=EXTRACTION_FORMAT_INSTRUCTIONS,
    )


def render_classifier_messages(
    final_urls: Sequence[str], favicon: bytes
) -> List[ChatMessage]:
    """Render Listing 3: one human message with text + favicon image."""
    if not final_urls:
        raise PromptError("classifier prompt needs at least one URL")
    if not favicon:
        raise PromptError("classifier prompt needs favicon bytes")
    text = CLASSIFIER_TEXT_TEMPLATE.format(final_urls=list(final_urls))
    return [
        ChatMessage(
            role="user",
            content=[
                TextContent(text=text),
                ImageContent(data=favicon, media_type="image/jpeg"),
            ],
        )
    ]


#: Fixed framing lines used by the simulated backend for task routing.
EXTRACTION_PROMPT_MARKER = (
    "You are a network topology expert who wants to find Autonomous Systems"
)
CLASSIFIER_PROMPT_MARKER = "returned the attached favicon"
