"""Partition-quality metrics against ground truth.

§5.4 is explicit that θ "cannot assess AS-to-Organization performance on
its own; ... the Organization Factor does not distinguish between correct
and incorrect mappings."  The real system has no ground truth; the
synthetic universe does, so this module supplies the missing yardsticks —
all standard external clustering measures over the ASN partition:

* **pairwise precision / recall / F1** — over all sibling pairs;
* **Adjusted Rand Index (ARI)** — chance-corrected pair agreement;
* **homogeneity / completeness / V-measure** — entropy-based.

Used by the beyond-θ analysis and the `bench_ground_truth.py` bench.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..types import ASN, Cluster


def _pair_count(n: int) -> int:
    """Number of unordered pairs among *n* items."""
    return n * (n - 1) // 2


def _contingency(
    predicted: Sequence[Cluster], truth: Sequence[Cluster]
) -> Tuple[Dict[Tuple[int, int], int], List[int], List[int], int]:
    """Contingency table over the common ASN universe.

    Items present in only one partition are ignored (metrics compare the
    shared universe; the mappings in this package always share it).
    """
    truth_of: Dict[ASN, int] = {}
    for j, cluster in enumerate(truth):
        for asn in cluster:
            truth_of[asn] = j
    table: Dict[Tuple[int, int], int] = {}
    predicted_sizes: List[int] = []
    truth_sizes = [0] * len(truth)
    total = 0
    for i, cluster in enumerate(predicted):
        members = [a for a in cluster if a in truth_of]
        predicted_sizes.append(len(members))
        for asn in members:
            j = truth_of[asn]
            table[(i, j)] = table.get((i, j), 0) + 1
            truth_sizes[j] += 1
            total += 1
    return table, predicted_sizes, truth_sizes, total


@dataclass(frozen=True)
class PartitionScores:
    """All partition-quality scores for one mapping vs ground truth."""

    pair_precision: float
    pair_recall: float
    pair_f1: float
    adjusted_rand: float
    homogeneity: float
    completeness: float
    v_measure: float

    def as_row(self) -> Dict[str, float]:
        return {
            "pair_precision": round(self.pair_precision, 4),
            "pair_recall": round(self.pair_recall, 4),
            "pair_f1": round(self.pair_f1, 4),
            "ari": round(self.adjusted_rand, 4),
            "homogeneity": round(self.homogeneity, 4),
            "completeness": round(self.completeness, 4),
            "v_measure": round(self.v_measure, 4),
        }


def score_partition(
    predicted: Sequence[Cluster], truth: Sequence[Cluster]
) -> PartitionScores:
    """Compute every score for *predicted* against *truth*."""
    table, predicted_sizes, truth_sizes, total = _contingency(predicted, truth)
    if total == 0:
        return PartitionScores(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    together_both = sum(_pair_count(v) for v in table.values())
    together_predicted = sum(_pair_count(v) for v in predicted_sizes)
    together_truth = sum(_pair_count(v) for v in truth_sizes)

    precision = (
        together_both / together_predicted if together_predicted else 1.0
    )
    recall = together_both / together_truth if together_truth else 1.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if (precision + recall)
        else 0.0
    )

    ari = _adjusted_rand(
        together_both, together_predicted, together_truth, _pair_count(total)
    )
    homogeneity, completeness, v_measure = _entropy_scores(
        table, predicted_sizes, truth_sizes, total
    )
    return PartitionScores(
        pair_precision=precision,
        pair_recall=recall,
        pair_f1=f1,
        adjusted_rand=ari,
        homogeneity=homogeneity,
        completeness=completeness,
        v_measure=v_measure,
    )


def _adjusted_rand(
    together_both: int,
    together_predicted: int,
    together_truth: int,
    all_pairs: int,
) -> float:
    """Hubert & Arabie's adjusted Rand index."""
    if all_pairs == 0:
        return 1.0
    expected = together_predicted * together_truth / all_pairs
    maximum = (together_predicted + together_truth) / 2.0
    denominator = maximum - expected
    if denominator == 0:
        # Both partitions are all-singletons (or identical trivial cases).
        return 1.0 if together_both == expected else 0.0
    return (together_both - expected) / denominator


def _entropy_scores(
    table: Dict[Tuple[int, int], int],
    predicted_sizes: Sequence[int],
    truth_sizes: Sequence[int],
    total: int,
) -> Tuple[float, float, float]:
    """Homogeneity, completeness, V-measure (Rosenberg & Hirschberg)."""

    def entropy(sizes: Iterable[int]) -> float:
        value = 0.0
        for size in sizes:
            if size > 0:
                p = size / total
                value -= p * math.log(p)
        return value

    h_truth = entropy(truth_sizes)
    h_predicted = entropy(predicted_sizes)

    # Conditional entropies from the contingency table.
    h_truth_given_predicted = 0.0
    h_predicted_given_truth = 0.0
    for (i, j), count in table.items():
        p = count / total
        h_truth_given_predicted -= p * (
            math.log(count / predicted_sizes[i]) if predicted_sizes[i] else 0.0
        )
        h_predicted_given_truth -= p * (
            math.log(count / truth_sizes[j]) if truth_sizes[j] else 0.0
        )

    homogeneity = (
        1.0 - h_truth_given_predicted / h_truth if h_truth > 0 else 1.0
    )
    completeness = (
        1.0 - h_predicted_given_truth / h_predicted if h_predicted > 0 else 1.0
    )
    if homogeneity + completeness == 0:
        v_measure = 0.0
    else:
        v_measure = (
            2 * homogeneity * completeness / (homogeneity + completeness)
        )
    return homogeneity, completeness, v_measure
