"""Crash-safe run journal: the daemon's append-only memory.

The watch loop must survive ``kill -9`` at any instruction.  Everything
it needs to resume — which dataset digests were already published, which
ones crashed the process and how often — lives in one append-only JSONL
file.  Each entry is digest-chained to its predecessor::

    {"seq": 3, "ts": ..., "kind": "publish", "prev": "<digest of seq 2>",
     "fields": {...}, "digest": "<digest of this entry sans itself>"}

The chain makes the file tamper-evident: replay recomputes every link
and a mid-file mismatch raises
:class:`~repro.errors.JournalIntegrityError`.  The *final* line is the
one place corruption is expected — a crash mid-append leaves a partial
line — so replay drops a trailing line that does not parse or whose
digest does not close the chain, and the next append rewrites from the
last good entry.

Entry kinds (the ``fields`` payload varies by kind):

=============  ==============================================================
``start``      a refresh cycle began working on ``dataset_digest``
``publish``    the candidate was archived as ``generation`` (pre-swap!)
``swap``       the archived generation became the active serving snapshot
``fail``       the cycle failed with a recorded error (clean failure)
``skip``       the cycle was skipped (unchanged digest, quarantined, …)
``gate``       the publish gate blocked the candidate
``quarantine`` a dataset digest was quarantined after repeated crashes
=============  ==============================================================

A ``start`` with no terminal entry (``publish``/``swap``/``fail``/
``skip``/``gate``) is an *orphan*: the process died mid-cycle.  Two
orphan starts for the same dataset digest quarantine it — a reproducible
process-killer must not be retried forever.

``publish`` is deliberately written *after* the archive write and
*before* the swap: a crash between the two leaves a journal that knows
the generation exists, so the restarted daemon re-installs it from the
archive instead of re-running the pipeline or double-publishing.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Set, Union

from ..digest import stable_digest
from ..errors import JournalIntegrityError
from ..logutil import get_logger

_LOG = get_logger("watch.journal")

#: ``prev`` of the first entry — a fixed sentinel, not an empty string,
#: so an attacker cannot splice a forged "first" entry mid-file.
GENESIS = "genesis"

#: Entry kinds that terminate a ``start`` (see module docstring).
TERMINAL_KINDS = frozenset({"publish", "swap", "fail", "skip", "gate"})

#: Orphan ``start`` entries for one digest before it is quarantined.
QUARANTINE_CRASHES = 2


def _entry_digest(seq: int, kind: str, prev: str, fields: Dict[str, object]) -> str:
    return stable_digest({"seq": seq, "kind": kind, "prev": prev, "fields": fields})


class RunJournal:
    """Append-only, digest-chained JSONL journal for the watch daemon.

    Opening the journal replays it: the digest chain is verified, a
    corrupt trailing line (the crash artifact) is dropped, and the
    derived state — published digests, orphan-crash counts, quarantine
    set — is rebuilt so the daemon resumes exactly where the dead
    process stopped.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self._path = Path(path)
        self._lock = threading.Lock()
        self._entries: List[Dict[str, object]] = []
        self.dropped_tail = 0
        self._replay()

    @property
    def path(self) -> Path:
        return self._path

    # -- replay ------------------------------------------------------------

    def _replay(self) -> None:
        if not self._path.exists():
            self._path.parent.mkdir(parents=True, exist_ok=True)
            return
        raw_lines = self._path.read_text(encoding="utf-8").splitlines()
        entries: List[Dict[str, object]] = []
        prev = GENESIS
        for position, line in enumerate(raw_lines):
            last = position == len(raw_lines) - 1
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError as exc:
                if last:
                    # The expected kill -9 artifact: a partial final line.
                    self.dropped_tail += 1
                    _LOG.warning(
                        "journal %s: dropped unparseable final line (%s)",
                        self._path, exc,
                    )
                    break
                raise JournalIntegrityError(
                    str(self._path), position, f"unparseable mid-file line: {exc}"
                ) from exc
            ok = (
                isinstance(entry, dict)
                and entry.get("prev") == prev
                and entry.get("digest")
                == _entry_digest(
                    int(entry.get("seq", -1)),
                    str(entry.get("kind", "")),
                    str(entry.get("prev", "")),
                    dict(entry.get("fields", {})),
                )
                and int(entry.get("seq", -1)) == len(entries)
            )
            if not ok:
                if last:
                    self.dropped_tail += 1
                    _LOG.warning(
                        "journal %s: dropped final line with broken chain",
                        self._path,
                    )
                    break
                raise JournalIntegrityError(
                    str(self._path),
                    position,
                    "digest chain broken (edited or corrupted journal)",
                )
            entries.append(entry)
            prev = str(entry["digest"])
        self._entries = entries
        if self.dropped_tail:
            # Self-heal: rewrite the file from the verified entries so
            # the next append extends a clean chain instead of
            # concatenating onto the partial line the dead process left.
            with open(self._path, "w", encoding="utf-8") as fh:
                for entry in entries:
                    fh.write(json.dumps(entry, sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())

    # -- writing -----------------------------------------------------------

    def append(self, kind: str, **fields: object) -> Dict[str, object]:
        """Durably append one entry; returns the written entry."""
        with self._lock:
            seq = len(self._entries)
            prev = (
                str(self._entries[-1]["digest"]) if self._entries else GENESIS
            )
            entry: Dict[str, object] = {
                "seq": seq,
                "ts": round(time.time(), 6),
                "kind": kind,
                "prev": prev,
                "fields": dict(fields),
                "digest": _entry_digest(seq, kind, prev, dict(fields)),
            }
            line = json.dumps(entry, sort_keys=True) + "\n"
            # Open-append-fsync per entry: the journal writes once per
            # refresh cycle (seconds-to-hours apart), so durability wins
            # over keeping a file handle hot.
            with open(self._path, "a", encoding="utf-8") as fh:
                fh.write(line)
                fh.flush()
                os.fsync(fh.fileno())
            self._entries.append(entry)
            return entry

    # -- derived state -----------------------------------------------------

    def entries(self, kind: Optional[str] = None) -> List[Dict[str, object]]:
        with self._lock:
            return [
                dict(e)
                for e in self._entries
                if kind is None or e.get("kind") == kind
            ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def published_digests(self) -> Set[str]:
        """Dataset digests with a ``publish`` entry (safe to skip)."""
        return {
            str(e["fields"].get("dataset_digest", ""))
            for e in self.entries("publish")
        } - {""}

    def last_published(self) -> Optional[Dict[str, object]]:
        """The most recent ``publish`` entry's fields, if any."""
        published = self.entries("publish")
        return dict(published[-1]["fields"]) if published else None

    def last_swapped_generation(self) -> int:
        """Archive generation of the most recent ``swap`` entry (0 if none)."""
        swaps = self.entries("swap")
        if not swaps:
            return 0
        return int(swaps[-1]["fields"].get("archive_generation", 0))

    def orphan_crash_counts(self) -> Dict[str, int]:
        """Per-digest count of ``start`` entries the process never closed.

        The *currently open* start (the live cycle of a running daemon)
        is indistinguishable from a crash until the next entry lands, so
        callers must compute this at startup, before appending.
        """
        counts: Dict[str, int] = {}
        open_digest: Optional[str] = None
        for entry in self.entries():
            kind = entry.get("kind")
            fields = dict(entry.get("fields", {}))
            if kind == "start":
                if open_digest is not None:
                    counts[open_digest] = counts.get(open_digest, 0) + 1
                open_digest = str(fields.get("dataset_digest", ""))
            elif kind in TERMINAL_KINDS:
                open_digest = None
        if open_digest is not None:
            counts[open_digest] = counts.get(open_digest, 0) + 1
        return counts

    def quarantined_digests(self) -> Set[str]:
        """Digests barred from further runs (crashed the process twice)."""
        explicit = {
            str(e["fields"].get("dataset_digest", ""))
            for e in self.entries("quarantine")
        } - {""}
        crashed = {
            digest
            for digest, crashes in self.orphan_crash_counts().items()
            if crashes >= QUARANTINE_CRASHES and digest
        }
        return explicit | crashed

    def stats(self) -> Dict[str, object]:
        by_kind: Dict[str, int] = {}
        for entry in self.entries():
            kind = str(entry.get("kind"))
            by_kind[kind] = by_kind.get(kind, 0) + 1
        return {
            "path": str(self._path),
            "entries": len(self),
            "by_kind": by_kind,
            "dropped_tail": self.dropped_tail,
            "published_digests": len(self.published_digests()),
            "quarantined_digests": sorted(self.quarantined_digests()),
        }
