"""PeeringDB substrate: data model, snapshot container, and JSON I/O.

Models the subset of the PeeringDB schema Borges consumes — ``org`` and
``net`` objects linked by ``org_id`` — including the free-text ``notes``
and ``aka`` fields and the ``website`` field that drive the paper's three
inference modules.
"""

from .models import Network, Organization
from .snapshot import PDBSnapshot, load_snapshot, save_snapshot

__all__ = [
    "Network",
    "Organization",
    "PDBSnapshot",
    "load_snapshot",
    "save_snapshot",
]
