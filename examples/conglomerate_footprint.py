#!/usr/bin/env python3
"""Measuring the real footprint of multinational conglomerates (§6).

Joins the Borges mapping with APNIC-style user populations to reproduce
the paper's impact analyses at example scale:

* Table 8 — the organizations whose recognized user base grows the most
  once their subsidiaries are consolidated;
* Table 9 — the organizations whose country-level footprint expands
  (Digicel's 4 → 25 countries is the paper's flagship case).

Run:  python examples/conglomerate_footprint.py
"""

from repro import BorgesPipeline, build_as2org_mapping, generate_universe
from repro.analysis import (
    footprint_growth,
    footprint_summary,
    population_change_summary,
    top_population_growth,
)
from repro.config import UniverseConfig


def main() -> None:
    universe = generate_universe(UniverseConfig(n_organizations=2000))
    borges = BorgesPipeline(
        universe.whois, universe.pdb, universe.web
    ).run().mapping
    as2org = build_as2org_mapping(universe.whois)
    apnic = universe.apnic

    summary = population_change_summary(borges, as2org, apnic)
    print("=== population impact (Table 7) ===")
    print(f"organizations changed:   {summary.changed_count:,}")
    print(f"organizations unchanged: {summary.unchanged_count:,}")
    print(f"mean users (changed, AS2Org view): {summary.mean_users_changed_as2org:,.0f}")
    print(f"mean users (changed, Borges view): {summary.mean_users_changed_borges:,.0f}")
    print(
        f"total marginal growth: {summary.total_marginal_growth:,} users "
        f"= {summary.marginal_growth_pct_of_internet:.1f}% of the "
        f"{summary.total_users:,}-user Internet (paper: ≈5%)"
    )

    print("\n=== top marginal population growths (Table 8) ===")
    for row in top_population_growth(borges, as2org, apnic, top_n=10):
        print(
            f"  {str(row['company']):<28} {row['as2org_users']:>12,} -> "
            f"{row['borges_users']:>12,}  (+{row['difference']:,})"
        )

    print("\n=== top country-footprint growths (Table 9) ===")
    for row in footprint_growth(borges, as2org, apnic, top_n=10):
        print(
            f"  {str(row['company']):<28} {row['as2org_countries']:>3} -> "
            f"{row['borges_countries']:>3} countries "
            f"(+{row['difference']})"
        )
    overall = footprint_summary(borges, as2org, apnic)
    print(
        f"\n{overall.expanded_count} organizations expanded; mean marginal "
        f"increase {overall.mean_marginal_countries:.2f} countries "
        "(paper: 101 orgs, +2.37)"
    )


if __name__ == "__main__":
    main()
