"""Tests for the dependency-free SVG figure renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.experiments.report import Report
from repro.experiments.svg import (
    bar_chart_svg,
    line_chart_svg,
    report_to_svg,
    save_report_svg,
)


def parse_svg(text: str) -> ET.Element:
    """Well-formedness check: SVG must parse as XML."""
    return ET.fromstring(text)


class TestLineChart:
    def test_valid_xml(self):
        svg = line_chart_svg({"s": ([1, 2, 3], [1, 4, 9])}, title="T")
        root = parse_svg(svg)
        assert root.tag.endswith("svg")

    def test_polyline_per_series(self):
        svg = line_chart_svg(
            {"a": ([0, 1], [0, 1]), "b": ([0, 1], [1, 0])}
        )
        assert svg.count("<polyline") == 2

    def test_title_escaped(self):
        svg = line_chart_svg({"s": ([0, 1], [0, 1])}, title="a < b & c")
        parse_svg(svg)
        assert "a &lt; b &amp; c" in svg

    def test_large_series_decimated(self):
        xs = list(range(10_000))
        svg = line_chart_svg({"big": (xs, xs)}, max_points=100)
        points = svg.split('points="')[1].split('"')[0]
        assert len(points.split()) <= 102

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            line_chart_svg({})

    def test_axis_labels(self):
        svg = line_chart_svg(
            {"s": ([0, 1], [0, 1])}, x_label="rank", y_label="growth"
        )
        assert "rank" in svg and "growth" in svg


class TestBarChart:
    ROWS = [
        {"name": "EdgeCast", "a": 4, "b": 13},
        {"name": "Google", "a": 20, "b": 23},
    ]

    def test_valid_xml(self):
        svg = bar_chart_svg(self.ROWS, "name", ("a", "b"), title="Fig 9")
        parse_svg(svg)

    def test_bar_count(self):
        svg = bar_chart_svg(self.ROWS, "name", ("a", "b"))
        # 2 groups x 2 keys = 4 value bars (+1 frame rect).
        assert svg.count("<rect") == 4 + 1 + 1  # + background

    def test_labels_present(self):
        svg = bar_chart_svg(self.ROWS, "name", ("a", "b"))
        assert "EdgeCast" in svg and "Google" in svg

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart_svg([], "name", ("a",))


class TestReportToSVG:
    def test_series_report_becomes_line_chart(self):
        report = Report(
            experiment_id="fig8", title="F",
            series={"cumulative_growth": ([1.0, 2.0], [0.0, 5.0])},
        )
        svg = report_to_svg(report)
        assert svg and "<polyline" in svg

    def test_fig9_report_becomes_bar_chart(self):
        report = Report(
            experiment_id="fig9", title="F9",
            rows=[{"hypergiant": "X", "as2org": 1, "as2org_plus": 1,
                   "borges": 2, "asn": 5, "gain_vs_as2org": 1}],
        )
        svg = report_to_svg(report)
        assert svg and "<rect" in svg

    def test_plain_table_report_has_no_svg(self):
        report = Report(experiment_id="table3", title="T", rows=[{"a": 1}])
        assert report_to_svg(report) is None

    def test_save_report_svg(self, tmp_path):
        report = Report(
            experiment_id="fig7", title="F7",
            series={"s": ([1.0, 2.0], [1.0, 2.0])},
        )
        path = save_report_svg(report, tmp_path / "figs")
        assert path is not None and path.exists()
        parse_svg(path.read_text())

    def test_save_skips_undrawable(self, tmp_path):
        report = Report(experiment_id="table3", title="T", rows=[{"a": 1}])
        assert save_report_svg(report, tmp_path) is None


class TestCLIIntegration:
    def test_experiment_svg_flag(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "figs"
        assert main(
            ["--seed", "7", "--orgs", "400", "experiment", "fig9",
             "--svg-dir", str(out)]
        ) == 0
        assert (out / "fig9.svg").exists()
        parse_svg((out / "fig9.svg").read_text())
