"""Stdlib HTTP front-end for the query service.

A :class:`ThreadingHTTPServer` exposing the read API as JSON:

==========================  ===================================================
``GET /v1/asn/{asn}``        one ASN's organization (404 unknown ASN);
                             ``?gen=N`` answers from archived generation N
``GET /v1/org/{id}``         one organization's members (404 unknown id)
``GET /v1/siblings``         ``?a=&b=`` verdict, or ``?asn=`` sibling list
``GET /v1/search``           ``?q=&limit=`` org-name search
``GET /v1/diff``             ``?from=&to=`` orgs merged/split, ASNs moved
                             between two archived generations
``POST /v1/batch``           ``{"asns": [...]}`` batched lookup
``POST /v1/admin/rollback``  restore the last-known-good generation
``GET /v1/admin/watch``      the continuous-refresh daemon's posture
``GET /v1/admin/slo``        burn rates + alert state per objective
``GET /v1/admin/exemplars``  slow-request exemplars with span trees
``GET /healthz``             200 ok/degraded, 503 before the first snapshot
``GET /metrics``             Prometheus text exposition
==========================  ===================================================

Every response carries an ``x-borges-trace-id`` header: the trace ID of
the client's ``traceparent`` when one was supplied (we continue their
trace), otherwise a freshly minted one.  The same ID appears in the
sampled ``http.access`` event log and — for requests over the exemplar
threshold — in ``/v1/admin/exemplars`` with the request's span tree.

Binding ``port=0`` picks an ephemeral port (the bound port is exposed as
``server.port``), which is how the tests and the CI smoke job run many
servers without colliding.  ``stop()`` is a graceful shutdown: the accept
loop exits, in-flight handlers finish, the socket closes.

Overload answers ride on the service's admission gate: a shed request
gets ``429`` with a ``Retry-After`` header, a request whose deadline
expired while queued gets ``503``.  Request bodies are bounded —
``Content-Length`` past :data:`MAX_CONTENT_LENGTH` or a batch past
:data:`MAX_BATCH_ASNS` answers ``413`` without reading the payload, and
malformed/missing framing headers answer ``400`` instead of stalling the
handler thread on a read that can never complete.
"""

from __future__ import annotations

import json
import math
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..errors import (
    DeadlineExceededError,
    NoSnapshotError,
    OverloadedError,
    RollbackUnavailableError,
    SnapshotIntegrityError,
    UnknownASNError,
    UnknownGenerationError,
    UnknownOrgError,
)
from ..logutil import get_logger
from ..obs import Tracer, render_prometheus
from ..obs.context import (
    TRACE_RESPONSE_HEADER,
    TRACEPARENT_HEADER,
    new_trace_context,
    parse_traceparent,
    reset_trace_context,
    set_trace_context,
)
from .service import QueryService

_LOG = get_logger("serve.httpd")

#: Largest request body accepted by ``POST /v1/batch`` (bytes).
MAX_CONTENT_LENGTH = 1 << 20

#: Most ASNs accepted in one batch lookup.
MAX_BATCH_ASNS = 1024


class _BadParam(ValueError):
    """A malformed query parameter, carrying the offending field name."""

    def __init__(self, name: str, raw: str) -> None:
        super().__init__(f"parameter {name!r} must be an integer, got {raw!r}")
        self.name = name
        self.raw = raw


def _endpoint_for(path: str) -> str:
    """Classify a request path into the access-log endpoint label."""
    if path.startswith("/v1/asn/"):
        return "asn"
    if path.startswith("/v1/org/"):
        return "org"
    if path == "/v1/siblings":
        return "siblings"
    if path == "/v1/search":
        return "search"
    if path == "/v1/diff":
        return "diff"
    if path == "/v1/batch":
        return "batch"
    if path == "/v1/admin/rollback":
        return "rollback"
    if path == "/v1/admin/watch":
        return "watch"
    if path == "/v1/admin/slo":
        return "slo"
    if path == "/v1/admin/exemplars":
        return "exemplars"
    if path == "/healthz":
        return "health"
    if path == "/metrics":
        return "metrics"
    return "unknown"


def _make_handler(service: QueryService):
    registry = service.registry

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "borges-serve"
        # The handler writes status line, headers and body as separate
        # sends; with Nagle on, the body send waits out the client's
        # delayed ACK (~40 ms) on every keep-alive request.
        disable_nagle_algorithm = True

        # Per-request state installed by _dispatch before routing.  A
        # handler instance serves one connection's requests sequentially,
        # so plain instance attributes are race-free.
        _trace_context = None
        _status = 0
        _admission = "admitted"

        # -- plumbing --------------------------------------------------

        def log_message(self, format: str, *args: object) -> None:
            _LOG.debug("%s %s", self.address_string(), format % args)

        def _send_json(
            self,
            code: int,
            payload: dict,
            extra_headers: Optional[Dict[str, str]] = None,
        ) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            if self._trace_context is not None:
                self.send_header(
                    TRACE_RESPONSE_HEADER, self._trace_context.trace_id
                )
            for name, value in (extra_headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
            self._status = code
            registry.counter(
                "serve_http_requests_total",
                "HTTP requests by status code",
                code=code,
            ).inc()

        def _send_error(self, code: int, message: str) -> None:
            self._send_json(code, {"error": message})

        def _send_overloaded(self, exc: OverloadedError) -> None:
            # Retry-After is integer seconds on the wire; the JSON body
            # keeps the precise hint for clients that can use it.
            self._send_json(
                429,
                {
                    "error": "overloaded, retry later",
                    "retry_after": round(exc.retry_after, 3),
                },
                extra_headers={
                    "Retry-After": str(max(1, math.ceil(exc.retry_after)))
                },
            )

        def _query(self) -> Tuple[str, dict]:
            parsed = urlparse(self.path)
            return parsed.path.rstrip("/") or "/", parse_qs(parsed.query)

        def _int_param(self, params: dict, name: str) -> Optional[int]:
            values = params.get(name)
            if not values:
                return None
            try:
                return int(values[0])
            except (ValueError, TypeError):
                raise _BadParam(name, values[0]) from None

        # -- routes ----------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
            self._dispatch("GET")

        def do_POST(self) -> None:  # noqa: N802
            self._dispatch("POST")

        def _dispatch(self, method: str) -> None:
            """Trace, route, answer, and account for one request.

            The trace context comes from the client's ``traceparent``
            (we continue their trace one hop down) or is freshly minted;
            it lives in the handler thread's contextvar for the request's
            duration so the event log and span tracer pick it up without
            plumbing.  Every response carries the trace ID back to the
            client; the finally block writes the sampled access-log
            event and offers slow requests to the exemplar store with
            their full span tree.
            """
            path, params = self._query()
            endpoint = _endpoint_for(path)
            incoming = parse_traceparent(self.headers.get(TRACEPARENT_HEADER))
            context = (
                incoming.child() if incoming is not None
                else new_trace_context()
            )
            token = set_trace_context(context)
            self._trace_context = context
            self._status = 0
            self._admission = "admitted"
            # A fresh per-request tracer: its span tree is either handed
            # to the exemplar store or dropped with the request, so the
            # process-global tracer's root list never grows with traffic.
            tracer = Tracer()
            started = time.perf_counter()
            try:
                with tracer.span(
                    f"http.{endpoint}", method=method, path=path
                ) as root:
                    self._route(method, path, params)
                    root.set_attribute("status", self._status)
            finally:
                elapsed = time.perf_counter() - started
                self._observe(method, path, endpoint, elapsed, tracer)
                self._trace_context = None
                reset_trace_context(token)

        def _route(self, method: str, path: str, params: dict) -> None:
            """Dispatch to the endpoint body; always answers the client."""
            try:
                if method == "GET":
                    if path.startswith("/v1/asn/"):
                        self._handle_asn(path[len("/v1/asn/"):], params)
                    elif path.startswith("/v1/org/"):
                        self._handle_org(path[len("/v1/org/"):])
                    elif path == "/v1/siblings":
                        self._handle_siblings(params)
                    elif path == "/v1/search":
                        self._handle_search(params)
                    elif path == "/v1/diff":
                        self._handle_diff(params)
                    elif path == "/v1/admin/watch":
                        self._handle_watch()
                    elif path == "/v1/admin/slo":
                        self._handle_slo()
                    elif path == "/v1/admin/exemplars":
                        self._handle_exemplars()
                    elif path == "/healthz":
                        self._handle_health()
                    elif path == "/metrics":
                        self._handle_metrics()
                    else:
                        self._send_error(404, f"no route {path}")
                else:
                    if path == "/v1/batch":
                        self._handle_batch()
                    elif path == "/v1/admin/rollback":
                        self._handle_rollback()
                    else:
                        self._send_error(404, f"no route {path}")
            except _BadParam as exc:
                # Malformed input is the client's 400, never our 500.
                self._send_error(400, str(exc))
            except OverloadedError as exc:
                self._admission = "shed"
                self._send_overloaded(exc)
            except DeadlineExceededError as exc:
                self._admission = "deadline"
                self._send_error(503, str(exc))
            except NoSnapshotError:
                self._send_error(503, "no mapping snapshot loaded")
            except Exception as exc:  # noqa: BLE001 — a handler crash
                # must answer the client, not silently drop the socket.
                _LOG.exception("handler error on %s", self.path)
                self._send_error(500, f"internal error: {exc}")

        def _observe(
            self,
            method: str,
            path: str,
            endpoint: str,
            elapsed: float,
            tracer: Tracer,
        ) -> None:
            """Access-log event + exemplar offer for a finished request."""
            snapshot = service.store.current_or_none()
            service.event_log.emit(
                "http.access",
                sample=service.access_log_sample,
                method=method,
                path=path,
                endpoint=endpoint,
                status=self._status,
                admission=self._admission,
                generation=(
                    snapshot.generation if snapshot is not None else 0
                ),
                latency_ms=round(elapsed * 1e3, 3),
            )
            exemplars = service.exemplars
            if exemplars is not None and elapsed >= exemplars.threshold:
                exemplars.offer(
                    endpoint=endpoint,
                    status=self._status,
                    latency=elapsed,
                    trace_id=self._trace_context.trace_id,
                    spans=tracer.to_dicts(),
                )

        # -- endpoint bodies -------------------------------------------

        def _read_body(self) -> Optional[bytes]:
            """The request body, or ``None`` after answering 400/413.

            ``Content-Length`` is validated *before* any read: a missing,
            non-integer or negative value previously reached
            ``rfile.read`` — where ``-1`` means read-to-EOF and stalls
            the handler thread on a keep-alive connection until the
            client goes away.  Oversized bodies are refused without
            reading; the connection is closed since the unread payload
            would desync the next keep-alive request.
            """
            raw = self.headers.get("Content-Length")
            if raw is None:
                self.close_connection = True
                self._send_error(400, "missing Content-Length header")
                return None
            try:
                length = int(raw)
            except ValueError:
                self.close_connection = True
                self._send_error(
                    400, f"Content-Length must be an integer, got {raw!r}"
                )
                return None
            if length < 0:
                self.close_connection = True
                self._send_error(400, f"negative Content-Length: {length}")
                return None
            if length > MAX_CONTENT_LENGTH:
                self.close_connection = True
                self._send_error(
                    413,
                    f"request body of {length} bytes exceeds the "
                    f"{MAX_CONTENT_LENGTH}-byte limit",
                )
                return None
            return self.rfile.read(length)

        def _handle_batch(self) -> None:
            body = self._read_body()
            if body is None:
                return
            try:
                document = json.loads(body or b"{}")
            except ValueError as exc:
                self._send_error(400, f"request body is not JSON: {exc}")
                return
            asns = document.get("asns") if isinstance(document, dict) else None
            if not isinstance(asns, list):
                self._send_error(400, "body must be {'asns': [...]}")
                return
            if len(asns) > MAX_BATCH_ASNS:
                self._send_error(
                    413,
                    f"batch of {len(asns)} ASNs exceeds the "
                    f"{MAX_BATCH_ASNS}-ASN limit",
                )
                return
            try:
                results = service.batch_lookup(int(a) for a in asns)
            except (ValueError, TypeError) as exc:
                self._send_error(400, f"bad batch request: {exc}")
                return
            self._send_json(200, {"results": results})

        def _handle_rollback(self) -> None:
            try:
                self._send_json(200, service.rollback())
            except RollbackUnavailableError as exc:
                self._send_error(409, str(exc))

        def _handle_asn(self, raw: str, params: dict) -> None:
            try:
                asn = int(raw)
            except ValueError:
                self._send_error(400, f"not an ASN: {raw!r}")
                return
            gen = self._int_param(params, "gen")
            try:
                self._send_json(200, service.lookup_asn(asn, gen=gen))
            except UnknownASNError:
                self._send_error(404, f"unknown ASN {asn}")
            except UnknownGenerationError as exc:
                self._send_error(404, str(exc))
            except SnapshotIntegrityError as exc:
                # A corrupt archive entry has just been quarantined; the
                # generation is gone, which is a 404, not an outage.
                self._send_error(404, f"generation unreadable: {exc}")

        def _handle_diff(self, params: dict) -> None:
            from_gen = self._int_param(params, "from")
            to_gen = self._int_param(params, "to")
            if from_gen is None or to_gen is None:
                self._send_error(400, "need ?from=&to= generation numbers")
                return
            try:
                self._send_json(
                    200, service.generation_diff(from_gen, to_gen)
                )
            except UnknownGenerationError as exc:
                self._send_error(404, str(exc))
            except SnapshotIntegrityError as exc:
                self._send_error(404, f"generation unreadable: {exc}")

        def _handle_watch(self) -> None:
            status = service.watch_status()
            if status is None:
                self._send_error(404, "no watch daemon attached")
                return
            self._send_json(200, status)

        def _handle_org(self, org_id: str) -> None:
            if not org_id:
                self._send_error(400, "missing organization id")
                return
            try:
                self._send_json(200, service.lookup_org(org_id))
            except UnknownOrgError:
                self._send_error(404, f"unknown organization {org_id!r}")

        def _handle_siblings(self, params: dict) -> None:
            a = self._int_param(params, "a")
            b = self._int_param(params, "b")
            asn = self._int_param(params, "asn")
            try:
                if asn is not None:
                    self._send_json(200, service.siblings(asn))
                elif a is not None and b is not None:
                    self._send_json(200, service.siblings(a, b))
                else:
                    self._send_error(400, "need ?a=&b= or ?asn=")
            except UnknownASNError as exc:
                self._send_error(404, str(exc))

        def _handle_search(self, params: dict) -> None:
            query = (params.get("q") or [""])[0]
            if not query.strip():
                self._send_error(400, "missing ?q=")
                return
            limit = self._int_param(params, "limit")
            self._send_json(
                200, service.search(query, limit=10 if limit is None else limit)
            )

        def _handle_health(self) -> None:
            ready, body = service.health()
            self._send_json(200 if ready else 503, body)

        def _handle_slo(self) -> None:
            if service.slo is None:
                self._send_error(404, "no SLO tracker configured")
                return
            self._send_json(200, service.slo.snapshot())

        def _handle_exemplars(self) -> None:
            if service.exemplars is None:
                self._send_error(404, "no exemplar store configured")
                return
            store = service.exemplars
            self._send_json(
                200,
                {"stats": store.stats(), "exemplars": store.exemplars()},
            )

        def _handle_metrics(self) -> None:
            # Self-metrics: the scrape counter increments *before* the
            # render so every exposition includes its own scrape; the
            # render-time observation lands in the next one.
            registry.counter(
                "serve_metrics_scrapes_total",
                "Prometheus exposition requests served",
            ).inc()
            render_started = time.perf_counter()
            body = render_prometheus(registry).encode("utf-8")
            registry.histogram(
                "serve_metrics_render_seconds",
                "Time spent rendering the Prometheus exposition",
            ).observe(time.perf_counter() - render_started)
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(body)))
            if self._trace_context is not None:
                self.send_header(
                    TRACE_RESPONSE_HEADER, self._trace_context.trace_id
                )
            self.end_headers()
            self.wfile.write(body)
            self._status = 200

    return Handler


class _ReusePortHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that binds with ``SO_REUSEPORT``.

    Multiple worker processes bind+listen on the *same* address and the
    kernel load-balances accepted connections across them — the fan-in
    mechanism of the multi-worker serve tier.  Set before ``bind`` (not
    via ``allow_reuse_port``, which only exists on newer Pythons).
    """

    def server_bind(self) -> None:
        if hasattr(socket, "SO_REUSEPORT"):
            self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()


class QueryServer:
    """Lifecycle wrapper: bind, serve in a daemon thread, stop cleanly."""

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        reuse_port: bool = False,
    ) -> None:
        self.service = service
        server_cls = _ReusePortHTTPServer if reuse_port else ThreadingHTTPServer
        self._httpd = server_cls((host, port), _make_handler(service))
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "QueryServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="borges-serve",
            daemon=True,
        )
        self._thread.start()
        _LOG.info("query server listening on %s", self.url)
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Graceful shutdown: stop accepting, join the accept loop."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def serve_until_interrupt(self) -> None:
        """Foreground mode for the CLI: Ctrl-C or SIGTERM stops the server.

        Handlers are installed explicitly so a daemonized ``borges serve``
        (where SIGINT may start out ignored) still shuts down on
        ``kill``; previous handlers are restored on exit.
        """
        import signal

        def _interrupt(signum: int, frame: object) -> None:
            raise KeyboardInterrupt

        previous = {
            sig: signal.signal(sig, _interrupt)
            for sig in (signal.SIGINT, signal.SIGTERM)
        }
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
            self._httpd.server_close()

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
