"""Observability: metrics registry, span tracing, and run manifests.

Three pieces, composable but independent:

* :class:`MetricsRegistry` — counters, gauges and fixed-bucket histograms
  (process-global by default, injectable for tests);
* :class:`Tracer` — nested wall-clock spans with attributes and error
  status;
* exporters — :func:`build_manifest`/:func:`write_manifest` (the JSON run
  manifest) and :func:`render_prometheus` (text exposition format).

The hot paths (pipeline features, LLM client, scraper, favicon API,
experiment runner) are instrumented against the global registry/tracer,
so ``borges run --telemetry-out run.json`` captures a full run for free.
"""

from .manifest import (
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    config_fingerprint,
    load_manifest,
    write_manifest,
)
from .prometheus import render_prometheus
from .registry import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_LOOKUP_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from .tracer import Span, Tracer, get_tracer, set_tracer, use_tracer

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "build_manifest",
    "config_fingerprint",
    "load_manifest",
    "write_manifest",
    "render_prometheus",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_LOOKUP_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]
