#!/usr/bin/env python3
"""CI smoke test for the serve subsystem.

Boots the HTTP query server on an ephemeral port over a small universe,
hits every endpoint (including the 400/404 contracts), performs a hot
snapshot swap from a freshly-written release file while background
readers are active, asserts zero failed requests, and shuts the server
down cleanly.  Exits non-zero on the first violated expectation.

Run:  PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import json
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path
from tempfile import TemporaryDirectory

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import UniverseConfig  # noqa: E402
from repro.core import BorgesPipeline  # noqa: E402
from repro.core.release import save_mapping_as2org  # noqa: E402
from repro.serve import QueryServer, QueryService  # noqa: E402
from repro.universe import generate_universe  # noqa: E402


def fetch(url: str):
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def expect(condition: bool, label: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {label}")
    if not condition:
        sys.exit(f"serve smoke failed: {label}")


def main() -> int:
    print("building universe + running pipeline...")
    universe = generate_universe(
        UniverseConfig(seed=5, n_organizations=300, total_users=20_000_000)
    )
    result = BorgesPipeline(
        universe.whois, universe.pdb, universe.web
    ).run()
    mapping = result.mapping

    service = QueryService()
    service.store.load_from_mapping(
        mapping, whois=universe.whois, pdb=universe.pdb
    )
    with QueryServer(service) as server:
        base = server.url
        print(f"server on {base}")
        index = service.store.current().index
        asn = index.asns()[0]
        multi = next(o for o in (index.org_of(a) for a in index.asns())
                     if o.size > 1)
        a, b = multi.members[:2]

        print("endpoint contracts:")
        code, body = fetch(f"{base}/healthz")
        expect(code == 200 and body["status"] == "ok", "healthz ok")
        code, body = fetch(f"{base}/v1/asn/{asn}")
        expect(code == 200 and body["asn"] == asn, "asn lookup")
        expect(fetch(f"{base}/v1/asn/999999999")[0] == 404, "asn 404")
        expect(fetch(f"{base}/v1/asn/banana")[0] == 400, "asn 400")
        code, body = fetch(f"{base}/v1/org/{multi.org_id}")
        expect(code == 200 and body["size"] == multi.size, "org lookup")
        expect(fetch(f"{base}/v1/org/BORGES-NOPE")[0] == 404, "org 404")
        code, body = fetch(f"{base}/v1/siblings?a={a}&b={b}")
        expect(code == 200 and body["siblings"] is True, "siblings verdict")
        expect(fetch(f"{base}/v1/siblings")[0] == 400, "siblings 400")
        token = multi.name.split()[0].lower()
        code, body = fetch(f"{base}/v1/search?q={token}")
        expect(code == 200 and isinstance(body["results"], list), "search")
        expect(fetch(f"{base}/v1/search")[0] == 400, "search 400")

        print("hot swap under live readers:")
        errors = []
        stop = threading.Event()

        def reader() -> None:
            i = 0
            asns = index.asns()[:100]
            while not stop.is_set():
                code, _ = fetch(f"{base}/v1/asn/{asns[i % len(asns)]}")
                if code != 200:
                    errors.append(code)
                    return
                i += 1

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        with TemporaryDirectory() as tmp:
            release_path = Path(tmp) / "release.jsonl"
            save_mapping_as2org(mapping, universe.whois, release_path)
            service.store.load_from_release_file(release_path)
        stop.set()
        for t in threads:
            t.join(timeout=10.0)
        expect(errors == [], "zero failed requests across the swap")
        code, body = fetch(f"{base}/healthz")
        expect(body["generation"] == 2, "generation bumped to 2")
        code, body = fetch(f"{base}/v1/siblings?a={a}&b={b}")
        expect(
            code == 200 and body["siblings"] is True and body["generation"] == 2,
            "post-swap answers from the new generation",
        )
        drained = service.store.drain(timeout=5.0)
        expect(drained >= 0, f"retired generations drained ({drained})")

        with urllib.request.urlopen(f"{base}/metrics", timeout=10) as r:
            text = r.read().decode()
        expect("serve_requests_total" in text, "metrics exposition")
        expect("serve_snapshot_swaps_total 2" in text, "swap counter at 2")

    print("graceful shutdown ok")
    stats = service.stats()
    print(f"request totals: {stats['requests']}")
    print("serve smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
