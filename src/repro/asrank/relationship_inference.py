"""AS-relationship inference from observed BGP paths (Gao's heuristic).

Given only the AS paths a collector recorded, infer which adjacencies are
provider→customer and which are peer-to-peer — the classic problem (Gao
2001; refined by the paper's citations [20, 28, 34]) whose outputs CAIDA
publishes as the AS-relationship dataset AS-Rank builds on.

Implemented heuristic (degree-based Gao):

1. compute each AS's observed degree across all paths;
2. in each path, the highest-degree AS is the *top provider* (the
   uphill/downhill turning point);
3. edges before the top are customer→provider, edges after are
   provider→customer;
4. an edge seen in both orientations across different paths, between
   similar-degree ASes, is reclassified peer-to-peer.

Because the synthetic topology's true edges are known, inference accuracy
is directly measurable — the validation real systems approximate with
IRR/ground-truth samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..types import ASN
from .bgp import RouteAnnouncement
from .topology import ASTopology, Relationship


@dataclass(frozen=True)
class InferredEdge:
    """One inferred adjacency; for P2C, ``a`` is the provider."""

    a: ASN
    b: ASN
    relationship: Relationship


def observed_degrees(
    announcements: Sequence[RouteAnnouncement],
) -> Dict[ASN, int]:
    """Distinct-neighbour counts as seen in the paths."""
    neighbours: Dict[ASN, Set[ASN]] = {}
    for announcement in announcements:
        path = announcement.path
        for a, b in zip(path, path[1:]):
            neighbours.setdefault(a, set()).add(b)
            neighbours.setdefault(b, set()).add(a)
    return {asn: len(adj) for asn, adj in neighbours.items()}


def infer_relationships(
    announcements: Sequence[RouteAnnouncement],
    peer_degree_ratio: float = 0.6,
) -> List[InferredEdge]:
    """Run the degree-based Gao heuristic over a path dump.

    ``peer_degree_ratio``: two ASes whose smaller/larger degree ratio
    exceeds this, with conflicting orientations observed, become peers.
    """
    degrees = observed_degrees(announcements)
    # votes[(a, b)] = times a appeared provider-side of b.
    votes: Dict[Tuple[ASN, ASN], int] = {}
    # peer_votes[{a, b}] = times the edge looked like the path's peak
    # crossing between two comparable-degree ASes (Gao's phase 3).
    peer_votes: Dict[Tuple[ASN, ASN], int] = {}
    for announcement in announcements:
        path = announcement.path
        if len(path) < 2:
            continue
        top_index = max(range(len(path)), key=lambda i: degrees[path[i]])
        # The path reads collector → origin: the origin's route climbed
        # up to the top AS and then descended toward the collector, so
        # hops left of the top are downhill (right side is the provider)
        # and hops right of it are uphill (left side is the provider).
        for i in range(len(path) - 1):
            left, right = path[i], path[i + 1]
            if i < top_index:
                provider, customer = right, left
            else:
                provider, customer = left, right
            votes[(provider, customer)] = votes.get((provider, customer), 0) + 1
        # Peak crossing: the edge joining the top AS to its largest
        # neighbour within the path is a peering candidate when their
        # degrees are comparable (valley-free paths cross at most one
        # peer link, and it sits at the peak).
        neighbour_indices = [
            i for i in (top_index - 1, top_index + 1) if 0 <= i < len(path)
        ]
        if neighbour_indices:
            nbr_index = max(neighbour_indices, key=lambda i: degrees[path[i]])
            top, nbr = path[top_index], path[nbr_index]
            ratio = (
                min(degrees[top], degrees[nbr])
                / max(degrees[top], degrees[nbr])
            )
            if ratio >= peer_degree_ratio:
                key = (min(top, nbr), max(top, nbr))
                peer_votes[key] = peer_votes.get(key, 0) + 1

    edges: List[InferredEdge] = []
    seen: Set[Tuple[ASN, ASN]] = set()
    for (provider, customer), count in sorted(votes.items()):
        key = (min(provider, customer), max(provider, customer))
        if key in seen:
            continue
        seen.add(key)
        reverse = votes.get((customer, provider), 0)
        degree_a = degrees.get(provider, 1)
        degree_b = degrees.get(customer, 1)
        ratio = min(degree_a, degree_b) / max(degree_a, degree_b)
        peers = peer_votes.get(key, 0)
        if peers and ratio >= peer_degree_ratio:
            edges.append(
                InferredEdge(a=key[0], b=key[1], relationship=Relationship.P2P)
            )
        elif reverse and ratio >= peer_degree_ratio:
            edges.append(
                InferredEdge(a=key[0], b=key[1], relationship=Relationship.P2P)
            )
        elif reverse and reverse > count:
            edges.append(
                InferredEdge(
                    a=customer, b=provider, relationship=Relationship.P2C
                )
            )
        else:
            edges.append(
                InferredEdge(
                    a=provider, b=customer, relationship=Relationship.P2C
                )
            )
    return edges


@dataclass
class InferenceScore:
    """Accuracy of inferred edges against the ground-truth topology."""

    total: int = 0
    correct: int = 0
    wrong_orientation: int = 0
    wrong_kind: int = 0
    nonexistent: int = 0

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0


def score_inference(
    topology: ASTopology, edges: Iterable[InferredEdge]
) -> InferenceScore:
    """Grade each inferred edge against the true relationships."""
    score = InferenceScore()
    for edge in edges:
        score.total += 1
        true_p2c_forward = edge.b in topology.customers_of(edge.a)
        true_p2c_reverse = edge.a in topology.customers_of(edge.b)
        true_p2p = edge.b in topology.peers_of(edge.a)
        if edge.relationship is Relationship.P2C:
            if true_p2c_forward:
                score.correct += 1
            elif true_p2c_reverse:
                score.wrong_orientation += 1
            elif true_p2p:
                score.wrong_kind += 1
            else:
                score.nonexistent += 1
        else:  # inferred P2P
            if true_p2p:
                score.correct += 1
            elif true_p2c_forward or true_p2c_reverse:
                score.wrong_kind += 1
            else:
                score.nonexistent += 1
    return score
