"""Overload-protection and snapshot-integrity tests for the serve tier.

Three layers under test:

* the :class:`~repro.serve.admission.AdmissionController` — bounded
  concurrency, queue-depth shedding, deadlines, and the no-barging
  fairness guarantee;
* snapshot integrity — every ``load_from_*`` source rejects truncated,
  schema-broken, or digest-mismatched input *before* swap, quarantines
  corrupt files, keeps serving the old generation (``stale``), and can
  roll back to last-known-good;
* the HTTP hardening satellites — malformed query params and hostile
  ``Content-Length`` values answer 400/413/429, never 500 and never a
  hung handler thread.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro.core.artifacts import Artifact, ArtifactStore, make_artifact
from repro.core.mapping import OrgMapping
from repro.core.release import save_mapping_as2org
from repro.digest import stable_digest
from repro.errors import (
    ConfigError,
    DeadlineExceededError,
    OverloadedError,
    RollbackUnavailableError,
    SnapshotIntegrityError,
)
from repro.obs import MetricsRegistry, use_registry
from repro.resilience import PROFILES, FaultInjector, corrupt_snapshot_text
from repro.serve import (
    AdmissionController,
    AdmissionLimits,
    LoadGenerator,
    QueryServer,
    QueryService,
    SnapshotStore,
    percentile,
)
from repro.serve.store import QUARANTINE_SUFFIX
from repro.whois.as2org_file import (
    RELEASE_HEADER_PREFIX,
    parse_release_header,
    record_lines,
    release_digest,
)


@pytest.fixture()
def registry():
    with use_registry() as reg:
        yield reg


@pytest.fixture()
def store(registry):
    return SnapshotStore(registry=registry)


@pytest.fixture()
def loaded_store(store, borges_mapping, universe):
    store.load_from_mapping(borges_mapping, whois=universe.whois, label="gen1")
    return store


# -- admission gate --------------------------------------------------------


class TestAdmissionLimits:
    def test_rejects_nonsense_sizing(self):
        with pytest.raises(ConfigError):
            AdmissionLimits(max_inflight=0).validate()
        with pytest.raises(ConfigError):
            AdmissionLimits(max_queue=-1).validate()
        with pytest.raises(ConfigError):
            AdmissionLimits(default_deadline=0.0).validate()
        with pytest.raises(ConfigError):
            AdmissionLimits(deadlines={"batch": -1.0}).validate()

    def test_per_endpoint_deadline_override(self):
        limits = AdmissionLimits(
            default_deadline=1.0, deadlines={"batch": 5.0}
        ).validate()
        assert limits.deadline_for("batch") == 5.0
        assert limits.deadline_for("asn") == 1.0


class TestAdmissionController:
    def test_admits_up_to_max_inflight(self, registry):
        gate = AdmissionController(
            AdmissionLimits(max_inflight=3, max_queue=0), registry=registry
        )
        tickets = [gate.admit("asn") for _ in range(3)]
        assert gate.occupancy()["inflight"] == 3
        with pytest.raises(OverloadedError):
            gate.admit("asn")
        for ticket in tickets:
            ticket.__exit__(None, None, None)
        assert gate.occupancy()["inflight"] == 0

    def test_shed_carries_retry_after_and_occupancy(self, registry):
        gate = AdmissionController(
            AdmissionLimits(max_inflight=1, max_queue=0, default_deadline=2.5),
            registry=registry,
        )
        with gate.admit("asn"):
            with pytest.raises(OverloadedError) as excinfo:
                gate.admit("asn")
        assert excinfo.value.retry_after == 2.5
        assert excinfo.value.retryable
        assert excinfo.value.inflight == 1

    def test_deadline_expires_while_queued(self, registry):
        gate = AdmissionController(
            AdmissionLimits(
                max_inflight=1, max_queue=4, default_deadline=0.05
            ),
            registry=registry,
        )
        with gate.admit("asn"):
            started = time.monotonic()
            with pytest.raises(DeadlineExceededError):
                gate.admit("asn")
            waited = time.monotonic() - started
        assert 0.04 <= waited < 1.0
        assert gate.occupancy()["deadline_exceeded"] == 1

    def test_release_wakes_queued_waiter(self, registry):
        gate = AdmissionController(
            AdmissionLimits(max_inflight=1, max_queue=2, default_deadline=5.0),
            registry=registry,
        )
        ticket = gate.admit("asn")
        admitted = threading.Event()

        def waiter() -> None:
            with gate.admit("asn") as queued_ticket:
                assert queued_ticket.queued_for > 0.0
                admitted.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        deadline = time.monotonic() + 5.0
        while gate.occupancy()["queued"] < 1:
            assert time.monotonic() < deadline, "waiter never queued"
            time.sleep(0.001)
        assert not admitted.is_set()
        ticket.__exit__(None, None, None)
        assert admitted.wait(timeout=5.0)
        thread.join(timeout=5.0)

    def test_newcomers_cannot_barge_past_the_queue(self, registry):
        """With a waiter queued, a freed slot goes to the queue first."""
        gate = AdmissionController(
            AdmissionLimits(max_inflight=1, max_queue=2, default_deadline=5.0),
            registry=registry,
        )
        ticket = gate.admit("asn")
        order = []

        def queued() -> None:
            with gate.admit("asn"):
                order.append("queued")

        thread = threading.Thread(target=queued)
        thread.start()
        deadline = time.monotonic() + 5.0
        while gate.occupancy()["queued"] < 1:
            assert time.monotonic() < deadline
            time.sleep(0.001)
        # A newcomer arriving now must queue behind (or shed), never
        # steal the slot the release below frees for the waiter.
        ticket.__exit__(None, None, None)
        thread.join(timeout=5.0)
        with gate.admit("asn"):
            order.append("newcomer")
        assert order == ["queued", "newcomer"]

    def test_ticket_budget_accounting(self, registry):
        gate = AdmissionController(
            AdmissionLimits(max_inflight=1, max_queue=0, default_deadline=0.2),
            registry=registry,
        )
        with gate.admit("asn") as ticket:
            assert 0.0 < ticket.remaining() <= 0.2
            assert not ticket.expired
        expired = gate.admit("asn")
        expired.deadline_at = time.monotonic() - 1.0
        assert expired.expired and expired.remaining() == 0.0
        expired.__exit__(None, None, None)


class TestServiceAdmission:
    def test_service_counts_shed_per_endpoint(
        self, registry, borges_mapping, universe
    ):
        service = QueryService(
            registry=registry,
            admission=AdmissionController(
                AdmissionLimits(max_inflight=1, max_queue=0), registry=registry
            ),
        )
        service.store.load_from_mapping(borges_mapping, whois=universe.whois)
        asn = service.store.current().index.asns()[0]
        with service.admission.admit("other"):
            with pytest.raises(OverloadedError):
                service.lookup_asn(asn)
        assert service.stats()["requests"]["asn.shed"] == 1
        assert "admission" in service.stats()

    def test_ungated_service_still_answers(
        self, registry, borges_mapping, universe
    ):
        service = QueryService(registry=registry)
        service.store.load_from_mapping(borges_mapping, whois=universe.whois)
        asn = service.store.current().index.asns()[0]
        assert service.lookup_asn(asn)["asn"] == asn

    def test_healthz_exposes_gate_occupancy(
        self, registry, borges_mapping, universe
    ):
        service = QueryService(
            registry=registry,
            admission=AdmissionController(registry=registry),
        )
        service.store.load_from_mapping(borges_mapping, whois=universe.whois)
        ready, body = service.health()
        assert ready
        assert body["admission"]["max_inflight"] == 64
        assert body["rollback_generations"] == 0


# -- snapshot integrity: the four loaders ----------------------------------


class TestMappingFileIntegrity:
    def _saved(self, mapping, tmp_path):
        path = tmp_path / "mapping.json"
        mapping.save(path)
        return path

    def test_round_trip_with_embedded_digest(self, borges_mapping, tmp_path):
        path = self._saved(borges_mapping, tmp_path)
        payload = json.loads(path.read_text())
        assert payload["digest"]
        loaded = OrgMapping.load(path)
        assert loaded.to_json()["clusters"] == borges_mapping.to_json()["clusters"]

    def test_truncated_json_fails_closed_and_quarantines(
        self, loaded_store, borges_mapping, tmp_path
    ):
        path = self._saved(borges_mapping, tmp_path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(SnapshotIntegrityError) as excinfo:
            loaded_store.load_from_mapping_file(path)
        assert "JSON" in excinfo.value.reason
        assert not path.exists()
        assert path.with_name(path.name + QUARANTINE_SUFFIX).exists()
        # the old generation is untouched
        assert loaded_store.current().generation == 1

    def test_digest_mismatch_detected(
        self, loaded_store, borges_mapping, tmp_path
    ):
        path = self._saved(borges_mapping, tmp_path)
        payload = json.loads(path.read_text())
        payload["clusters"] = payload["clusters"][:-1]  # tamper
        path.write_text(json.dumps(payload))
        with pytest.raises(SnapshotIntegrityError) as excinfo:
            loaded_store.load_from_mapping_file(path)
        assert "digest" in excinfo.value.reason
        assert excinfo.value.expected_digest != excinfo.value.actual_digest

    def test_wrong_schema_rejected(self, loaded_store, tmp_path):
        path = tmp_path / "mapping.json"
        path.write_text(json.dumps({"universe": "not-a-list", "clusters": []}))
        with pytest.raises(SnapshotIntegrityError):
            loaded_store.load_from_mapping_file(path)

    def test_quarantine_can_be_disabled(
        self, registry, borges_mapping, tmp_path
    ):
        store = SnapshotStore(registry=registry, quarantine=False)
        path = self._saved(borges_mapping, tmp_path)
        path.write_text(path.read_text()[:100])
        with pytest.raises(SnapshotIntegrityError):
            store.load_from_mapping_file(path)
        assert path.exists()


class TestReleaseFileIntegrity:
    def _released(self, mapping, whois, tmp_path):
        path = tmp_path / "release.jsonl"
        save_mapping_as2org(mapping, whois, path)
        return path

    def test_release_carries_verifiable_header(
        self, borges_mapping, universe, tmp_path
    ):
        path = self._released(borges_mapping, universe.whois, tmp_path)
        text = path.read_text()
        assert text.startswith(RELEASE_HEADER_PREFIX)
        header = parse_release_header(text)
        assert header["schema"] == 1
        assert header["digest"] == release_digest(record_lines(text))

    def test_tampered_release_fails_closed(
        self, loaded_store, borges_mapping, universe, tmp_path
    ):
        path = self._released(borges_mapping, universe.whois, tmp_path)
        text = path.read_text()
        path.write_text(corrupt_snapshot_text(text, seed=5))
        with pytest.raises(SnapshotIntegrityError):
            loaded_store.load_from_release_file(path)
        assert loaded_store.current().generation == 1
        assert path.with_name(path.name + QUARANTINE_SUFFIX).exists()

    def test_headerless_caida_file_still_loads(
        self, loaded_store, borges_mapping, universe, tmp_path
    ):
        """CAIDA's own files carry no digest header — back-compat path."""
        path = self._released(borges_mapping, universe.whois, tmp_path)
        lines = [
            line for line in path.read_text().splitlines()
            if not line.startswith("#")
        ]
        path.write_text("\n".join(lines) + "\n")
        snapshot = loaded_store.load_from_release_file(path)
        assert snapshot.generation == 2

    def test_empty_release_rejected(self, loaded_store, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(SnapshotIntegrityError):
            loaded_store.load_from_release_file(path)

    def test_malformed_header_rejected(
        self, loaded_store, borges_mapping, universe, tmp_path
    ):
        path = self._released(borges_mapping, universe.whois, tmp_path)
        body = "\n".join(
            line for line in path.read_text().splitlines()
            if not line.startswith("#")
        )
        path.write_text(RELEASE_HEADER_PREFIX + "{not json\n" + body + "\n")
        with pytest.raises(SnapshotIntegrityError):
            loaded_store.load_from_release_file(path)


class TestArtifactIntegrity:
    def test_corrupt_merge_artifact_rejected(
        self, loaded_store, borges_mapping, tmp_path
    ):
        artifacts = ArtifactStore(root=tmp_path / "cache")
        payload = borges_mapping.to_json()
        good = make_artifact("merge", "f" * 40, payload)
        tampered = Artifact(
            stage=good.stage,
            fingerprint=good.fingerprint,
            payload={**payload, "universe": payload["universe"][:-1]},
            content_digest=good.content_digest,  # stale digest
        )
        artifacts.put(tampered)
        with pytest.raises(SnapshotIntegrityError) as excinfo:
            loaded_store.load_from_artifact_store(artifacts, good.fingerprint)
        assert excinfo.value.source == "artifact"
        assert loaded_store.current().generation == 1

    def test_intact_merge_artifact_loads(
        self, loaded_store, borges_mapping, tmp_path
    ):
        artifacts = ArtifactStore(root=tmp_path / "cache")
        artifacts.put(make_artifact("merge", "a" * 40, borges_mapping.to_json()))
        snapshot = loaded_store.load_from_artifact_store(artifacts, "a" * 40)
        assert snapshot.generation == 2


class TestEmptyMappingRejected:
    def test_empty_mapping_never_swaps_in(self, store):
        empty = OrgMapping(universe=[], clusters=[], method="test")
        with pytest.raises(SnapshotIntegrityError):
            store.load_from_mapping(empty)
        assert store.current_or_none() is None


# -- stale serving + rollback ----------------------------------------------


class TestStaleAndRollback:
    def test_failed_swap_marks_stale_and_keeps_serving(
        self, registry, loaded_store, borges_mapping, universe, tmp_path
    ):
        service = QueryService(store=loaded_store, registry=registry)
        path = tmp_path / "release.jsonl"
        save_mapping_as2org(borges_mapping, universe.whois, path)
        path.write_text(corrupt_snapshot_text(path.read_text(), seed=3))
        assert loaded_store.try_swap(
            lambda: loaded_store.load_from_release_file(path)
        ) is None
        assert loaded_store.stale
        asn = loaded_store.current().index.asns()[0]
        response = service.lookup_asn(asn)
        assert response["stale"] is True
        ready, body = service.health()
        assert ready and body["status"] == "degraded"

    def test_rollback_restores_previous_content(
        self, loaded_store, borges_mapping, universe
    ):
        gen1_digest = loaded_store.current().index.digest
        singletons = OrgMapping(
            universe=sorted(borges_mapping.to_json()["universe"]),
            clusters=[
                frozenset([asn])
                for asn in borges_mapping.to_json()["universe"]
            ],
            method="singletons",
        )
        loaded_store.load_from_mapping(singletons, label="gen2")
        assert loaded_store.current().index.digest != gen1_digest
        restored = loaded_store.rollback()
        assert restored.generation == 3
        assert restored.index.digest == gen1_digest
        assert restored.source == "rollback"

    def test_rollback_clears_stale(self, loaded_store, borges_mapping, universe):
        loaded_store.load_from_mapping(borges_mapping, whois=universe.whois)
        loaded_store.stale = True
        loaded_store.rollback()
        assert not loaded_store.stale

    def test_history_is_bounded_and_walks_backwards(
        self, registry, borges_mapping, universe
    ):
        store = SnapshotStore(registry=registry, history_limit=2)
        for label in ("gen1", "gen2", "gen3", "gen4"):
            store.load_from_mapping(
                borges_mapping, whois=universe.whois, label=label
            )
        history = store.history()
        assert [entry["label"] for entry in history] == ["gen2", "gen3"]
        assert store.rollback().label.endswith("gen3)")
        assert store.rollback().label.endswith("gen2)")
        with pytest.raises(RollbackUnavailableError):
            store.rollback()

    def test_rollback_without_history_raises(self, loaded_store):
        with pytest.raises(RollbackUnavailableError):
            loaded_store.rollback()

    def test_service_rollback_summary(
        self, registry, loaded_store, borges_mapping, universe
    ):
        service = QueryService(store=loaded_store, registry=registry)
        loaded_store.load_from_mapping(borges_mapping, whois=universe.whois)
        summary = service.rollback()
        assert summary["generation"] == 3
        assert summary["orgs"] == len(loaded_store.current().index)


# -- chaos profiles --------------------------------------------------------


class TestServeChaos:
    def test_corrupt_snapshot_text_is_deterministic_and_destructive(self):
        text = "x" * 400
        once = corrupt_snapshot_text(text, seed=9)
        again = corrupt_snapshot_text(text, seed=9)
        assert once == again
        assert once != text and len(once) < len(text)
        assert corrupt_snapshot_text(text, seed=10) != once

    def test_corrupt_snapshot_profile_defeats_file_loads(
        self, registry, borges_mapping, universe, tmp_path
    ):
        injector = FaultInjector(
            PROFILES["corrupt-snapshot"], seed=13, registry=registry
        )
        store = SnapshotStore(registry=registry, injector=injector)
        store.load_from_mapping(borges_mapping, whois=universe.whois)
        path = tmp_path / "release.jsonl"
        save_mapping_as2org(borges_mapping, universe.whois, path)
        with pytest.raises(SnapshotIntegrityError):
            store.load_from_release_file(path)
        assert store.current().generation == 1

    def test_slow_reader_profile_stalls_requests(
        self, registry, borges_mapping, universe
    ):
        injector = FaultInjector(
            PROFILES["slow-reader"], seed=13, registry=registry
        )
        service = QueryService(registry=registry, injector=injector)
        service.store.load_from_mapping(borges_mapping, whois=universe.whois)
        asn = service.store.current().index.asns()[0]
        started = time.perf_counter()
        service.lookup_asn(asn)
        assert time.perf_counter() - started >= (
            PROFILES["slow-reader"].slow_read_seconds
        )


# -- loadgen overload mode -------------------------------------------------


class TestOverloadLoadgen:
    def test_percentile_nearest_rank(self):
        assert percentile([], 0.99) == 0.0
        assert percentile([1.0], 0.5) == 1.0
        samples = [float(i) for i in range(1, 101)]
        assert percentile(samples, 0.5) == 51.0
        assert percentile(samples, 0.99) == 100.0

    def test_overload_run_classifies_and_never_5xx(
        self, registry, borges_mapping, universe
    ):
        injector = FaultInjector(
            PROFILES["slow-reader"], seed=13, registry=registry
        )
        service = QueryService(
            registry=registry,
            admission=AdmissionController(
                AdmissionLimits(
                    max_inflight=2, max_queue=2, default_deadline=2.0
                ),
                registry=registry,
            ),
            injector=injector,
        )
        service.store.load_from_mapping(borges_mapping, whois=universe.whois)
        generator = LoadGenerator(
            service, service.store.current().index.asns(), seed=3
        )
        report = generator.run_overload(
            240, workers=8, herd_size=10, backoff_seconds=0.002
        )
        assert report.classes["5xx"] == 0
        assert report.classes["429"] > 0
        assert report.classes["2xx"] == report.ok
        assert sum(report.classes.values()) == report.requests
        assert report.admitted_p99 >= report.admitted_p50 > 0.0
        assert report.to_json()["classes"] == report.classes

    def test_legacy_report_json_has_no_classes(
        self, registry, borges_mapping, universe
    ):
        service = QueryService(registry=registry)
        service.store.load_from_mapping(borges_mapping, whois=universe.whois)
        generator = LoadGenerator(
            service, service.store.current().index.asns(), seed=3
        )
        report = generator.run(50)
        assert "classes" not in report.to_json()


# -- HTTP hardening --------------------------------------------------------


def _raw_post(server, path, content_length, body=b""):
    conn = http.client.HTTPConnection(server.host, server.port, timeout=5)
    try:
        conn.putrequest("POST", path)
        if content_length is not None:
            conn.putheader("Content-Length", content_length)
        conn.endheaders()
        if body:
            conn.send(body)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


class TestHTTPHardening:
    @pytest.fixture()
    def server(self, registry, borges_mapping, universe):
        service = QueryService(registry=registry)
        service.store.load_from_mapping(
            borges_mapping, whois=universe.whois, pdb=universe.pdb
        )
        with QueryServer(service) as srv:
            yield srv

    def test_missing_content_length_is_400(self, server):
        status, body = _raw_post(server, "/v1/batch", None)
        assert status == 400 and "Content-Length" in body["error"]

    def test_negative_content_length_is_400(self, server):
        status, body = _raw_post(server, "/v1/batch", "-1")
        assert status == 400 and "negative" in body["error"]

    def test_non_integer_content_length_is_400(self, server):
        status, body = _raw_post(server, "/v1/batch", "banana")
        assert status == 400 and "integer" in body["error"]

    def test_oversized_content_length_is_413_without_reading(self, server):
        status, body = _raw_post(server, "/v1/batch", str(1 << 30))
        assert status == 413 and "exceeds" in body["error"]

    def test_oversized_batch_list_is_413(self, server):
        payload = json.dumps({"asns": list(range(2000))}).encode()
        status, body = _raw_post(
            server, "/v1/batch", str(len(payload)), payload
        )
        assert status == 413 and "2000" in body["error"]

    def test_non_json_body_is_400(self, server):
        status, body = _raw_post(server, "/v1/batch", "9", b"not-json!")
        assert status == 400 and "JSON" in body["error"]

    def test_non_integer_asns_in_batch_are_400(self, server):
        payload = json.dumps({"asns": ["banana"]}).encode()
        status, body = _raw_post(
            server, "/v1/batch", str(len(payload)), payload
        )
        assert status == 400

    def test_malformed_params_name_the_field(self, server):
        conn = http.client.HTTPConnection(
            server.host, server.port, timeout=5
        )
        try:
            for url, field in (
                ("/v1/siblings?a=notanint&b=2", "a"),
                ("/v1/siblings?a=1&b=no", "b"),
                ("/v1/siblings?asn=no", "asn"),
                ("/v1/search?q=net&limit=no", "limit"),
            ):
                conn.request("GET", url)
                response = conn.getresponse()
                body = json.loads(response.read())
                assert response.status == 400, url
                assert f"'{field}'" in body["error"], url
        finally:
            conn.close()


class TestHTTPOverloadSurface:
    def test_saturated_gate_answers_429_with_retry_after(
        self, registry, borges_mapping, universe
    ):
        service = QueryService(
            registry=registry,
            admission=AdmissionController(
                AdmissionLimits(
                    max_inflight=1, max_queue=0, default_deadline=1.5
                ),
                registry=registry,
            ),
        )
        service.store.load_from_mapping(borges_mapping, whois=universe.whois)
        asn = service.store.current().index.asns()[0]
        with QueryServer(service) as server:
            ticket = service.admission.admit("other")
            try:
                conn = http.client.HTTPConnection(
                    server.host, server.port, timeout=5
                )
                conn.request("GET", f"/v1/asn/{asn}")
                response = conn.getresponse()
                payload = json.loads(response.read())
                assert response.status == 429
                assert int(response.getheader("Retry-After")) >= 1
                assert payload["retry_after"] == 1.5
                conn.close()
            finally:
                ticket.__exit__(None, None, None)
            status, _ = _raw_post(server, "/v1/admin/rollback", "2", b"{}")
            assert status == 409  # no history yet — structured, not a 500


class TestHTTPRollbackEndpoint:
    def test_rollback_round_trip(self, registry, borges_mapping, universe):
        service = QueryService(registry=registry)
        service.store.load_from_mapping(
            borges_mapping, whois=universe.whois, label="gen1"
        )
        service.store.load_from_mapping(
            borges_mapping, whois=universe.whois, label="gen2"
        )
        with QueryServer(service) as server:
            status, body = _raw_post(server, "/v1/admin/rollback", "2", b"{}")
            assert status == 200
            assert body["generation"] == 3
            assert "gen1" in body["restored"]


# -- CLI surface -----------------------------------------------------------


class TestRobustnessCLI:
    def test_sniff_recognizes_headered_release_with_odd_suffix(
        self, tmp_path, borges_mapping, universe
    ):
        from repro.cli import _sniff_snapshot_kind

        path = tmp_path / "release.dat"
        save_mapping_as2org(borges_mapping, universe.whois, path)
        assert _sniff_snapshot_kind(path) == "release"

    def test_sniff_still_recognizes_mapping_files(
        self, tmp_path, borges_mapping
    ):
        from repro.cli import _sniff_snapshot_kind

        path = tmp_path / "mapping.json"
        borges_mapping.save(path)
        assert _sniff_snapshot_kind(path) == "mapping"

    def test_serve_rollback_client_reports_unreachable_server(self, capsys):
        from repro.cli import main

        status = main(
            ["serve", "--rollback", "--host", "127.0.0.1", "--port", "1"]
        )
        assert status == 1
        assert "cannot reach" in capsys.readouterr().out

    def test_release_files_round_trip_through_serve(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        out = tmp_path / "rel.jsonl"
        with use_registry():
            assert main(["--orgs", "40", "release", "--out", str(out)]) == 0
            capsys.readouterr()
            assert main(["query", "--snapshot", str(out), "--search", "a"]) == 0
        assert '"results"' in capsys.readouterr().out


# -- drain / rollback depth (continuous-operation satellites) --------------


class TestDrainWithStuckLease:
    def test_drain_times_out_on_a_held_lease_then_retires_it(
        self, loaded_store, borges_mapping, universe
    ):
        lease = loaded_store.acquire()
        try:
            loaded_store.load_from_mapping(
                borges_mapping, whois=universe.whois, label="gen2"
            )
            # The stuck reader pins generation 1 on the retiring list:
            # drain must give up at its timeout, not block forever.
            started = time.monotonic()
            assert loaded_store.drain(timeout=0.05) == 0
            assert time.monotonic() - started < 2.0
            assert loaded_store.stats()["retiring_generations"] == 1
        finally:
            lease.__exit__(None, None, None)
        assert loaded_store.drain(timeout=1.0) == 1
        assert loaded_store.stats()["retiring_generations"] == 0

    def test_released_before_swap_never_hits_the_retiring_list(
        self, loaded_store, borges_mapping, universe
    ):
        with loaded_store.acquire() as snapshot:
            assert snapshot.generation == 1
        loaded_store.load_from_mapping(
            borges_mapping, whois=universe.whois, label="gen2"
        )
        assert loaded_store.stats()["retiring_generations"] == 0


class TestRollbackWalksPastQuarantinedGenerations:
    def test_repeated_rollbacks_walk_deeper_not_ping_pong(
        self, store, tmp_path, borges_mapping, universe
    ):
        for label in ("gen1", "gen2", "gen3"):
            store.load_from_mapping(
                borges_mapping, whois=universe.whois, label=label
            )
        # Two corrupt refreshes in a row: each fails closed, quarantines
        # its input file, and leaves the store serving-but-stale.
        for n in range(2):
            bad = tmp_path / f"bad{n}.json"
            bad.write_text("{definitely not json", encoding="utf-8")
            assert (
                store.try_swap(
                    lambda path=bad: store.load_from_mapping_file(path)
                )
                is None
            )
            assert bad.with_name(bad.name + QUARANTINE_SUFFIX).exists()
        assert store.stale
        assert store.swap_failures == 2

        first = store.rollback()
        assert "gen2" in first.label
        assert store.stale is False  # a successful install clears staleness
        second = store.rollback()
        assert "gen1" in second.label  # deeper, not back to gen3
        assert store.rollback_count == 2
        with pytest.raises(RollbackUnavailableError):
            store.rollback()

    def test_health_reports_rollback_depth_and_count(
        self, registry, borges_mapping, universe
    ):
        service = QueryService(registry=registry)
        for label in ("gen1", "gen2"):
            service.store.load_from_mapping(
                borges_mapping, whois=universe.whois, label=label
            )
        ready, body = service.health()
        assert ready
        assert body["rollback_generations"] == 1
        assert body["rollback_count"] == 0
        service.rollback()
        ready, body = service.health()
        assert body["rollback_count"] == 1
        assert body["rollback_generations"] == 0


# -- unreachable-server UX (query / top) -----------------------------------


class TestUnreachableServerUX:
    def test_remote_query_prints_one_line_not_a_traceback(self, capsys):
        from repro.cli import main

        status = main(
            ["query", "64500", "--host", "127.0.0.1", "--port", "1"]
        )
        assert status == 1
        out = capsys.readouterr().out
        assert "server unreachable at 127.0.0.1:1" in out
        assert "Traceback" not in out

    def test_query_gen_requires_host(self, capsys):
        from repro.cli import main

        status = main(["query", "64500", "--gen", "2"])
        assert status == 2
        assert "--gen needs --host" in capsys.readouterr().out

    def test_top_exits_nonzero_with_one_line_diagnosis(self):
        import io

        from repro.serve.top import run_top

        buffer = io.StringIO()
        status = run_top(
            host="127.0.0.1", port=1, iterations=1, clear=False, stream=buffer
        )
        assert status == 1
        assert buffer.getvalue() == "server unreachable at 127.0.0.1:1\n"

    def test_top_renders_watch_and_swap_posture(
        self, registry, borges_mapping, universe
    ):
        from repro.serve.top import TopView

        service = QueryService(registry=registry)
        service.store.load_from_mapping(
            borges_mapping, whois=universe.whois, label="gen1"
        )
        with QueryServer(service) as server:
            view = TopView(f"http://{server.host}:{server.port}")
            rendered = view.render(view.poll())
        assert "swaps" in rendered
        assert "rollback-depth 0" in rendered
