"""Unit tests for union-find consolidation and the OrgMapping container."""

import pytest

from repro.core.mapping import OrgMapping
from repro.core.merge import UnionFind, merge_clusters
from repro.errors import UnknownASNError


class TestUnionFind:
    def test_singletons(self):
        forest = UnionFind()
        forest.add(1)
        forest.add(2)
        assert not forest.connected(1, 2)
        assert len(forest.groups()) == 2

    def test_union_connects(self):
        forest = UnionFind()
        forest.union(1, 2)
        forest.union(2, 3)
        assert forest.connected(1, 3)

    def test_union_idempotent(self):
        forest = UnionFind()
        forest.union(1, 2)
        forest.union(1, 2)
        assert len(forest.groups()) == 1

    def test_connected_unknown_items(self):
        assert not UnionFind().connected(1, 2)

    def test_groups_sorted_largest_first(self):
        forest = UnionFind()
        forest.union(1, 2)
        forest.union(2, 3)
        forest.add(9)
        groups = forest.groups()
        assert groups[0] == {1, 2, 3}
        assert groups[1] == {9}

    def test_find_path_compression_consistency(self):
        forest = UnionFind()
        for i in range(100):
            forest.union(i, i + 1)
        root = forest.find(0)
        assert all(forest.find(i) == root for i in range(101))


class TestMergeClusters:
    def test_disjoint_stay_disjoint(self):
        merged = merge_clusters([[{1, 2}, {3, 4}]])
        assert sorted(map(sorted, merged)) == [[1, 2], [3, 4]]

    def test_overlap_merges(self):
        merged = merge_clusters([[{1, 2}], [{2, 3}]])
        assert merged == [frozenset({1, 2, 3})]

    def test_transitive_closure_across_features(self):
        merged = merge_clusters([[{1, 2}], [{2, 3}], [{3, 4}]])
        assert merged == [frozenset({1, 2, 3, 4})]

    def test_empty_clusters_ignored(self):
        assert merge_clusters([[set(), {5}]]) == [frozenset({5})]

    def test_no_input(self):
        assert merge_clusters([]) == []


class TestOrgMapping:
    def make(self):
        return OrgMapping(
            universe=[1, 2, 3, 4, 5, 6],
            clusters=[{1, 2}, {2, 3}, {5, 99}],  # 99 outside the universe
            method="test",
            org_names={1: "Group A", 5: "Solo"},
        )

    def test_merges_overlapping_clusters(self):
        mapping = self.make()
        assert mapping.cluster_of(1) == frozenset({1, 2, 3})

    def test_outside_universe_dropped(self):
        mapping = self.make()
        assert 99 not in mapping
        assert mapping.cluster_of(5) == frozenset({5})

    def test_uncovered_asns_become_singletons(self):
        mapping = self.make()
        assert mapping.cluster_of(4) == frozenset({4})
        assert mapping.cluster_of(6) == frozenset({6})

    def test_org_count(self):
        assert len(self.make()) == 4  # {1,2,3}, {4}, {5}, {6}

    def test_sizes_descending(self):
        assert self.make().sizes() == [3, 1, 1, 1]

    def test_are_siblings(self):
        mapping = self.make()
        assert mapping.are_siblings(1, 3)
        assert not mapping.are_siblings(1, 4)
        assert not mapping.are_siblings(1, 999)

    def test_cluster_of_unknown_raises(self):
        with pytest.raises(UnknownASNError):
            self.make().cluster_of(999)

    def test_org_name_lookup(self):
        mapping = self.make()
        assert mapping.org_name_of(3) == "Group A"  # via member 1
        assert mapping.org_name_of(4) == "AS4"  # no name recorded

    def test_multi_asn_clusters(self):
        assert self.make().multi_asn_clusters() == [frozenset({1, 2, 3})]

    def test_stats(self):
        stats = self.make().stats()
        assert stats["asns"] == 6
        assert stats["orgs"] == 4
        assert stats["multi_asn_orgs"] == 1
        assert stats["max_asns_per_org"] == 3

    def test_changed_clusters_vs(self):
        baseline = OrgMapping(universe=[1, 2, 3, 4, 5, 6], clusters=[{1, 2}])
        changed = self.make().changed_clusters_vs(baseline)
        assert frozenset({1, 2, 3}) in changed
        assert frozenset({4}) not in changed  # identical singleton

    def test_json_round_trip(self, tmp_path):
        mapping = self.make()
        path = tmp_path / "mapping.json"
        mapping.save(path)
        loaded = OrgMapping.load(path)
        assert loaded.clusters() == mapping.clusters()
        assert loaded.method == "test"
        assert loaded.org_name_of(1) == "Group A"

    def test_universe_size(self):
        assert self.make().universe_size == 6
