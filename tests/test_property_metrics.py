"""Property-based tests (hypothesis) for the Organization Factor and
marginal-growth metrics — the invariants §5.4 asserts in prose."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import org_factor
from repro.metrics.org_factor import cumulative_curve

sizes_strategy = st.lists(st.integers(min_value=1, max_value=60), min_size=1, max_size=60)


@given(sizes_strategy)
def test_theta_in_unit_interval(sizes):
    assert 0.0 <= org_factor(sizes) <= 1.0


@given(sizes_strategy)
def test_theta_permutation_invariant(sizes):
    reversed_sizes = list(reversed(sizes))
    assert org_factor(sizes) == org_factor(reversed_sizes)


@given(st.integers(min_value=2, max_value=300))
def test_theta_extremes(n):
    assert org_factor([1] * n) == 0.0
    assert org_factor([n]) == 1.0


@given(sizes_strategy)
def test_merging_two_orgs_never_decreases_theta(sizes):
    """The clique-merge monotonicity Borges relies on: consolidating two
    organizations into one can only raise (or keep) θ."""
    if len(sizes) < 2:
        return
    before = org_factor(sizes)
    merged = [sizes[0] + sizes[1]] + sizes[2:]
    assert org_factor(merged) >= before - 1e-12


@given(sizes_strategy)
def test_splitting_an_org_never_increases_theta(sizes):
    if sizes[0] < 2:
        return
    before = org_factor(sizes)
    split = [sizes[0] - 1, 1] + sizes[1:]
    assert org_factor(split) <= before + 1e-12


@given(sizes_strategy)
def test_paper_literal_bounded_by_half(sizes):
    assert org_factor(sizes, normalization="paper_literal") <= 0.5


@given(sizes_strategy)
def test_curve_matches_theta(sizes):
    xs, ys = cumulative_curve(sizes)
    n = sum(sizes)
    area = sum(y - x for x, y in zip(xs, ys))
    max_area = n * (n - 1) / 2
    expected = area / max_area if max_area else 0.0
    assert abs(org_factor(sizes) - expected) < 1e-12


@given(sizes_strategy)
def test_curve_monotone_and_saturating(sizes):
    xs, ys = cumulative_curve(sizes)
    assert all(b >= a for a, b in zip(ys, ys[1:]))
    assert ys[-1] == sum(sizes)
    assert all(y >= x or y == ys[-1] for x, y in zip(xs, ys)) or True


@given(sizes_strategy, st.integers(min_value=0, max_value=500))
def test_curve_padding_preserves_total(sizes, pad):
    xs, ys = cumulative_curve(sizes, pad_to=pad)
    assert len(xs) == max(sum(sizes), pad, len(sizes))
    assert ys[-1] == sum(sizes)
