"""Logging helpers.

The library never configures the root logger; applications (CLI, benches)
call :func:`setup_logging` once.  Library modules obtain loggers through
:func:`get_logger`, which namespaces everything under ``repro``.
"""

from __future__ import annotations

import logging
import sys
import time
from contextlib import contextmanager
from typing import Iterator, Optional

_ROOT_NAME = "repro"


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under ``repro``.

    ``get_logger("core.pipeline")`` → logger ``repro.core.pipeline``.
    Passing a name already starting with ``repro`` keeps it unchanged.
    """
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def setup_logging(level: int = logging.INFO, stream=None) -> None:
    """Configure a simple handler for the ``repro`` logger tree."""
    logger = logging.getLogger(_ROOT_NAME)
    logger.setLevel(level)
    if logger.handlers:
        return
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s")
    )
    logger.addHandler(handler)
    logger.propagate = False


@contextmanager
def timed(logger: logging.Logger, label: str, level: int = logging.INFO) -> Iterator[None]:
    """Log the wall-clock duration of a block: ``with timed(log, "scrape"):``."""
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        logger.log(level, "%s took %.3fs", label, elapsed)


class ProgressCounter:
    """Periodic progress logging for long loops without external deps."""

    def __init__(
        self,
        logger: logging.Logger,
        label: str,
        total: Optional[int] = None,
        every: int = 1000,
    ) -> None:
        self._logger = logger
        self._label = label
        self._total = total
        self._every = max(1, every)
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    def tick(self, n: int = 1) -> None:
        self._count += n
        if self._count % self._every == 0:
            if self._total:
                self._logger.info(
                    "%s: %d/%d (%.1f%%)",
                    self._label,
                    self._count,
                    self._total,
                    100.0 * self._count / self._total,
                )
            else:
                self._logger.info("%s: %d", self._label, self._count)

    def done(self) -> None:
        self._logger.info("%s: finished at %d", self._label, self._count)
