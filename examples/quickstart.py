#!/usr/bin/env python3
"""Quickstart: run Borges end to end and compare it with the baselines.

Builds the default synthetic universe (the offline stand-in for the
PeeringDB + WHOIS + web inputs of July 2024), runs the full four-feature
pipeline, and prints the headline numbers of the paper: per-feature
contributions (Table 3) and the Organization Factor θ against AS2Org and
as2org+ (Table 6's headline row).

Run:  python examples/quickstart.py [--orgs N] [--seed S]
"""

import argparse

from repro import (
    BorgesPipeline,
    UniverseConfig,
    build_as2org_mapping,
    build_as2orgplus_mapping,
    generate_universe,
    org_factor_from_mapping,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--orgs", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    print(f"generating universe (seed={args.seed}, orgs={args.orgs})...")
    config = UniverseConfig(seed=args.seed, n_organizations=args.orgs)
    universe = generate_universe(config)
    print(
        f"  {len(universe.whois):,} delegated ASNs, "
        f"{len(universe.pdb):,} PeeringDB nets, "
        f"{len(universe.web):,} websites"
    )

    print("\nrunning the Borges pipeline (all four features)...")
    pipeline = BorgesPipeline(universe.whois, universe.pdb, universe.web)
    result = pipeline.run()

    print("\nper-feature contributions (Table 3):")
    for row in result.feature_table():
        print(f"  {row['source']:>10}: {row['asns']:>7,} ASes -> {row['orgs']:>7,} orgs")

    usage = pipeline.client.total_usage
    print(
        f"\nLLM usage: {pipeline.client.request_count} completions, "
        f"{usage.total_tokens:,} tokens (≈${usage.cost_usd():.4f} at "
        "GPT-4o-mini prices)"
    )

    print("\nOrganization Factor (theta) — the Table 6 headline:")
    as2org = build_as2org_mapping(universe.whois)
    as2orgplus = build_as2orgplus_mapping(universe.whois, universe.pdb)
    baseline = org_factor_from_mapping(as2org)
    for name, mapping in (
        ("AS2Org", as2org),
        ("as2org+", as2orgplus),
        ("Borges", result.mapping),
    ):
        theta = org_factor_from_mapping(mapping)
        delta = 100.0 * (theta / baseline - 1.0)
        print(
            f"  {name:<8} theta={theta:.4f}  ({delta:+.2f}% vs AS2Org)  "
            f"{len(mapping):,} organizations"
        )
    print(
        "\npaper reference: AS2Org 0.3343, as2org+ 0.3467 (+3.7%), "
        "Borges 0.3576 (+7%)"
    )


if __name__ == "__main__":
    main()
