"""Publishing a mapping in CAIDA's as2org wire format.

The paper releases its framework so "the community can generate new
mappings"; the natural release artifact is the same JSON-lines format
CAIDA publishes AS2Org in — then every downstream tool that reads
CAIDA's file reads Borges's output unchanged.

Each output organization is one consolidated Borges cluster; its
``organizationId`` is a stable handle derived from the cluster's lowest
ASN, its name/country come from the richest underlying WHOIS record.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from ..whois import ASNDelegation, WhoisDataset, WhoisOrg
from ..whois.as2org_file import save_as2org_file
from .mapping import OrgMapping


def mapping_to_whois_dataset(
    mapping: OrgMapping, whois: WhoisDataset
) -> WhoisDataset:
    """Re-express a mapping as a WHOIS-shaped dataset (one org/cluster).

    *whois* supplies per-ASN names, countries and RIR sources; every ASN
    of the mapping must be delegated there (true by construction for
    pipeline outputs).
    """
    orgs = []
    delegations = []
    for cluster in mapping.clusters():
        members = sorted(cluster)
        representative = members[0]
        handle = f"BORGES-{representative}"
        source_org = whois.org_of(representative)
        orgs.append(
            WhoisOrg(
                org_id=handle,
                name=mapping.org_name_of(representative),
                country=source_org.country,
                source=source_org.source,
            )
        )
        for asn in members:
            delegation = whois.delegations[asn]
            delegations.append(
                ASNDelegation(
                    asn=asn,
                    org_id=handle,
                    name=delegation.name,
                    source=delegation.source,
                )
            )
    return WhoisDataset.build(orgs, delegations)


def save_mapping_as2org(
    mapping: OrgMapping,
    whois: WhoisDataset,
    path: Union[str, Path],
) -> None:
    """Write *mapping* as a CAIDA-format as2org file (gzip if ``.gz``)."""
    save_as2org_file(mapping_to_whois_dataset(mapping, whois), path)
