"""PeeringDB snapshot container and JSON (de)serialization.

A snapshot is the unit CAIDA archives daily: the full set of ``org`` and
``net`` objects at one instant.  The on-disk layout mirrors PeeringDB's
bulk-export shape::

    {"meta": {"generated": "...", "source": "..."},
     "org": {"data": [ {...}, ... ]},
     "net": {"data": [ {...}, ... ]}}
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Union

from ..errors import SchemaError, SnapshotError
from ..types import ASN, PdbOrgID
from .models import Network, Organization


@dataclass
class PDBSnapshot:
    """An in-memory PeeringDB snapshot with indexed lookups."""

    orgs: Dict[PdbOrgID, Organization] = field(default_factory=dict)
    nets: Dict[ASN, Network] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    # -- construction ---------------------------------------------------

    @classmethod
    def build(
        cls,
        orgs: Iterable[Organization],
        nets: Iterable[Network],
        meta: Optional[Dict[str, Any]] = None,
    ) -> "PDBSnapshot":
        """Index orgs and nets, validating referential integrity."""
        snapshot = cls(meta=dict(meta or {}))
        for org in orgs:
            if org.org_id in snapshot.orgs:
                raise SchemaError(f"duplicate org_id {org.org_id}")
            snapshot.orgs[org.org_id] = org.validate()
        for net in nets:
            if net.asn in snapshot.nets:
                raise SchemaError(f"duplicate net ASN {net.asn}")
            if net.org_id not in snapshot.orgs:
                raise SchemaError(
                    f"net AS{net.asn} references unknown org_id {net.org_id}"
                )
            snapshot.nets[net.asn] = net.validate()
        return snapshot

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nets)

    def __contains__(self, asn: int) -> bool:
        return asn in self.nets

    def networks(self) -> Iterator[Network]:
        """All net records in ascending-ASN order (deterministic)."""
        for asn in sorted(self.nets):
            yield self.nets[asn]

    def organizations(self) -> Iterator[Organization]:
        for org_id in sorted(self.orgs):
            yield self.orgs[org_id]

    def org_of(self, asn: ASN) -> Organization:
        try:
            net = self.nets[asn]
        except KeyError:
            raise SnapshotError(f"AS{asn} not in snapshot") from None
        return self.orgs[net.org_id]

    def nets_of_org(self, org_id: PdbOrgID) -> List[Network]:
        return [n for n in self.networks() if n.org_id == org_id]

    def org_members(self) -> Dict[PdbOrgID, List[ASN]]:
        """org_id → sorted list of member ASNs (the OID_P clustering)."""
        members: Dict[PdbOrgID, List[ASN]] = {}
        for net in self.networks():
            members.setdefault(net.org_id, []).append(net.asn)
        return members

    def nets_with_websites(self) -> List[Network]:
        return [n for n in self.networks() if n.has_website]

    def nets_with_text(self) -> List[Network]:
        """Nets with non-empty notes or aka (paper: 17,633 of 30,955)."""
        return [n for n in self.networks() if n.freeform_text]

    def stats(self) -> Dict[str, int]:
        """Headline counts used by Table 3 and sanity checks."""
        nets = list(self.networks())
        with_text = [n for n in nets if n.freeform_text]
        with_digits = [
            n for n in with_text if any(ch.isdigit() for ch in n.freeform_text)
        ]
        return {
            "orgs": len(self.orgs),
            "nets": len(nets),
            "nets_with_website": sum(1 for n in nets if n.has_website),
            "nets_with_text": len(with_text),
            "nets_with_numeric_text": len(with_digits),
            "nets_numeric_aka": sum(
                1 for n in nets if any(ch.isdigit() for ch in n.aka)
            ),
            "nets_numeric_notes": sum(
                1 for n in nets if any(ch.isdigit() for ch in n.notes)
            ),
        }

    def content_digest(self) -> str:
        """Stable content hash; anchors stage-artifact fingerprints.

        ``meta`` (generation timestamps, source labels) is excluded: two
        snapshots with identical org/net data are the same input.
        """
        from ..digest import stable_digest

        payload = self.to_json()
        payload.pop("meta", None)
        return stable_digest(payload)

    def restricted_to(self, asns: Iterable[ASN]) -> "PDBSnapshot":
        """Return a sub-snapshot containing only the given ASNs.

        Orgs without any surviving net are dropped; referential
        integrity is preserved by construction.  ``meta`` is carried
        over unchanged so a restriction of a snapshot is comparable to
        its source.
        """
        keep = set(asns)
        nets = [n for asn, n in self.nets.items() if asn in keep]
        org_ids = {n.org_id for n in nets}
        orgs = [o for oid, o in self.orgs.items() if oid in org_ids]
        return PDBSnapshot.build(orgs, nets, meta=dict(self.meta))

    # -- serialization ----------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        return {
            "meta": self.meta,
            "org": {"data": [o.to_json() for o in self.organizations()]},
            "net": {"data": [n.to_json() for n in self.networks()]},
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "PDBSnapshot":
        try:
            org_records = payload["org"]["data"]
            net_records = payload["net"]["data"]
        except (KeyError, TypeError) as exc:
            raise SnapshotError("snapshot JSON missing org/net data") from exc
        return cls.build(
            orgs=(Organization.from_json(r) for r in org_records),
            nets=(Network.from_json(r) for r in net_records),
            meta=payload.get("meta", {}),
        )


def save_snapshot(snapshot: PDBSnapshot, path: Union[str, Path]) -> None:
    """Write a snapshot as (optionally gzipped) JSON, inferred from suffix."""
    path = Path(path)
    payload = json.dumps(snapshot.to_json(), ensure_ascii=False, indent=1)
    if path.suffix == ".gz":
        with gzip.open(path, "wt", encoding="utf-8") as fh:
            fh.write(payload)
    else:
        path.write_text(payload, encoding="utf-8")


def load_snapshot(path: Union[str, Path]) -> PDBSnapshot:
    """Load a snapshot written by :func:`save_snapshot`."""
    path = Path(path)
    try:
        if path.suffix == ".gz":
            with gzip.open(path, "rt", encoding="utf-8") as fh:
                payload = json.load(fh)
        else:
            payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"cannot load snapshot {path}: {exc}") from exc
    return PDBSnapshot.from_json(payload)
