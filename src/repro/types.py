"""Common type aliases and small value helpers shared across the package.

The reproduction deals with a handful of ubiquitous identifiers — ASNs,
organization IDs from two registries, URLs, favicon hashes.  Keeping the
aliases in one place makes signatures self-documenting without inventing
wrapper classes for what are fundamentally ints and strings.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Set, Tuple

#: Autonomous System Number.  Always a positive integer; 32-bit ASNs are
#: allowed (RFC 6793), so the valid range is 1 .. 2**32 - 1.
ASN = int

#: WHOIS organization identifier (``OID_W`` in the paper), e.g. ``"@family-42"``
#: or a registry handle such as ``"LPL-154-ARIN"``.
WhoisOrgID = str

#: PeeringDB organization identifier (``OID_P``), an integer in the real
#: schema; kept as int here.
PdbOrgID = int

#: A cluster of sibling ASNs: the unit every inference feature produces.
Cluster = FrozenSet[ASN]

#: Mapping from ASN to the identifier of the organization that manages it.
AsnToOrg = Dict[ASN, str]

#: A normalized absolute URL string.
URL = str

#: Hex digest identifying favicon content.
FaviconHash = str

#: ISO 3166-1 alpha-2 country code, upper-case.
CountryCode = str

ASN_MIN = 1
ASN_MAX = 2**32 - 1

#: ASN values reserved by IANA that must never be emitted as siblings:
#: AS 0 (RFC 7607), AS 23456 (AS_TRANS), 64496-64511 / 65536-65551 (docs),
#: 64512-65534 / 4200000000-4294967294 (private), 65535 / 4294967295 (last).
RESERVED_ASN_RANGES: Tuple[Tuple[int, int], ...] = (
    (0, 0),
    (23456, 23456),
    (64496, 64511),
    (64512, 65534),
    (65535, 65535),
    (65536, 65551),
    (4200000000, 4294967294),
    (4294967295, 4294967295),
)


def is_valid_asn(value: int) -> bool:
    """Return True if *value* is a syntactically valid, assignable ASN."""
    if not isinstance(value, int) or isinstance(value, bool):
        return False
    if value < ASN_MIN or value > ASN_MAX:
        return False
    return not is_reserved_asn(value)


def is_reserved_asn(value: int) -> bool:
    """Return True if *value* falls into an IANA-reserved ASN range."""
    return any(lo <= value <= hi for lo, hi in RESERVED_ASN_RANGES)


def validate_asn(value: int) -> ASN:
    """Return *value* if it is a valid ASN, else raise ``ValueError``."""
    if not is_valid_asn(value):
        raise ValueError(f"not a valid assignable ASN: {value!r}")
    return value


def freeze_cluster(asns: Iterable[ASN]) -> Cluster:
    """Build a canonical (frozen) sibling cluster from any ASN iterable."""
    return frozenset(int(a) for a in asns)


def clusters_to_asn_map(clusters: Iterable[Cluster]) -> Dict[ASN, Cluster]:
    """Index clusters by member ASN.

    Raises ``ValueError`` if two clusters share an ASN — callers must merge
    overlapping clusters (see :mod:`repro.core.merge`) before indexing.
    """
    index: Dict[ASN, Cluster] = {}
    for cluster in clusters:
        for asn in cluster:
            if asn in index and index[asn] != cluster:
                raise ValueError(
                    f"ASN {asn} appears in two distinct clusters; merge first"
                )
            index[asn] = cluster
    return index


def partition_sizes(clusters: Iterable[Iterable[ASN]]) -> List[int]:
    """Return cluster sizes sorted in descending order (θ's input shape)."""
    return sorted((len(set(c)) for c in clusters), reverse=True)


def jaccard(a: Set[ASN], b: Set[ASN]) -> float:
    """Jaccard similarity of two ASN sets; 0.0 for two empty sets."""
    if not a and not b:
        return 0.0
    union = len(a | b)
    return len(a & b) / union if union else 0.0


def invert_asn_map(mapping: Mapping[ASN, str]) -> Dict[str, Set[ASN]]:
    """Invert an ASN→org mapping into org→set-of-ASNs."""
    inverted: Dict[str, Set[ASN]] = {}
    for asn, org in mapping.items():
        inverted.setdefault(org, set()).add(asn)
    return inverted
