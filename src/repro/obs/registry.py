"""Metrics primitives: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` owns every metric family created through it.
Library modules grab the process-global registry via :func:`get_registry`
so instrumentation costs one dict lookup; tests inject a fresh registry
with :func:`use_registry` (or :func:`set_registry`) to assert on exact
values without cross-test bleed.

The data model intentionally mirrors Prometheus: a *family* is a name +
type + help text; each unique label combination within a family is one
*child* holding the actual value.  :mod:`repro.obs.prometheus` renders a
registry in the text exposition format.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigError

LabelItems = Tuple[Tuple[str, str], ...]

#: Default latency buckets (seconds), Prometheus-style upper bounds.
#: The sub-millisecond bounds exist for in-memory read paths (the serve
#: index answers in single-digit microseconds); the pipeline-scale spans
#: land in the tail buckets as before.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
)

#: Lookup-scale buckets for the query service: O(1) dict hits sit around
#: 1–50 µs, so the default latency buckets would collapse every request
#: into their first bound and hide regressions an order of magnitude big.
DEFAULT_LOOKUP_BUCKETS: Tuple[float, ...] = (
    0.000001, 0.000005, 0.00001, 0.000025, 0.00005, 0.0001,
    0.00025, 0.0005, 0.001, 0.005, 0.025, 0.1,
)

#: Default small-integer buckets (redirect hops, retries, group sizes).
DEFAULT_COUNT_BUCKETS: Tuple[float, ...] = (0.0, 1.0, 2.0, 3.0, 5.0, 8.0, 16.0)


def _label_items(labels: Mapping[str, object]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def percentile(samples: Sequence[float], q: float) -> float:
    """The *q*-quantile (0..1) of raw samples by nearest-rank; 0.0 if empty.

    The one shared implementation — the load generator and any other
    raw-sample consumer use this; histogram consumers use
    :meth:`Histogram.quantile`, which estimates from bucket counts.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
    return ordered[rank]


class Counter:
    """A monotonically increasing value."""

    kind = "counter"

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down (sizes, rates, last-seen)."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with cumulative Prometheus semantics.

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket catches the
    rest.  ``bucket_counts`` holds *non*-cumulative per-bucket tallies —
    the renderer accumulates them on output.
    """

    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ConfigError("histogram needs at least one bucket bound")
        self.buckets = bounds
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def cumulative_counts(self) -> List[int]:
        """Counts per bucket as Prometheus renders them (cumulative)."""
        out: List[int] = []
        running = 0
        for n in self.bucket_counts:
            running += n
            out.append(running)
        return out

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile (0..1) from bucket counts.

        Linear interpolation within the bucket the target rank falls in
        (Prometheus' ``histogram_quantile`` construction).  Ranks landing
        in the ``+Inf`` bucket clamp to the top finite bound — the honest
        answer a fixed-bucket histogram can give.  0.0 when empty.
        """
        if self.count == 0:
            return 0.0
        q = min(1.0, max(0.0, q))
        target = q * self.count
        running = 0
        for i, bound in enumerate(self.buckets):
            previous = running
            running += self.bucket_counts[i]
            if running >= target:
                lower = self.buckets[i - 1] if i > 0 else 0.0
                in_bucket = self.bucket_counts[i]
                if in_bucket == 0:
                    return bound
                frac = (target - previous) / in_bucket
                return lower + (bound - lower) * frac
        return self.buckets[-1]

    def summary(self) -> Dict[str, float]:
        """``{count, mean, p50, p90, p99}`` — the shared latency rollup."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class _Family:
    """One metric name: its type, help text, and children by labels."""

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.children: "Dict[LabelItems, object]" = {}


class MetricsRegistry:
    """Thread-safe home for metric families.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    fixes the family's type, and re-registering a name under a different
    type raises — the same guard Prometheus client libraries enforce.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()

    def _child(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Mapping[str, object],
        factory,
    ):
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text)
                self._families[name] = family
            elif family.kind != kind:
                raise ConfigError(
                    f"metric {name!r} already registered as {family.kind}, "
                    f"not {kind}"
                )
            key = _label_items(labels)
            child = family.children.get(key)
            if child is None:
                child = factory()
                family.children[key] = child
            return child

    def counter(self, name: str, help: str = "", **labels: object) -> Counter:
        return self._child(name, "counter", help, labels, Counter)

    def gauge(self, name: str, help: str = "", **labels: object) -> Gauge:
        return self._child(name, "gauge", help, labels, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        **labels: object,
    ) -> Histogram:
        return self._child(
            name, "histogram", help, labels, lambda: Histogram(buckets)
        )

    def families(self) -> List[_Family]:
        with self._lock:
            return sorted(self._families.values(), key=lambda f: f.name)

    def snapshot(self) -> Dict[str, object]:
        """A JSON-serialisable dump of every metric (manifest format)."""
        out: Dict[str, object] = {}
        for family in self.families():
            series = []
            for key, child in sorted(family.children.items()):
                entry: Dict[str, object] = {"labels": dict(key)}
                if isinstance(child, Histogram):
                    entry.update(
                        sum=child.sum,
                        count=child.count,
                        mean=child.mean,
                        buckets=[
                            {"le": bound, "count": count}
                            for bound, count in zip(
                                list(child.buckets) + ["+Inf"],
                                child.cumulative_counts(),
                            )
                        ],
                    )
                else:
                    entry["value"] = child.value
                series.append(entry)
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "series": series,
            }
        return out

    def value(self, name: str, **labels: object) -> float:
        """Convenience for tests: a counter/gauge child's current value."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        child = family.children.get(_label_items(labels))
        if child is None or isinstance(child, Histogram):
            return 0.0
        return child.value

    def reset(self) -> None:
        with self._lock:
            self._families.clear()


# -- process-global default ----------------------------------------------------

_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry instrumented modules default to."""
    return _GLOBAL_REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the global registry; returns the previous one."""
    global _GLOBAL_REGISTRY
    previous = _GLOBAL_REGISTRY
    _GLOBAL_REGISTRY = registry
    return previous


@contextmanager
def use_registry(registry: Optional[MetricsRegistry] = None) -> Iterator[MetricsRegistry]:
    """Temporarily install *registry* (default: a fresh one) as global."""
    registry = registry or MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
