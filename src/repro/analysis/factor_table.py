"""Table 6 and Figure 7: Organization Factor across feature combinations.

Table 6 reports θ for AS2Org, as2org+, and every subset of Borges's four
features; Figure 7 illustrates θ's construction via cumulative curves.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..baselines import build_as2org_mapping, build_as2orgplus_mapping
from ..config import BorgesConfig, all_feature_combos, feature_combo_label
from ..core.artifacts import ArtifactStore
from ..core.pipeline import BorgesPipeline
from ..llm.cache import ResponseCache
from ..llm.simulated import make_default_client
from ..metrics.org_factor import (
    cumulative_curve,
    org_factor_from_mapping,
    singleton_curve,
)
from ..peeringdb import PDBSnapshot
from ..web.simweb import SimulatedWeb
from ..whois import WhoisDataset


def factor_combination_table(
    whois: WhoisDataset,
    pdb: PDBSnapshot,
    web: SimulatedWeb,
    config: Optional[BorgesConfig] = None,
    normalization: str = "normalized",
    client=None,
    artifact_store: Optional[ArtifactStore] = None,
) -> List[Dict[str, object]]:
    """θ for the baselines and all 16 feature subsets (Table 6).

    A shared artifact store makes the sweep cheap at the stage level:
    feature-stage fingerprints don't depend on which *other* features are
    enabled, so the shared scrape and NER extraction run exactly once
    across all 16 combinations and every later combo reuses the cached
    artifacts.  A shared LLM cache backs that up one level down (the
    notes/aka and favicon prompts are identical across combinations).
    """
    base_config = (config or BorgesConfig()).validate()
    if client is None:
        client = make_default_client(base_config.llm, cache=ResponseCache())
    if artifact_store is None:
        artifact_store = ArtifactStore()

    rows: List[Dict[str, object]] = []
    as2org = build_as2org_mapping(whois)
    baseline_theta = org_factor_from_mapping(as2org, normalization)
    rows.append(
        {
            "method": "AS2Org (baseline)",
            "theta": baseline_theta,
            "vs_baseline_pct": 0.0,
        }
    )
    as2orgplus = build_as2orgplus_mapping(whois, pdb)
    plus_theta = org_factor_from_mapping(as2orgplus, normalization)
    rows.append(
        {
            "method": "as2org+",
            "theta": plus_theta,
            "vs_baseline_pct": 100.0 * (plus_theta / baseline_theta - 1.0),
        }
    )
    for combo in all_feature_combos():
        if not combo:
            continue  # the empty subset is AS2Org itself
        combo_config = base_config.with_features(*combo)
        pipeline = BorgesPipeline(
            whois, pdb, web, config=combo_config, client=client,
            artifact_store=artifact_store,
        )
        mapping = pipeline.run().mapping
        theta = org_factor_from_mapping(mapping, normalization)
        rows.append(
            {
                "method": feature_combo_label(combo),
                "theta": theta,
                "vs_baseline_pct": 100.0 * (theta / baseline_theta - 1.0),
            }
        )
    return rows


def theta_curves(
    whois: WhoisDataset,
    as2org_mapping=None,
) -> Dict[str, Tuple[List[int], List[int]]]:
    """The two Fig. 7 series: all-singletons vs the AS2Org clustering."""
    mapping = as2org_mapping or build_as2org_mapping(whois)
    n = mapping.universe_size
    return {
        "singletons": singleton_curve(n),
        "as2org": cumulative_curve(mapping.sizes(), pad_to=n),
    }
