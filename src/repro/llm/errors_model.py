"""Calibrated, deterministic error injection for the simulated LLM.

A perfect-oracle simulator would make the validation tables trivially
100% and distort every downstream number.  Real GPT-4o-mini errs at known
rates (Table 4: accuracy 0.947; Table 5: 0.986), so the simulated backend
passes its engine outputs through this error model.

Errors must be *deterministic* (the paper runs at temperature 0) and
*stable across runs*, so each decision is keyed by a hash of the seed and
the item's identity rather than by a shared RNG stream whose state would
depend on call order.
"""

from __future__ import annotations

from typing import Tuple

# Canonical home of the order-independent seeded hash; the resilience
# layer's fault injector draws from the same primitive.
from ..resilience.seeding import stable_choice_index, stable_unit

__all__ = ["ErrorInjector", "stable_choice_index", "stable_unit"]


class ErrorInjector:
    """Decides, per item, whether the simulated model slips.

    ``should(kind, *identity)`` answers one yes/no question at the rate
    configured for *kind*.  Distinct *kind* strings draw independent
    deterministic coins for the same item.
    """

    def __init__(self, seed: int, rates: dict) -> None:
        self._seed = seed
        self._rates = dict(rates)

    def rate(self, kind: str) -> float:
        return self._rates.get(kind, 0.0)

    def should(self, kind: str, *identity: object) -> bool:
        rate = self.rate(kind)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return stable_unit(self._seed, kind, *identity) < rate

    def pick(self, kind: str, options: Tuple, *identity: object):
        """Deterministically pick one of *options* for this item."""
        index = stable_choice_index(self._seed, len(options), kind, *identity)
        return options[index]
