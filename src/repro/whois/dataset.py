"""In-memory WHOIS dataset: delegations indexed both ways.

This is the compulsory substrate the paper leans on: the Organization
Factor graph's vertex set is *all networks appearing in WHOIS records*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..errors import SchemaError, UnknownASNError
from ..types import ASN, WhoisOrgID
from .models import ASNDelegation, WhoisOrg


@dataclass
class WhoisDataset:
    """All WHOIS organizations and ASN delegations at one snapshot."""

    orgs: Dict[WhoisOrgID, WhoisOrg] = field(default_factory=dict)
    delegations: Dict[ASN, ASNDelegation] = field(default_factory=dict)
    # Cached org_id→members index, keyed by the delegation count it was
    # built from so a dataset assembled incrementally (more delegations
    # added after a lookup) invalidates instead of serving a stale index.
    _members_cache: Optional[Tuple[int, Dict[WhoisOrgID, List[ASN]]]] = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def build(
        cls,
        orgs: Iterable[WhoisOrg],
        delegations: Iterable[ASNDelegation],
    ) -> "WhoisDataset":
        dataset = cls()
        for org in orgs:
            if org.org_id in dataset.orgs:
                raise SchemaError(f"duplicate WHOIS org_id {org.org_id}")
            dataset.orgs[org.org_id] = org.validate()
        for delegation in delegations:
            if delegation.asn in dataset.delegations:
                raise SchemaError(f"duplicate delegation for AS{delegation.asn}")
            if delegation.org_id not in dataset.orgs:
                raise SchemaError(
                    f"AS{delegation.asn} delegated to unknown org "
                    f"{delegation.org_id!r}"
                )
            dataset.delegations[delegation.asn] = delegation.validate()
        return dataset

    def __len__(self) -> int:
        return len(self.delegations)

    def __contains__(self, asn: int) -> bool:
        return asn in self.delegations

    def asns(self) -> List[ASN]:
        """All delegated ASNs in ascending order (the θ vertex set)."""
        return sorted(self.delegations)

    def org_id_of(self, asn: ASN) -> WhoisOrgID:
        try:
            return self.delegations[asn].org_id
        except KeyError:
            raise UnknownASNError(asn) from None

    def org_of(self, asn: ASN) -> WhoisOrg:
        return self.orgs[self.org_id_of(asn)]

    def org_name_of(self, asn: ASN) -> str:
        return self.org_of(asn).name

    def _members_index(self) -> Dict[WhoisOrgID, List[ASN]]:
        cache = self._members_cache
        if cache is None or cache[0] != len(self.delegations):
            index: Dict[WhoisOrgID, List[ASN]] = {}
            for asn in self.asns():
                index.setdefault(self.delegations[asn].org_id, []).append(asn)
            self._members_cache = cache = (len(self.delegations), index)
        return cache[1]

    def members(self) -> Dict[WhoisOrgID, List[ASN]]:
        """org_id → sorted member ASNs (the OID_W clustering / AS2Org)."""
        return {k: list(v) for k, v in self._members_index().items()}

    def siblings_of(self, asn: ASN) -> Set[ASN]:
        """All ASNs sharing *asn*'s WHOIS org (including *asn* itself)."""
        return set(self._members_index()[self.org_id_of(asn)])

    def stats(self) -> Dict[str, float]:
        members = self.members()
        sizes = [len(v) for v in members.values()]
        return {
            "asns": float(len(self.delegations)),
            "orgs": float(len(members)),
            "mean_asns_per_org": (sum(sizes) / len(sizes)) if sizes else 0.0,
            "max_asns_per_org": float(max(sizes)) if sizes else 0.0,
        }

    def content_digest(self) -> str:
        """Stable content hash; anchors stage-artifact fingerprints."""
        from ..digest import stable_digest

        return stable_digest(
            {
                "orgs": [
                    self.orgs[org_id].to_json() for org_id in sorted(self.orgs)
                ],
                "delegations": [
                    self.delegations[asn].to_json()
                    for asn in sorted(self.delegations)
                ],
            }
        )

    def restricted_to(self, asns: Iterable[ASN]) -> "WhoisDataset":
        """Return a sub-dataset containing only the given ASNs."""
        keep = set(asns)
        delegations = [
            d for asn, d in self.delegations.items() if asn in keep
        ]
        org_ids = {d.org_id for d in delegations}
        orgs = [o for oid, o in self.orgs.items() if oid in org_ids]
        return WhoisDataset.build(orgs, delegations)
