"""Unit tests for the PeeringDB substrate: models, snapshot, JSON I/O."""

import pytest

from repro.errors import SchemaError, SnapshotError
from repro.peeringdb import (
    Network,
    Organization,
    PDBSnapshot,
    load_snapshot,
    save_snapshot,
)


def make_snapshot():
    orgs = [
        Organization(org_id=1, name="Lumen Technologies", country="US"),
        Organization(org_id=2, name="Acme ISP", country="AR"),
    ]
    nets = [
        Network(asn=3356, name="Lumen", org_id=1, website="https://www.lumen.com/"),
        Network(asn=209, name="CenturyLink", org_id=1, notes="part of Lumen AS3356"),
        Network(asn=70001, name="Acme", org_id=2, aka="ACME (AS65553)"),
    ]
    return PDBSnapshot.build(orgs, nets, meta={"generated": "test"})


class TestModels:
    def test_network_validates_asn(self):
        with pytest.raises(SchemaError):
            Network(asn=0, name="x", org_id=1).validate()

    def test_network_requires_name(self):
        with pytest.raises(SchemaError):
            Network(asn=1, name="", org_id=1).validate()

    def test_network_requires_positive_org(self):
        with pytest.raises(SchemaError):
            Network(asn=1, name="x", org_id=0).validate()

    def test_org_round_trip(self):
        org = Organization(org_id=7, name="X", website="http://x.net", country="DE")
        assert Organization.from_json(org.to_json()) == org

    def test_org_preserves_extra_fields(self):
        record = {"id": 1, "name": "X", "status": "ok"}
        org = Organization.from_json(record)
        assert org.extra == {"status": "ok"}
        assert org.to_json()["status"] == "ok"

    def test_net_round_trip(self):
        net = Network(
            asn=3356, name="Lumen", org_id=1, aka="Level3",
            notes="formerly Level 3", website="https://www.lumen.com/",
            info_type="NSP",
        )
        assert Network.from_json(net.to_json()) == net

    def test_net_freeform_text_concatenates(self):
        net = Network(asn=1, name="x", org_id=1, aka="alias", notes="note")
        assert "alias" in net.freeform_text
        assert "note" in net.freeform_text

    def test_net_text_field_selector(self):
        net = Network(asn=1, name="x", org_id=1, aka="a", notes="n")
        assert net.text_field("aka") == "a"
        assert net.text_field("notes") == "n"
        with pytest.raises(ValueError):
            net.text_field("bogus")

    def test_has_website_ignores_whitespace(self):
        assert not Network(asn=1, name="x", org_id=1, website="  ").has_website

    def test_bad_json_raises_schema_error(self):
        with pytest.raises(SchemaError):
            Network.from_json({"name": "missing asn"})


class TestSnapshot:
    def test_build_indexes_both_ways(self):
        snapshot = make_snapshot()
        assert len(snapshot) == 3
        assert 3356 in snapshot
        assert snapshot.org_of(209).name == "Lumen Technologies"

    def test_build_rejects_duplicate_asn(self):
        orgs = [Organization(org_id=1, name="X")]
        nets = [
            Network(asn=1, name="a", org_id=1),
            Network(asn=1, name="b", org_id=1),
        ]
        with pytest.raises(SchemaError):
            PDBSnapshot.build(orgs, nets)

    def test_build_rejects_dangling_org_reference(self):
        with pytest.raises(SchemaError):
            PDBSnapshot.build([], [Network(asn=1, name="a", org_id=9)])

    def test_org_members_groups_by_org(self):
        members = make_snapshot().org_members()
        assert members[1] == [209, 3356]

    def test_networks_iterates_in_asn_order(self):
        asns = [n.asn for n in make_snapshot().networks()]
        assert asns == sorted(asns)

    def test_stats_counts(self):
        stats = make_snapshot().stats()
        assert stats["nets"] == 3
        assert stats["orgs"] == 2
        assert stats["nets_with_website"] == 1
        assert stats["nets_with_text"] == 2
        assert stats["nets_with_numeric_text"] == 2

    def test_org_of_unknown_asn_raises(self):
        with pytest.raises(SnapshotError):
            make_snapshot().org_of(99999)

    def test_nets_with_text(self):
        assert {n.asn for n in make_snapshot().nets_with_text()} == {209, 70001}


class TestSnapshotIO:
    def test_json_round_trip(self, tmp_path):
        snapshot = make_snapshot()
        path = tmp_path / "snap.json"
        save_snapshot(snapshot, path)
        loaded = load_snapshot(path)
        assert loaded.meta == snapshot.meta
        assert sorted(loaded.nets) == sorted(snapshot.nets)
        assert loaded.nets[209].notes == snapshot.nets[209].notes

    def test_gzip_round_trip(self, tmp_path):
        snapshot = make_snapshot()
        path = tmp_path / "snap.json.gz"
        save_snapshot(snapshot, path)
        assert load_snapshot(path).stats() == snapshot.stats()

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(SnapshotError):
            load_snapshot(tmp_path / "absent.json")

    def test_load_garbage_raises(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_load_wrong_shape_raises(self, tmp_path):
        path = tmp_path / "wrong.json"
        path.write_text('{"nets": []}')
        with pytest.raises(SnapshotError):
            load_snapshot(path)
