"""Tests for the simulated model zoo and the model-comparison analysis."""

import pytest

from repro.analysis.model_comparison import model_comparison_table
from repro.config import BorgesConfig, LLMConfig
from repro.core.ner import NERModule
from repro.errors import ConfigError
from repro.llm.model_zoo import MODEL_ZOO, get_profile, zoo_names
from repro.llm.simulated import make_default_client
from repro.analysis import validate_extraction


class TestZoo:
    def test_papers_model_is_the_anchor(self):
        anchor = get_profile("gpt-4o-mini-sim")
        defaults = LLMConfig()
        assert anchor.extraction_error_rate == defaults.extraction_error_rate
        assert anchor.classifier_error_rate == defaults.classifier_error_rate
        assert anchor.cost_multiplier == 1.0

    def test_five_models(self):
        assert len(zoo_names()) == 5

    def test_unknown_model_raises(self):
        with pytest.raises(ConfigError):
            get_profile("gpt-17-sim")

    def test_llm_config_carries_profile(self):
        config = get_profile("llama-3-8b-sim").llm_config()
        config.validate()
        assert config.model == "llama-3-8b-sim"
        assert config.extraction_error_rate == 0.09

    def test_profiles_ordered_by_quality(self):
        # The reasoning tier must be strictly better at extraction than
        # the small open-weights tier.
        assert (
            get_profile("deepseek-r1-sim").extraction_error_rate
            < get_profile("llama-3-8b-sim").extraction_error_rate
        )


class TestQualityTracksProfile:
    @pytest.fixture(scope="class")
    def accuracies(self, universe):
        values = {}
        for name in ("deepseek-r1-sim", "gpt-4o-mini-sim", "llama-3-8b-sim"):
            llm = get_profile(name).llm_config()
            ner = NERModule(make_default_client(llm), BorgesConfig(llm=llm))
            validation = validate_extraction(
                ner, universe.pdb, universe.annotations
            )
            values[name] = validation.counts.accuracy
        return values

    def test_better_model_better_extraction(self, accuracies):
        # On the small test universe the sample is coarse, so ties can
        # occur between adjacent tiers; the ordering must never invert
        # (the full-scale bench asserts strict separation).
        assert accuracies["deepseek-r1-sim"] >= accuracies["gpt-4o-mini-sim"]
        assert accuracies["gpt-4o-mini-sim"] >= accuracies["llama-3-8b-sim"]

    def test_all_models_usable(self, accuracies):
        # Even the noisiest tier stays far above coin-flipping.
        assert min(accuracies.values()) > 0.75


class TestComparisonTable:
    def test_table_shape(self, universe, pipeline, borges_result):
        from repro.experiments.runner import ExperimentContext
        from repro.baselines import (
            build_as2org_mapping,
            build_as2orgplus_mapping,
        )

        context = ExperimentContext(
            universe=universe,
            pipeline=pipeline,
            result=borges_result,
            as2org=build_as2org_mapping(universe.whois),
            as2orgplus=build_as2orgplus_mapping(universe.whois, universe.pdb),
        )
        rows = model_comparison_table(context)
        assert len(rows) == len(MODEL_ZOO)
        for row in rows:
            assert 0.0 < row["extract_accuracy"] <= 1.0
            assert 0.0 < row["theta"] < 1.0
            assert row["pair_precision"] > 0.8
