#!/usr/bin/env python
"""CI warm-cache check: run the pipeline twice against one artifact cache.

The second run must be served (almost) entirely from the content-addressed
store — ≥90 % of stages cached — while reproducing the exact same θ and a
byte-identical mapping.  Run from the repository root::

    python scripts/warm_cache_check.py

Exits non-zero (with a diagnostic) on any violation, so the CI job fails
loudly when an artifact fingerprint stops being stable.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
MIN_CACHED_FRACTION = 0.90
THETA_RE = re.compile(r"organization factor \(theta\): ([0-9.]+)")


def run_pipeline(label: str, tmp: Path, cache: Path) -> dict:
    mapping = tmp / f"mapping-{label}.json"
    manifest = tmp / f"manifest-{label}.json"
    cmd = [
        sys.executable, "-m", "repro.cli",
        "--telemetry-out", str(manifest),
        "run",
        "--artifact-cache", str(cache),
        "--save-mapping", str(mapping),
    ]
    env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
    start = time.perf_counter()
    proc = subprocess.run(
        cmd, cwd=ROOT, env=env, check=True,
        stdout=subprocess.PIPE, text=True,
    )
    elapsed = time.perf_counter() - start
    match = THETA_RE.search(proc.stdout)
    if match is None:
        sys.exit(f"{label} run printed no theta:\n{proc.stdout}")
    stages = json.loads(manifest.read_text(encoding="utf-8"))["stages"]
    return {
        "label": label,
        "seconds": elapsed,
        "theta": match.group(1),
        "mapping_bytes": mapping.read_bytes(),
        "stages": stages,
    }


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="borges-warm-check-"))
    cache = tmp / "artifact-cache"
    cold = run_pipeline("cold", tmp, cache)
    warm = run_pipeline("warm", tmp, cache)

    failures = []
    cached = sum(1 for s in warm["stages"] if s["status"] == "cached")
    fraction = cached / len(warm["stages"]) if warm["stages"] else 0.0
    if fraction < MIN_CACHED_FRACTION:
        statuses = {s["stage"]: s["status"] for s in warm["stages"]}
        failures.append(
            f"warm run only {cached}/{len(warm['stages'])} stages cached "
            f"({100 * fraction:.0f}% < {100 * MIN_CACHED_FRACTION:.0f}%): "
            f"{statuses}"
        )
    if warm["theta"] != cold["theta"]:
        failures.append(
            f"theta drifted across the cache: cold {cold['theta']} "
            f"vs warm {warm['theta']}"
        )
    if warm["mapping_bytes"] != cold["mapping_bytes"]:
        failures.append("warm mapping is not byte-identical to the cold one")

    print(
        f"cold run: {cold['seconds']:.2f}s, warm run: {warm['seconds']:.2f}s "
        f"({cached}/{len(warm['stages'])} stages cached, theta {warm['theta']})"
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("warm-cache check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
