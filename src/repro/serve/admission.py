"""Overload protection for the serve tier: a bounded admission gate.

``ThreadingHTTPServer`` happily spawns one thread per connection, so
without a gate a traffic spike turns into unbounded concurrency, every
request slows down together, and *nothing* finishes within its deadline
— the classic congestion-collapse failure mode.  The
:class:`AdmissionController` inverts that: at most ``max_inflight``
requests execute at once, at most ``max_queue`` wait behind them, and
every waiter carries a per-endpoint deadline.

The three outcomes map directly onto HTTP semantics:

* **admitted** — a slot was free (or became free in time); the caller
  runs with a :class:`Ticket` recording its remaining budget.
* **shed** (:class:`~repro.errors.OverloadedError` → ``429 Retry-After``)
  — the queue is already at its depth limit.  Rejecting instantly is the
  point: the client learns to back off while the answer is still cheap.
* **deadline exceeded** (:class:`~repro.errors.DeadlineExceededError` →
  ``503``) — the request queued but its time budget ran out before a
  slot freed.  Serving it late would waste a slot on an answer the
  client has already abandoned.

Every transition is metered (shed / deadline / admitted counters, gate
occupancy gauges), so ``/metrics`` shows saturation as it happens.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..errors import ConfigError, DeadlineExceededError, OverloadedError
from ..obs import get_registry
from ..obs.log import get_event_log

#: Endpoint deadline used when :class:`AdmissionLimits` names no override.
DEFAULT_DEADLINE_SECONDS = 1.0


@dataclass(frozen=True)
class AdmissionLimits:
    """The gate's sizing knobs.

    ``max_inflight`` bounds concurrent execution, ``max_queue`` bounds
    waiters; their sum is the hard cap on requests the process holds at
    once.  ``deadlines`` overrides the time budget per endpoint (batch
    lookups legitimately take longer than single-ASN hits).
    """

    max_inflight: int = 64
    max_queue: int = 128
    default_deadline: float = DEFAULT_DEADLINE_SECONDS
    deadlines: Mapping[str, float] = field(default_factory=dict)

    def validate(self) -> "AdmissionLimits":
        if self.max_inflight < 1:
            raise ConfigError(
                f"max_inflight must be >= 1: {self.max_inflight}"
            )
        if self.max_queue < 0:
            raise ConfigError(f"max_queue must be >= 0: {self.max_queue}")
        if self.default_deadline <= 0:
            raise ConfigError(
                f"default_deadline must be positive: {self.default_deadline}"
            )
        for endpoint, deadline in self.deadlines.items():
            if deadline <= 0:
                raise ConfigError(
                    f"deadline for {endpoint!r} must be positive: {deadline}"
                )
        return self

    def deadline_for(self, endpoint: str) -> float:
        return self.deadlines.get(endpoint, self.default_deadline)


class Ticket:
    """One admitted request's slot; release by exiting the ``with`` block."""

    __slots__ = ("_controller", "endpoint", "deadline_at", "queued_for")

    def __init__(
        self,
        controller: "AdmissionController",
        endpoint: str,
        deadline_at: float,
        queued_for: float,
    ) -> None:
        self._controller = controller
        self.endpoint = endpoint
        #: Absolute monotonic time the request must finish by.
        self.deadline_at = deadline_at
        #: Seconds this request spent waiting for its slot.
        self.queued_for = queued_for

    def remaining(self) -> float:
        """Seconds of budget left (never negative)."""
        return max(0.0, self.deadline_at - time.monotonic())

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.deadline_at

    def __enter__(self) -> "Ticket":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._controller._release()


class AdmissionController:
    """Bounded concurrency gate with queue-depth limit and deadlines.

    Thread-safe; one instance guards one :class:`QueryService`.  The
    fast path (a free slot) is a lock acquire, two integer updates and a
    gauge set — cheap enough to sit in front of microsecond lookups.
    """

    def __init__(
        self,
        limits: Optional[AdmissionLimits] = None,
        registry=None,
    ) -> None:
        self.limits = (limits or AdmissionLimits()).validate()
        self._registry = registry or get_registry()
        self._lock = threading.Lock()
        self._slot_freed = threading.Condition(self._lock)
        self._inflight = 0
        self._queued = 0
        self._admitted_total = self._registry.counter(
            "serve_admission_admitted_total", "Requests admitted by the gate"
        )
        self._shed_total = self._registry.counter(
            "serve_admission_shed_total",
            "Requests shed with 429 (queue at depth limit)",
        )
        self._deadline_total = self._registry.counter(
            "serve_admission_deadline_exceeded_total",
            "Requests whose deadline expired while queued (503)",
        )
        self._queued_total = self._registry.counter(
            "serve_admission_queued_total",
            "Requests that waited for a slot before admission",
        )
        self._inflight_gauge = self._registry.gauge(
            "serve_admission_inflight", "Requests currently executing"
        )
        self._queue_gauge = self._registry.gauge(
            "serve_admission_queue_depth", "Requests currently queued"
        )

    # -- the gate ----------------------------------------------------------

    def admit(self, endpoint: str) -> Ticket:
        """Take a slot for *endpoint* or raise the applicable rejection.

        Raises :class:`OverloadedError` when the queue is full (the
        caller should answer 429 with ``retry_after``) and
        :class:`DeadlineExceededError` when the endpoint's deadline
        passes while queued (503).
        """
        limits = self.limits
        deadline_budget = limits.deadline_for(endpoint)
        deadline_at = time.monotonic() + deadline_budget
        with self._slot_freed:
            # Fast path only when nobody is waiting: letting newcomers
            # barge past queued requests starves the queue and turns the
            # admitted tail latency into a lottery.
            if self._queued == 0 and self._inflight < limits.max_inflight:
                self._inflight += 1
                self._inflight_gauge.set(self._inflight)
                self._admitted_total.inc()
                return Ticket(self, endpoint, deadline_at, queued_for=0.0)
            if self._queued >= limits.max_queue:
                self._shed_total.inc()
                get_event_log().emit(
                    "admission.shed",
                    severity="warning",
                    endpoint=endpoint,
                    inflight=self._inflight,
                    queued=self._queued,
                )
                raise OverloadedError(
                    endpoint,
                    retry_after=self._retry_after(),
                    inflight=self._inflight,
                    queued=self._queued,
                )
            # Queue up and wait for a slot, bounded by the deadline.
            self._queued += 1
            self._queue_gauge.set(self._queued)
            self._queued_total.inc()
            waited_from = time.monotonic()
            try:
                while self._inflight >= limits.max_inflight:
                    remaining = deadline_at - time.monotonic()
                    if remaining <= 0:
                        self._deadline_total.inc()
                        get_event_log().emit(
                            "admission.deadline",
                            severity="warning",
                            endpoint=endpoint,
                            deadline_seconds=deadline_budget,
                        )
                        raise DeadlineExceededError(endpoint, deadline_budget)
                    self._slot_freed.wait(remaining)
            finally:
                self._queued -= 1
                self._queue_gauge.set(self._queued)
            self._inflight += 1
            self._inflight_gauge.set(self._inflight)
            self._admitted_total.inc()
            return Ticket(
                self,
                endpoint,
                deadline_at,
                queued_for=time.monotonic() - waited_from,
            )

    def _release(self) -> None:
        with self._slot_freed:
            self._inflight -= 1
            self._inflight_gauge.set(self._inflight)
            self._slot_freed.notify()

    def _retry_after(self) -> float:
        """Client backoff hint: roughly one drained queue's worth of time.

        With the gate saturated, the queue drains one request per
        service completion; a full deadline is a conservative stand-in
        for that drain time without tracking per-request durations.
        """
        return self.limits.default_deadline

    # -- accounting --------------------------------------------------------

    def occupancy(self) -> Dict[str, object]:
        """Gate state for ``/healthz`` and service stats."""
        with self._lock:
            inflight = self._inflight
            queued = self._queued
        return {
            "inflight": inflight,
            "queued": queued,
            "max_inflight": self.limits.max_inflight,
            "max_queue": self.limits.max_queue,
            "shed": self._shed_total.value,
            "deadline_exceeded": self._deadline_total.value,
            "admitted": self._admitted_total.value,
        }
