"""Unit tests for the chat client: messages, caching, retries, usage."""

import pytest

from repro.config import LLMConfig
from repro.errors import LLMBackendError
from repro.llm.cache import ResponseCache
from repro.llm.client import (
    ChatBackend,
    ChatClient,
    ChatMessage,
    ImageContent,
    TextContent,
)
from repro.llm.usage import TokenUsage, estimate_tokens


class EchoBackend(ChatBackend):
    name = "echo"

    def __init__(self):
        self.calls = 0

    def complete(self, messages, config):
        self.calls += 1
        return "echo: " + messages[-1].text


class FlakyBackend(ChatBackend):
    name = "flaky"

    def __init__(self, fail_times):
        self.fail_times = fail_times
        self.calls = 0

    def complete(self, messages, config):
        self.calls += 1
        if self.calls <= self.fail_times:
            raise LLMBackendError("simulated rate limit")
        return "recovered"


class TestMessages:
    def test_text_property_string_content(self):
        assert ChatMessage(role="user", content="hello").text == "hello"

    def test_text_property_block_content(self):
        message = ChatMessage(
            role="user",
            content=[TextContent(text="a"), TextContent(text="b")],
        )
        assert message.text == "a\nb"

    def test_images_extracted(self):
        image = ImageContent(data=b"ICO:x")
        message = ChatMessage(role="user", content=[TextContent(text="t"), image])
        assert message.images == [image]

    def test_image_data_url_round_trip(self):
        image = ImageContent(data=b"ICO:claro", media_type="image/png")
        recovered = ImageContent.from_data_url(image.data_url)
        assert recovered.data == b"ICO:claro"
        assert recovered.media_type == "image/png"

    def test_cache_key_distinguishes_images(self):
        a = ChatMessage(role="user", content=[ImageContent(data=b"1")])
        b = ChatMessage(role="user", content=[ImageContent(data=b"2")])
        assert a.cache_key() != b.cache_key()


class TestClient:
    def test_ask_round_trip(self):
        client = ChatClient(EchoBackend())
        assert client.ask("ping") == "echo: ping"

    def test_deterministic_requests_cached(self):
        backend = EchoBackend()
        client = ChatClient(backend)
        first = client.chat([ChatMessage(role="user", content="x")])
        second = client.chat([ChatMessage(role="user", content="x")])
        assert backend.calls == 1
        assert not first.cached
        assert second.cached
        assert second.content == first.content

    def test_nonzero_temperature_disables_cache(self):
        backend = EchoBackend()
        client = ChatClient(backend, config=LLMConfig(temperature=0.7))
        client.ask("x")
        client.ask("x")
        assert backend.calls == 2

    def test_retries_then_succeeds(self):
        backend = FlakyBackend(fail_times=2)
        client = ChatClient(backend, max_retries=3)
        assert client.ask("x") == "recovered"
        assert backend.calls == 3

    def test_retries_exhausted_raises(self):
        backend = FlakyBackend(fail_times=10)
        client = ChatClient(backend, max_retries=2)
        with pytest.raises(LLMBackendError):
            client.ask("x")

    def test_usage_accumulates(self):
        client = ChatClient(EchoBackend())
        client.ask("a question of some length")
        client.ask("another question")
        assert client.request_count == 2
        assert client.total_usage.prompt_tokens > 0
        assert client.total_usage.completion_tokens > 0

    def test_cached_responses_cost_nothing(self):
        client = ChatClient(EchoBackend())
        client.ask("x")
        usage_after_first = client.total_usage.total_tokens
        client.ask("x")
        assert client.total_usage.total_tokens == usage_after_first

    def test_shared_cache_across_clients(self):
        cache = ResponseCache()
        backend = EchoBackend()
        ChatClient(backend, cache=cache).ask("x")
        ChatClient(backend, cache=cache).ask("x")
        assert backend.calls == 1


class TestUsage:
    def test_estimate_tokens_empty(self):
        assert estimate_tokens("") == 0

    def test_estimate_tokens_minimum_one(self):
        assert estimate_tokens("a") == 1

    def test_estimate_scales_with_length(self):
        assert estimate_tokens("word " * 100) > estimate_tokens("word")

    def test_usage_addition(self):
        total = TokenUsage(10, 5) + TokenUsage(1, 2)
        assert total.prompt_tokens == 11
        assert total.completion_tokens == 7
        assert total.total_tokens == 18

    def test_cost_usd(self):
        usage = TokenUsage(prompt_tokens=1_000_000, completion_tokens=0)
        assert usage.cost_usd() == pytest.approx(0.15)


class TestCache:
    def test_put_get(self):
        cache = ResponseCache()
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert cache.hits == 1

    def test_miss_counted(self):
        cache = ResponseCache()
        assert cache.get("nothing") is None
        assert cache.misses == 1

    def test_eviction_at_capacity(self):
        cache = ResponseCache(max_entries=2)
        cache.put("a", "1")
        cache.put("b", "2")
        cache.put("c", "3")
        assert len(cache) == 2
        assert cache.get("a") is None
        assert cache.get("c") == "3"

    def test_lru_ordering(self):
        cache = ResponseCache(max_entries=2)
        cache.put("a", "1")
        cache.put("b", "2")
        cache.get("a")  # refresh a
        cache.put("c", "3")  # evicts b
        assert cache.get("a") == "1"
        assert cache.get("b") is None

    def test_persistence_round_trip(self, tmp_path):
        cache = ResponseCache()
        cache.put("k", "v")
        path = tmp_path / "cache.json"
        cache.save(path)
        fresh = ResponseCache()
        fresh.load(path)
        assert fresh.get("k") == "v"
