"""Table 5 — LLM favicon-classifier validation, per step and overall.

Paper: step 1 accuracy 0.90 with recall 0.8665 (43 FN handed to step 2);
step 2 reclassifies 38 of 43; overall accuracy 0.986, precision 0.997,
recall 0.984.  The shape to reproduce: strict step 1 leaves false
negatives, the LLM step recovers most of them, overall accuracy ≈0.98+.
"""

from conftest import run_and_render


def test_table5_classifier_validation(benchmark, ctx):
    report = run_and_render(benchmark, ctx, "table5")
    rows = {row["step"]: row for row in report.rows}

    step1, step2, overall = rows["Step 1"], rows["Step 2"], rows["All"]
    # Step 1 is precise but strict: it leaves false negatives behind.
    assert step1["precision"] >= 0.95
    assert step1["FN"] > 0
    # Step 2 recovers most of step 1's false negatives.
    assert step2["TP"] > 0
    assert overall["FN"] < step1["FN"]
    # Overall accuracy lands in the paper's band.
    assert overall["accuracy"] >= 0.95
    assert overall["recall"] > step1["recall"]
