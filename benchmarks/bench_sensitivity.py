"""Seed-sensitivity bench: the headline results must not be seed luck.

Regenerates the universe under three different seeds and asserts the
paper's qualitative conclusions hold in every world: the method ordering
AS2Org < as2org+ < Borges with single-digit-percent θ gaps, and the
canonical planted scenarios recovered.
"""

import dataclasses

from repro.baselines import build_as2org_mapping, build_as2orgplus_mapping
from repro.config import UniverseConfig
from repro.core import BorgesPipeline
from repro.metrics import org_factor_from_mapping
from repro.universe import generate_universe
from repro.universe.canonical import AS_CENTURYLINK, AS_EDGECAST, AS_LIMELIGHT, AS_LUMEN

SEEDS = (42, 1234, 777)
#: A smaller org count keeps three full universes affordable per run.
BASE = UniverseConfig(n_organizations=3_000, total_users=140_000_000)


def run_seed(seed: int):
    universe = generate_universe(dataclasses.replace(BASE, seed=seed))
    borges = BorgesPipeline(
        universe.whois, universe.pdb, universe.web
    ).run().mapping
    as2org = build_as2org_mapping(universe.whois)
    plus = build_as2orgplus_mapping(universe.whois, universe.pdb)
    return {
        "seed": seed,
        "as2org": org_factor_from_mapping(as2org),
        "as2org_plus": org_factor_from_mapping(plus),
        "borges": org_factor_from_mapping(borges),
        "lumen": borges.are_siblings(AS_LUMEN, AS_CENTURYLINK),
        "edgio": borges.are_siblings(AS_EDGECAST, AS_LIMELIGHT),
    }


def test_seed_sensitivity(benchmark):
    results = benchmark.pedantic(
        lambda: [run_seed(seed) for seed in SEEDS], rounds=1, iterations=1
    )
    print()
    for row in results:
        plus_gain = 100 * (row["as2org_plus"] / row["as2org"] - 1)
        borges_gain = 100 * (row["borges"] / row["as2org"] - 1)
        print(
            f"  seed {row['seed']}: as2org={row['as2org']:.4f} "
            f"plus=+{plus_gain:.2f}% borges=+{borges_gain:.2f}%"
        )

    for row in results:
        # Ordering holds in every world.
        assert row["as2org"] < row["as2org_plus"] < row["borges"]
        borges_gain = 100 * (row["borges"] / row["as2org"] - 1)
        plus_gain = 100 * (row["as2org_plus"] / row["as2org"] - 1)
        # Single-digit-percent gaps, as in the paper.
        assert 0.5 <= plus_gain <= 8.0
        assert 4.0 <= borges_gain <= 15.0
        assert borges_gain > plus_gain
        # Canonical scenarios are seed-independent.
        assert row["lumen"] and row["edgio"]
