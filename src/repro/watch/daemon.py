"""The supervised continuous-operation loop behind ``borges watch``.

One :class:`WatchDaemon` owns the write side of a long-running Borges
deployment: re-derive the mapping on a schedule (or when the dataset
digest changes), gate the candidate against the active generation,
archive it immutably, and hot-swap it into the serve tier — for hours or
days, unattended, without ever taking serving down.

The crash-ordering is the design.  A refresh cycle journals its steps
in an order chosen so that *any* ``kill -9`` leaves a resumable state::

    start(digest)                 # crash here → orphan start, re-run;
    run pipeline                  #   two orphans quarantine the digest
    gate candidate                # crash → re-run (nothing published)
    archive.publish  → gen N      # crash → gen N burned, never reused;
    journal.publish(digest, N)    #   re-run re-publishes as gen N+1
    store.swap       → serving    # crash between publish and swap →
    journal.swap(N)               #   recover() installs gen N from the
                                  #   archive without re-running

:meth:`recover` is the other half: on startup it quarantines digests
with two orphan crashes, and when the journal shows a published
generation that never swapped, it installs that generation from the
archive — digest-verified — so a killed daemon resumes instead of
re-deriving (and re-paying for) work it already finished.

Failures are budgeted, not fatal: a crashing pipeline run is journaled,
backed off with the same seeded-jitter schedule
:class:`~repro.resilience.RetryPolicy` gives the LLM client, and
retried — until ``max_restarts`` failures land inside
``restart_window`` seconds, at which point the refresh loop *halts*
(``watch.halted`` event, gauge set) while the serve tier keeps
answering from the last good generation.  A wedged refresh loop is an
operator page, not an outage.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Optional

from ..core.mapping import OrgMapping
from ..errors import ReproError, SnapshotIntegrityError
from ..logutil import get_logger
from ..obs import get_registry
from ..obs.log import get_event_log
from ..resilience.policy import RetryPolicy
from ..serve.index import MappingIndex
from ..serve.store import SnapshotStore
from .archive import SnapshotArchive
from .gate import GateThresholds, PublishGate
from .journal import QUARANTINE_CRASHES, RunJournal

_LOG = get_logger("watch.daemon")

#: Cycle outcomes tracked in ``watch_cycles_total``.
OUTCOMES = (
    "published",
    "skipped_unchanged",
    "skipped_quarantined",
    "gate_blocked",
    "failed",
)


class SimulatedProcessKill(BaseException):
    """The ``publish-crash`` fault: the process 'dies' at this instruction.

    Deliberately a ``BaseException``: the supervisor's pipeline-crash
    handling must *not* catch it — a real ``kill -9`` writes no journal
    entry, runs no cleanup, and is survived purely by the crash-ordering
    of the entries already on disk.  Chaos harnesses catch it one frame
    up and model the restart by building a fresh daemon over the same
    journal, archive and store.
    """


@dataclass(frozen=True)
class WatchRunResult:
    """What one pipeline refresh hands the daemon."""

    mapping: OrgMapping
    dataset_digest: str
    label: str = ""
    whois: object = None
    pdb: object = None
    #: Ground-truth precision when the runner can measure it, else None.
    precision: Optional[float] = None
    #: Sharded-refresh posture (``ShardedBorgesResult.shard_posture()``)
    #: when the runner executes sharded, else None.
    shard_posture: Optional[Dict[str, object]] = None


@dataclass(frozen=True)
class WatchConfig:
    """Knobs for the refresh loop; validated at daemon construction."""

    interval: float = 60.0
    max_cycles: int = 0
    thresholds: GateThresholds = field(default_factory=GateThresholds)
    #: Backoff schedule after failed cycles (seeded jitter, like every
    #: other retry surface in the repo).  ``attempts`` is ignored — the
    #: restart budget below is the loop's give-up condition.
    backoff: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            attempts=8, base_delay=0.5, max_delay=30.0
        )
    )
    max_restarts: int = 5
    restart_window: float = 600.0
    #: Re-publish even when the dataset digest matches the last publish.
    run_on_unchanged: bool = False


class WatchDaemon:
    """Supervised refresh loop over a store, archive and journal."""

    def __init__(
        self,
        store: SnapshotStore,
        archive: SnapshotArchive,
        journal: RunJournal,
        runner: Callable[[], WatchRunResult],
        config: Optional[WatchConfig] = None,
        digest_probe: Optional[Callable[[], str]] = None,
        registry=None,
        injector=None,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.store = store
        self.archive = archive
        self.journal = journal
        self.runner = runner
        self.config = config or WatchConfig()
        self.config.thresholds.validate()
        self.digest_probe = digest_probe
        self.registry = registry or get_registry()
        self._injector = injector
        self._sleep = sleep
        self.gate = PublishGate(self.config.thresholds)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: True while :meth:`run` is executing — in a background thread
        #: *or* the caller's own (the ``borges watch`` CLI blocks on it).
        self._loop_active = False
        self._lock = threading.Lock()
        self._failure_times: Deque[float] = deque()
        self.cycles = 0
        self.consecutive_failures = 0
        self.halted = False
        self.last_outcome = ""
        self.last_error = ""
        self.last_cycle_at = 0.0
        self.last_gate_decision: Optional[Dict[str, object]] = None
        self.last_shard_posture: Optional[Dict[str, object]] = None
        self._outcome_counters = {
            outcome: self.registry.counter(
                "watch_cycles_total",
                "Watch refresh cycles by outcome",
                outcome=outcome,
            )
            for outcome in OUTCOMES
        }
        self._cycle_seconds = self.registry.histogram(
            "watch_cycle_seconds", "Wall time of one watch refresh cycle"
        )
        self._halted_gauge = self.registry.gauge(
            "watch_halted", "1 when the refresh loop exhausted its restart budget"
        )
        self._failures_gauge = self.registry.gauge(
            "watch_consecutive_failures",
            "Consecutive failed refresh cycles (resets on success)",
        )

    # -- plumbing ----------------------------------------------------------

    def _fault(self, key: str) -> Optional[str]:
        if self._injector is None:
            return None
        from ..resilience.faults import WATCH_SURFACE

        return self._injector.next_fault(WATCH_SURFACE, key)

    def _emit(self, name: str, severity: str = "info", **fields: object) -> None:
        get_event_log().emit(name, severity=severity, **fields)

    def _record_outcome(self, outcome: str, **fields: object) -> str:
        with self._lock:
            self.last_outcome = outcome
            self.last_cycle_at = time.time()
        self._outcome_counters[outcome].inc()
        self._emit("watch.cycle", outcome=outcome, cycle=self.cycles, **fields)
        return outcome

    def _record_failure(self, error: str) -> None:
        now = time.monotonic()
        with self._lock:
            self.consecutive_failures += 1
            self.last_error = error
            self._failure_times.append(now)
            window_start = now - self.config.restart_window
            while self._failure_times and self._failure_times[0] < window_start:
                self._failure_times.popleft()
            if len(self._failure_times) > self.config.max_restarts:
                self.halted = True
        self._failures_gauge.set(self.consecutive_failures)
        if self.halted:
            self._halted_gauge.set(1)
            _LOG.error(
                "watch loop halted: %d failures within %.0fs (serving "
                "continues on the last good generation)",
                len(self._failure_times), self.config.restart_window,
            )
            self._emit(
                "watch.halted",
                severity="error",
                failures_in_window=len(self._failure_times),
                window_seconds=self.config.restart_window,
            )

    def _record_success(self) -> None:
        with self._lock:
            self.consecutive_failures = 0
            self.last_error = ""
        self._failures_gauge.set(0)

    # -- recovery ----------------------------------------------------------

    def recover(self) -> Dict[str, object]:
        """Resume from the journal: quarantine crashers, finish swaps.

        Must run before the first cycle (and before any entry is
        appended — orphan detection keys off the journal's tail).
        """
        report: Dict[str, object] = {
            "quarantined": [],
            "resumed_generation": 0,
            "dropped_tail": self.journal.dropped_tail,
        }
        explicit = {
            str(e["fields"].get("dataset_digest", ""))
            for e in self.journal.entries("quarantine")
        }
        for digest, crashes in sorted(self.journal.orphan_crash_counts().items()):
            if digest and crashes >= QUARANTINE_CRASHES and digest not in explicit:
                self.journal.append(
                    "quarantine", dataset_digest=digest, crashes=crashes
                )
                report["quarantined"].append(digest)
                self._emit(
                    "watch.quarantine",
                    severity="warning",
                    dataset_digest=digest,
                    crashes=crashes,
                )
        last = self.journal.last_published()
        if last is None:
            return report
        published_gen = int(last.get("archive_generation", 0))
        if published_gen <= self.journal.last_swapped_generation():
            return report
        # Published but never swapped: the kill-between-archive-and-swap
        # window.  Install from the archive — digest-verified — instead
        # of re-running the pipeline.
        try:
            mapping = self.archive.read_mapping(published_gen)
        except (ReproError, OSError) as exc:
            _LOG.warning(
                "cannot resume archived generation %d: %s", published_gen, exc
            )
            self.journal.append(
                "fail",
                dataset_digest=str(last.get("dataset_digest", "")),
                error=f"resume failed: {exc}",
            )
            return report
        index = MappingIndex.build(mapping)
        snapshot = self.store.swap(
            index,
            source="watch-resume",
            label=f"archive gen {published_gen}",
            archive_generation=published_gen,
        )
        self.journal.append(
            "swap",
            dataset_digest=str(last.get("dataset_digest", "")),
            archive_generation=published_gen,
            store_generation=snapshot.generation,
        )
        report["resumed_generation"] = published_gen
        self._emit(
            "watch.resume",
            archive_generation=published_gen,
            store_generation=snapshot.generation,
        )
        return report

    # -- one cycle ---------------------------------------------------------

    def cycle(self) -> str:
        """Run one refresh cycle; returns the outcome label."""
        self.cycles += 1
        started = time.perf_counter()
        try:
            outcome = self._cycle_body()
        finally:
            self._cycle_seconds.observe(time.perf_counter() - started)
        return outcome

    def _cycle_body(self) -> str:
        published = self.journal.published_digests()
        quarantined = self.journal.quarantined_digests()
        probed = self.digest_probe() if self.digest_probe is not None else ""
        if probed:
            if probed in quarantined:
                self.journal.append(
                    "skip", dataset_digest=probed, reason="quarantined"
                )
                return self._record_outcome(
                    "skipped_quarantined", dataset_digest=probed
                )
            if probed in published and not self.config.run_on_unchanged:
                self.journal.append(
                    "skip", dataset_digest=probed, reason="unchanged"
                )
                return self._record_outcome(
                    "skipped_unchanged", dataset_digest=probed
                )
        self.journal.append("start", dataset_digest=probed, cycle=self.cycles)
        if self._fault("cycle") == "slow_pipeline":
            stall = self._injector.profile.slow_pipeline_seconds
            self._emit("watch.slow_pipeline", severity="warning", stall=stall)
            (self._sleep or time.sleep)(stall)
        try:
            result = self.runner()
        except SimulatedProcessKill:
            raise
        except Exception as exc:  # noqa: BLE001 — the supervisor boundary:
            # a crashing pipeline must not take down serving.
            error = f"{type(exc).__name__}: {exc}"
            self.journal.append("fail", dataset_digest=probed, error=error)
            self._record_failure(error)
            _LOG.warning("watch cycle %d failed: %s", self.cycles, error)
            return self._record_outcome("failed", error=error)
        if result.shard_posture is not None:
            with self._lock:
                self.last_shard_posture = dict(result.shard_posture)
            if result.shard_posture.get("failed"):
                self._emit(
                    "watch.shards_degraded",
                    severity="warning",
                    **result.shard_posture,
                )
        digest = result.dataset_digest
        if digest in quarantined:
            self.journal.append(
                "skip", dataset_digest=digest, reason="quarantined"
            )
            return self._record_outcome(
                "skipped_quarantined", dataset_digest=digest
            )
        if digest in published and not self.config.run_on_unchanged:
            self.journal.append("skip", dataset_digest=digest, reason="unchanged")
            return self._record_outcome(
                "skipped_unchanged", dataset_digest=digest
            )
        candidate = MappingIndex.build(
            result.mapping, whois=result.whois, pdb=result.pdb
        )
        active = self.store.current_or_none()
        decision = self.gate.evaluate(
            candidate,
            active.index if active is not None else None,
            precision=result.precision,
        )
        with self._lock:
            self.last_gate_decision = decision.to_json()
        if not decision.allowed:
            self.journal.append(
                "gate",
                dataset_digest=digest,
                reasons=list(decision.reasons),
                metrics=decision.metrics,
            )
            self.registry.counter(
                "watch_gate_blocked_total",
                "Candidate generations refused by the publish gate",
            ).inc()
            self._emit(
                "watch.gate_blocked",
                severity="warning",
                dataset_digest=digest,
                reasons=list(decision.reasons),
            )
            _LOG.warning(
                "publish gate blocked cycle %d: %s",
                self.cycles, "; ".join(decision.reasons),
            )
            return self._record_outcome(
                "gate_blocked", reasons=list(decision.reasons)
            )
        try:
            entry = self.archive.publish(
                result.mapping,
                label=result.label or f"cycle {self.cycles}",
                dataset_digest=digest,
                meta={"gate": decision.metrics},
                # The gate already built this generation's index; the
                # compiled-blob sidecar lets a multi-worker serve tier
                # map it without rebuilding.
                index=candidate,
            )
        except ReproError as exc:
            error = f"{type(exc).__name__}: {exc}"
            self.journal.append("fail", dataset_digest=digest, error=error)
            self._record_failure(error)
            return self._record_outcome("failed", error=error)
        archive_generation = int(entry["archive_generation"])
        self.journal.append(
            "publish",
            dataset_digest=digest,
            archive_generation=archive_generation,
            label=result.label,
        )
        if self._fault("publish") == "publish_crash":
            # The chaos contract: the "process" dies after the archive
            # write and journal entry, before the swap.  recover() must
            # finish the job from the archive.
            raise SimulatedProcessKill(
                f"publish-crash fault after archiving generation "
                f"{archive_generation}"
            )
        snapshot = self.store.swap(
            candidate,
            source="watch",
            label=result.label or f"cycle {self.cycles}",
            archive_generation=archive_generation,
        )
        self.journal.append(
            "swap",
            dataset_digest=digest,
            archive_generation=archive_generation,
            store_generation=snapshot.generation,
        )
        self._record_success()
        self._emit(
            "watch.publish",
            dataset_digest=digest,
            archive_generation=archive_generation,
            store_generation=snapshot.generation,
            orgs=len(candidate),
            asns=candidate.asn_count,
        )
        return self._record_outcome(
            "published", archive_generation=archive_generation
        )

    # -- the loop ----------------------------------------------------------

    def run(self) -> int:
        """Blocking refresh loop; returns the number of cycles run."""
        self._loop_active = True
        try:
            self.recover()
            while not self._stop.is_set() and not self.halted:
                if (
                    self.config.max_cycles
                    and self.cycles >= self.config.max_cycles
                ):
                    break
                outcome = self.cycle()
                if (
                    self.config.max_cycles
                    and self.cycles >= self.config.max_cycles
                ):
                    break
                if outcome == "failed":
                    delay = self.config.backoff.delay_for(
                        min(self.consecutive_failures, 30), key="watch"
                    )
                else:
                    delay = self.config.interval
                if self._sleep is not None:
                    if delay > 0.0:
                        self._sleep(delay)
                else:
                    self._stop.wait(delay)
            return self.cycles
        finally:
            self._loop_active = False

    def start(self) -> "WatchDaemon":
        """Run the loop in a daemon thread (the serve-tier co-host mode)."""
        self._thread = threading.Thread(
            target=self.run, name="borges-watch", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    # -- status ------------------------------------------------------------

    def status(self) -> Dict[str, object]:
        """The ``/v1/admin/watch`` body: everything an operator asks first."""
        thread = self._thread
        with self._lock:
            failures_in_window = len(self._failure_times)
            out: Dict[str, object] = {
                "running": self._loop_active
                or (thread is not None and thread.is_alive()),
                "cycles": self.cycles,
                "halted": self.halted,
                "consecutive_failures": self.consecutive_failures,
                "failures_in_window": failures_in_window,
                "restart_budget": {
                    "max_restarts": self.config.max_restarts,
                    "window_seconds": self.config.restart_window,
                    "remaining": max(
                        0, self.config.max_restarts - failures_in_window
                    ),
                },
                "last_outcome": self.last_outcome,
                "last_error": self.last_error,
                "last_cycle_at": self.last_cycle_at,
                "interval_seconds": self.config.interval,
                "thresholds": self.config.thresholds.to_json(),
                "last_gate_decision": self.last_gate_decision,
                "last_shard_posture": self.last_shard_posture,
            }
        out["journal"] = self.journal.stats()
        out["archive"] = self.archive.stats()
        return out
