"""Unit tests for the AS-Rank substrate: topology, cones, ranking."""

import pytest

from repro.asrank import ASTopology, compute_rank, customer_cones
from repro.asrank.cone import cone_sizes, customer_cone
from repro.errors import DataError, UnknownASNError


def diamond():
    """1 → {2, 3} → 4, plus stub 5 under 2."""
    topology = ASTopology()
    topology.add_p2c(1, 2)
    topology.add_p2c(1, 3)
    topology.add_p2c(2, 4)
    topology.add_p2c(3, 4)
    topology.add_p2c(2, 5)
    return topology


class TestTopology:
    def test_basic_adjacency(self):
        topology = diamond()
        assert topology.customers_of(1) == {2, 3}
        assert topology.providers_of(4) == {2, 3}
        assert len(topology) == 5
        assert topology.link_count == 5

    def test_self_loop_rejected(self):
        with pytest.raises(DataError):
            diamond().add_p2c(1, 1)
        with pytest.raises(DataError):
            diamond().add_p2p(2, 2)

    def test_idempotent_edges(self):
        topology = diamond()
        topology.add_p2c(1, 2)
        assert topology.link_count == 5

    def test_p2p_symmetric(self):
        topology = diamond()
        topology.add_p2p(2, 3)
        assert 3 in topology.peers_of(2)
        assert 2 in topology.peers_of(3)

    def test_degree_counts_all_edges(self):
        topology = diamond()
        topology.add_p2p(2, 3)
        assert topology.degree(2) == 4  # provider 1, customers 4+5, peer 3

    def test_stub_detection(self):
        topology = diamond()
        assert topology.is_stub(4)
        assert topology.is_stub(5)
        assert not topology.is_stub(1)

    def test_tier1_detection(self):
        assert diamond().tier1s() == [1]

    def test_acyclic_validation_passes(self):
        diamond().validate_acyclic()

    def test_cycle_detected(self):
        topology = diamond()
        topology.add_p2c(4, 1)  # 1 → 2 → 4 → 1
        with pytest.raises(DataError):
            topology.validate_acyclic()

    def test_p2c_links_iterates_sorted(self):
        links = list(diamond().p2c_links())
        assert links == sorted(links)


class TestCones:
    def test_single_cone(self):
        assert customer_cone(diamond(), 2) == {2, 4, 5}

    def test_root_cone_is_everything(self):
        assert customer_cone(diamond(), 1) == {1, 2, 3, 4, 5}

    def test_stub_cone_is_self(self):
        assert customer_cone(diamond(), 4) == {4}

    def test_all_cones_consistent_with_single(self):
        topology = diamond()
        cones = customer_cones(topology)
        for asn in topology.asns():
            assert cones[asn] == customer_cone(topology, asn)

    def test_cone_sizes(self):
        sizes = cone_sizes(diamond())
        assert sizes == {1: 5, 2: 3, 3: 2, 4: 1, 5: 1}

    def test_shared_customer_counted_once(self):
        # AS4 is a customer of both 2 and 3; AS1's cone holds it once.
        assert cone_sizes(diamond())[1] == 5

    def test_deep_chain_no_recursion_error(self):
        topology = ASTopology()
        for i in range(1, 5000):
            topology.add_p2c(i, i + 1)
        assert cone_sizes(topology)[1] == 5000


class TestRank:
    def test_rank_order(self):
        rank = compute_rank(diamond())
        assert rank.rank_of(1) == 1
        assert rank.rank_of(2) == 2
        assert rank.rank_of(3) == 3

    def test_tie_breaks_by_degree_then_asn(self):
        topology = ASTopology()
        topology.add_p2c(10, 11)
        topology.add_p2c(20, 21)
        rank = compute_rank(topology)
        # 10 and 20 tie on cone size (2) and degree (1): lower ASN first.
        assert rank.rank_of(10) < rank.rank_of(20)

    def test_top(self):
        rank = compute_rank(diamond())
        assert [e.asn for e in rank.top(2)] == [1, 2]

    def test_unknown_asn_raises(self):
        with pytest.raises(UnknownASNError):
            compute_rank(diamond()).rank_of(999)

    def test_rank_of_or_none(self):
        rank = compute_rank(diamond())
        assert rank.rank_of_or_none(999) is None
        assert rank.rank_of_or_none(1) == 1

    def test_best_ranked(self):
        rank = compute_rank(diamond())
        best = rank.best_ranked([4, 2, 5])
        assert best is not None and best.asn == 2
        assert rank.best_ranked([999]) is None

    def test_len_and_iteration(self):
        rank = compute_rank(diamond())
        assert len(rank) == 5
        assert [e.rank for e in rank] == [1, 2, 3, 4, 5]
