"""Streaming dataset export: bounded-RSS ``borges generate --stream``.

Writes the same three dataset files as the collect-all path
(:func:`~repro.peeringdb.save_snapshot`,
:func:`~repro.whois.save_as2org_file`,
:meth:`~repro.apnic.ApnicDataset.save_csv`) without ever holding the
:class:`~repro.universe.stream.Universe` in memory: chunks materialize
one at a time, records spool to on-disk section files, and a finalize
step stitches header + sections together with incrementally computed
digests.  The output files are byte-identical to the non-streaming
export (asserted in tests), so downstream consumers cannot tell which
path produced them.

Ordering is the whole trick — the writers emit globally sorted records
(orgs by id, then ASNs ascending) and the exporter may not hold them
all.  Two facts make a streaming sort possible:

* *Seed chunks are monotonic.*  ASN blocks are allocated sequentially
  from :data:`~repro.universe.stream.SYNTHETIC_ASN_BASE` and WHOIS
  handles / PeeringDB org ids embed the global org index, so every seed
  chunk's keys are strictly greater than the previous chunk's.  Sorting
  within a chunk and concatenating across chunks equals one global
  sort; the exporter *asserts* this at every chunk boundary instead of
  trusting it.
* *The canonical bundle is small but scattered.*  Chunk 0 plants the
  paper's scenarios on reserved, non-contiguous ASNs that interleave
  with the seed ranges, so its records go to their own (tiny) section
  files and are heap-merged with the seed stream at finalize.

The only state that survives the pass is O(small): running digests,
counts, and the raw APNIC population accumulator (a few tuples per
access org), which needs the global total for normalization anyway.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import tempfile
from pathlib import Path
from typing import (
    IO,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from ..apnic import ApnicDataset, PopulationRecord
from ..config import UniverseConfig
from ..errors import DataError
from ..types import ASN
from ..whois.as2org_file import RELEASE_HEADER_PREFIX, RELEASE_HEADER_SCHEMA
from .stream import UniversePlan, build_plan, materialize_chunk

#: Filenames written into the output directory (same as `borges generate`).
PDB_FILENAME = "peeringdb_snapshot.json"
AS2ORG_FILENAME = "as2org.jsonl"
APNIC_FILENAME = "apnic_population.csv"

ProgressFn = Callable[[int, int, int], None]

#: Record kind → sort key extracted from its compact JSON form.
_SORT_KEYS: Dict[str, Callable[[Dict[str, object]], object]] = {
    "whois_orgs": lambda r: str(r["organizationId"]),
    "asns": lambda r: int(r["asn"]),  # type: ignore[arg-type]
    "pdb_orgs": lambda r: int(r["id"]),  # type: ignore[arg-type]
    "nets": lambda r: int(r["asn"]),  # type: ignore[arg-type]
}


class _IncrementalLineDigest:
    """SHA-256 over the canonical JSON of a list of strings, fed one at
    a time — matches :func:`repro.digest.stable_digest` on the full list
    without materializing it."""

    def __init__(self) -> None:
        self._hash = hashlib.sha256(b"[")
        self._first = True

    def add(self, line: str) -> None:
        if not self._first:
            self._hash.update(b",")
        self._first = False
        # canonical_json leaves strings to json.dumps' default
        # (ensure_ascii=True) encoding, which we reproduce here.
        self._hash.update(json.dumps(line).encode("utf-8"))

    def hexdigest(self) -> str:
        final = self._hash.copy()
        final.update(b"]")
        return final.hexdigest()


class _Monotone:
    """Asserts a strictly increasing key sequence across chunk boundaries."""

    def __init__(self, what: str) -> None:
        self._what = what
        self._last: Optional[object] = None

    def check(self, key: object) -> None:
        if self._last is not None and not key > self._last:  # type: ignore[operator]
            raise DataError(
                f"streaming export order violated: {self._what} key "
                f"{key!r} after {self._last!r} — seed chunk ranges are "
                f"not monotonic; use the non-streaming export"
            )
        self._last = key


def _iter_lines(path: Path) -> Iterator[str]:
    with path.open("r", encoding="utf-8") as fh:
        for line in fh:
            yield line.rstrip("\n")


def _merged_lines(kind: str, canon: Path, rest: Path) -> Iterator[str]:
    """Canonical + seed section files, heap-merged into global key order."""
    key = _SORT_KEYS[kind]
    return heapq.merge(
        _iter_lines(canon),
        _iter_lines(rest),
        key=lambda line: key(json.loads(line)),
    )


def _write_indented_records(lines: Iterable[str], sink: IO[str]) -> None:
    """Re-emit compact JSON records as ``indent=1`` list items at
    nesting depth 3, exactly as ``json.dumps(snapshot.to_json(),
    indent=1)`` renders them."""
    first = True
    for line in lines:
        record = json.loads(line)
        if not first:
            sink.write(",\n   ")
        first = False
        text = json.dumps(record, ensure_ascii=False, indent=1)
        parts = text.splitlines()
        sink.write(parts[0])
        for inner in parts[1:]:
            sink.write("\n   " + inner)


def _finalize_pdb(
    path: Path,
    meta: Dict[str, object],
    org_lines: Iterable[str],
    net_lines: Iterable[str],
    n_orgs: int,
    n_nets: int,
) -> None:
    org_token, net_token = '"@ORG@"', '"@NET@"'
    skeleton = json.dumps(
        {
            "meta": meta,
            "org": {"data": ["@ORG@"] if n_orgs else []},
            "net": {"data": ["@NET@"] if n_nets else []},
        },
        ensure_ascii=False,
        indent=1,
    )
    with path.open("w", encoding="utf-8") as sink:
        pos = 0
        for token, lines, count in (
            (org_token, org_lines, n_orgs),
            (net_token, net_lines, n_nets),
        ):
            if count == 0:
                continue
            cut = skeleton.index(token, pos)
            sink.write(skeleton[pos:cut])
            _write_indented_records(lines, sink)
            pos = cut + len(token)
        sink.write(skeleton[pos:])


def _finalize_as2org(
    path: Path,
    org_lines: Iterable[str],
    asn_lines: Iterable[str],
    n_orgs: int,
    n_asns: int,
) -> None:
    """Two streaming passes: digest the record lines, then write
    header + records (the integrity header must come first and carries
    a digest over everything after it)."""
    digest = _IncrementalLineDigest()
    spool = path.with_suffix(path.suffix + ".part")
    with spool.open("w", encoding="utf-8") as sink:
        for line in org_lines:
            digest.add(line)
            sink.write(line + "\n")
        for line in asn_lines:
            digest.add(line)
            sink.write(line + "\n")
    header = RELEASE_HEADER_PREFIX + json.dumps(
        {
            "schema": RELEASE_HEADER_SCHEMA,
            "digest": digest.hexdigest(),
            "orgs": n_orgs,
            "asns": n_asns,
        },
        sort_keys=True,
    )
    with path.open("w", encoding="utf-8") as sink:
        sink.write(header + "\n")
        with spool.open("r", encoding="utf-8") as fh:
            for line in fh:
                sink.write(line)
    spool.unlink()


def _finalize_apnic(
    path: Path,
    raw_populations: List[Tuple[ASN, str, float]],
    total_users: int,
) -> int:
    total_raw = sum(value for _, _, value in raw_populations) or 1.0
    scale = total_users / total_raw
    apnic = ApnicDataset()
    for asn, country, value in raw_populations:
        users = int(value * scale)
        if users > 0:
            apnic.add(PopulationRecord(asn=asn, country=country, users=users))
    apnic.save_csv(path)
    return len(apnic)


def export_universe_streaming(
    config: Optional[UniverseConfig] = None,
    out_dir: Union[str, Path] = "datasets",
    *,
    plan: Optional[UniversePlan] = None,
    progress: Optional[ProgressFn] = None,
) -> Dict[str, int]:
    """Generate *config*'s universe chunk by chunk and export datasets.

    Returns a summary of counts.  ``progress(chunk_index, n_chunks,
    asns_so_far)`` is called after each chunk, for CLI feedback on long
    runs.  Peak RSS stays bounded by one chunk plus the accumulators
    described in the module docstring.
    """
    plan = plan if plan is not None else build_plan(config)
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    counts = {
        "chunks": plan.n_chunks,
        "whois_orgs": 0,
        "asns": 0,
        "pdb_orgs": 0,
        "pdb_nets": 0,
        "sites_emitted": 0,
    }
    kind_counts = {kind: 0 for kind in _SORT_KEYS}
    raw_populations: List[Tuple[ASN, str, float]] = []
    order = {kind: _Monotone(kind) for kind in _SORT_KEYS}

    with tempfile.TemporaryDirectory(dir=out, prefix=".stream-") as tmp:
        canon_parts = {k: Path(tmp) / f"canon-{k}" for k in _SORT_KEYS}
        rest_parts = {k: Path(tmp) / f"rest-{k}" for k in _SORT_KEYS}
        sinks = {
            k: (
                canon_parts[k].open("w", encoding="utf-8"),
                rest_parts[k].open("w", encoding="utf-8"),
            )
            for k in _SORT_KEYS
        }
        try:
            for index in range(plan.n_chunks):
                chunk = materialize_chunk(plan, index)
                records = {
                    "whois_orgs": [o.to_json() for o in chunk.whois_orgs],
                    "asns": [d.to_json() for d in chunk.delegations],
                    "pdb_orgs": [o.to_json() for o in chunk.pdb_orgs],
                    "nets": [n.to_json() for n in chunk.nets],
                }
                for kind, recs in records.items():
                    key = _SORT_KEYS[kind]
                    sink = sinks[kind][0 if index == 0 else 1]
                    for record in sorted(recs, key=key):
                        if index > 0:
                            order[kind].check(key(record))
                        sink.write(
                            json.dumps(record, ensure_ascii=False) + "\n"
                        )
                    kind_counts[kind] += len(recs)
                counts["whois_orgs"] = kind_counts["whois_orgs"]
                counts["asns"] = kind_counts["asns"]
                counts["pdb_orgs"] = kind_counts["pdb_orgs"]
                counts["pdb_nets"] = kind_counts["nets"]
                counts["sites_emitted"] += len(chunk.sites)
                raw_populations.extend(chunk.raw_populations)
                if progress is not None:
                    progress(index, plan.n_chunks, counts["asns"])
        finally:
            for pair in sinks.values():
                for sink in pair:
                    sink.close()

        _finalize_as2org(
            out / AS2ORG_FILENAME,
            _merged_lines(
                "whois_orgs", canon_parts["whois_orgs"], rest_parts["whois_orgs"]
            ),
            _merged_lines("asns", canon_parts["asns"], rest_parts["asns"]),
            counts["whois_orgs"],
            counts["asns"],
        )
        _finalize_pdb(
            out / PDB_FILENAME,
            {
                "generated": "synthetic",
                "seed": plan.config.seed,
                "source": "repro.universe",
            },
            _merged_lines(
                "pdb_orgs", canon_parts["pdb_orgs"], rest_parts["pdb_orgs"]
            ),
            _merged_lines("nets", canon_parts["nets"], rest_parts["nets"]),
            counts["pdb_orgs"],
            counts["pdb_nets"],
        )
    counts["apnic_records"] = _finalize_apnic(
        out / APNIC_FILENAME, raw_populations, plan.config.total_users
    )
    return counts
