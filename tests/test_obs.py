"""Tests for the observability subsystem: registry, tracer, exporters."""

import json

import pytest

from repro.cli import main
from repro.config import TEST_UNIVERSE, ALL_FEATURES
from repro.core import BorgesPipeline
from repro.errors import ConfigError
from repro.experiments import ExperimentContext
from repro.obs import (
    MetricsRegistry,
    Tracer,
    build_manifest,
    config_fingerprint,
    get_registry,
    get_tracer,
    load_manifest,
    render_prometheus,
    use_registry,
    use_tracer,
    write_manifest,
)
from repro.universe import generate_universe


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2)
        assert counter.value == 3.0

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_get_or_create_returns_same_child(self):
        registry = MetricsRegistry()
        registry.counter("c", kind="a").inc()
        registry.counter("c", kind="a").inc()
        registry.counter("c", kind="b").inc()
        assert registry.value("c", kind="a") == 2.0
        assert registry.value("c", kind="b") == 1.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12.0


class TestHistogram:
    def test_observations_land_in_buckets(self):
        hist = MetricsRegistry().histogram("h", buckets=[1.0, 5.0])
        for value in (0.5, 0.7, 3.0, 100.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(104.2)
        assert hist.bucket_counts == [2, 1, 1]  # <=1, <=5, +Inf
        assert hist.cumulative_counts() == [2, 3, 4]

    def test_mean(self):
        hist = MetricsRegistry().histogram("h", buckets=[1.0])
        assert hist.mean == 0.0
        hist.observe(2.0)
        hist.observe(4.0)
        assert hist.mean == pytest.approx(3.0)

    def test_empty_buckets_rejected(self):
        with pytest.raises(ConfigError):
            MetricsRegistry().histogram("h", buckets=[])


class TestRegistry:
    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigError):
            registry.gauge("x")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c", "help text", kind="a").inc(2)
        registry.histogram("h", buckets=[1.0]).observe(0.5)
        snap = registry.snapshot()
        assert snap["c"]["type"] == "counter"
        assert snap["c"]["help"] == "help text"
        assert snap["c"]["series"][0] == {"labels": {"kind": "a"}, "value": 2.0}
        hseries = snap["h"]["series"][0]
        assert hseries["count"] == 1
        assert hseries["buckets"][-1]["le"] == "+Inf"

    def test_use_registry_swaps_global(self):
        before = get_registry()
        with use_registry() as registry:
            assert get_registry() is registry
            assert registry is not before
        assert get_registry() is before

    def test_reset_clears_families(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.families() == []


class TestTracer:
    def test_nested_spans_parent_child(self):
        tracer = Tracer()
        with tracer.span("outer", run=1) as outer:
            with tracer.span("inner") as inner:
                pass
        assert tracer.spans() == [outer]
        assert outer.children == [inner]
        assert outer.attributes == {"run": 1}
        assert outer.status == "ok" and inner.status == "ok"

    def test_child_duration_within_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, inner = tracer.all_spans()
        assert 0.0 <= inner.duration <= outer.duration

    def test_error_status_and_reraise(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("bad")
        (span,) = tracer.spans()
        assert span.status == "error"
        assert "bad" in span.error
        assert span.finished

    def test_sequential_spans_are_siblings(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [s.name for s in tracer.spans()] == ["a", "b"]

    def test_find_and_set_attribute(self):
        tracer = Tracer()
        with tracer.span("stage") as span:
            span.set_attribute("items", 7)
        assert tracer.find("stage")[0].attributes["items"] == 7
        assert tracer.find("missing") == []

    def test_use_tracer_swaps_global(self):
        before = get_tracer()
        with use_tracer() as tracer:
            assert get_tracer() is tracer
        assert get_tracer() is before


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("reqs_total", "requests", kind="a").inc(3)
        registry.gauge("temp").set(1.5)
        text = render_prometheus(registry)
        assert "# HELP reqs_total requests" in text
        assert "# TYPE reqs_total counter" in text
        assert 'reqs_total{kind="a"} 3' in text
        assert "temp 1.5" in text

    def test_histogram_exposition(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", buckets=[0.1, 1.0])
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        text = render_prometheus(registry)
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c", label='x"y\\z').inc()
        text = render_prometheus(registry)
        assert '\\"' in text and "\\\\" in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestManifest:
    def test_config_fingerprint_stable_and_sensitive(self):
        from repro.config import BorgesConfig

        a = BorgesConfig()
        b = BorgesConfig()
        assert config_fingerprint(a) == config_fingerprint(b)
        assert config_fingerprint(a) != config_fingerprint(
            a.with_features("oid_p")
        )

    def test_round_trip(self, tmp_path):
        with use_registry() as registry, use_tracer() as tracer:
            registry.counter("c").inc(2)
            with tracer.span("stage"):
                pass
            manifest = build_manifest(extra={"note": "round-trip"})
        path = write_manifest(tmp_path / "m.json", manifest)
        loaded = load_manifest(path)
        assert loaded == json.loads(json.dumps(manifest))
        assert loaded["metrics"]["c"]["series"][0]["value"] == 2.0
        assert loaded["spans"][0]["name"] == "stage"
        assert loaded["note"] == "round-trip"

    def test_partial_manifest_without_result(self):
        with use_registry(), use_tracer():
            manifest = build_manifest()
        assert "features" not in manifest and "llm" not in manifest
        assert manifest["schema_version"] == 1


@pytest.fixture(scope="module")
def traced_run():
    """One default pipeline run against a private registry + tracer."""
    with use_registry() as registry, use_tracer() as tracer:
        universe = generate_universe(TEST_UNIVERSE)
        pipeline = BorgesPipeline(universe.whois, universe.pdb, universe.web)
        result = pipeline.run()
        yield pipeline, result, registry, tracer


class TestPipelineInstrumentation:
    def test_spans_for_all_four_features(self, traced_run):
        _, _, _, tracer = traced_run
        names = {span.name for span in tracer.all_spans()}
        for feature in ALL_FEATURES:
            assert f"feature.{feature}" in names
        assert "feature.oid_w" in names
        assert "pipeline.merge" in names

    def test_llm_metrics_match_client(self, traced_run):
        pipeline, _, registry, _ = traced_run
        usage = pipeline.client.total_usage
        assert registry.value(
            "llm_tokens_total", kind="prompt"
        ) == usage.prompt_tokens
        assert registry.value(
            "llm_tokens_total", kind="completion"
        ) == usage.completion_tokens
        assert registry.value(
            "llm_requests_total", backend=pipeline.client.backend_name
        ) == pipeline.client.request_count

    def test_cache_miss_counter_matches_cache_stats(self, traced_run):
        pipeline, _, registry, _ = traced_run
        stats = pipeline.client.cache_stats()
        assert registry.value(
            "llm_cache_events_total", result="miss"
        ) == stats["misses"]

    def test_web_metrics_recorded(self, traced_run):
        _, _, registry, _ = traced_run
        assert registry.value("web_fetch_total") > 0
        assert registry.value("web_resolve_total", outcome="ok") > 0

    def test_result_diagnostics_surface_cache_stats(self, traced_run):
        pipeline, result, _, _ = traced_run
        assert result.diagnostics["llm_cache"] == pipeline.client.cache_stats()
        assert result.diagnostics["scraper"]["resolved"] > 0

    def test_org_gauge_matches_mapping(self, traced_run):
        _, result, registry, _ = traced_run
        assert registry.value("pipeline_orgs") == len(result.mapping)


class TestAcceptanceManifest:
    """The ISSUE's acceptance criterion: context build → manifest export."""

    def test_default_context_manifest_complete(self, tmp_path):
        with use_registry(), use_tracer():
            ctx = ExperimentContext.build(TEST_UNIVERSE)
            manifest = build_manifest(
                config=ctx.pipeline.config,
                result=ctx.result,
                client=ctx.pipeline.client,
            )
        document = load_manifest(
            write_manifest(tmp_path / "run.json", manifest)
        )
        for feature in ALL_FEATURES:
            assert document["features"][feature]["duration_seconds"] is not None
            assert document["features"][feature]["duration_seconds"] >= 0.0
        usage = ctx.pipeline.client.total_usage
        assert document["llm"]["prompt_tokens"] == usage.prompt_tokens
        assert document["llm"]["completion_tokens"] == usage.completion_tokens
        assert document["llm"]["total_tokens"] == usage.total_tokens
        assert "hit_rate" in document["llm"]["cache"]
        assert 0.0 <= document["llm"]["cache"]["hit_rate"] <= 1.0
        assert document["org_count"] == len(ctx.result.mapping)
        assert document["config"]["fingerprint"] == config_fingerprint(
            ctx.pipeline.config
        )

    def test_second_run_shows_cache_hits(self):
        with use_registry(), use_tracer():
            universe = generate_universe(TEST_UNIVERSE)
            pipeline = BorgesPipeline(
                universe.whois, universe.pdb, universe.web
            )
            pipeline.run()
            pipeline.run()
            manifest = build_manifest(client=pipeline.client)
        assert manifest["llm"]["cache"]["hits"] > 0
        assert manifest["llm"]["cache"]["hit_rate"] > 0.0


class TestTelemetryCLI:
    ARGS = ["--seed", "7", "--orgs", "400"]

    def test_telemetry_command(self, capsys):
        with use_registry(), use_tracer():
            assert main(self.ARGS + ["telemetry"]) == 0
        out = capsys.readouterr().out
        assert "stage timings:" in out
        assert "feature.notes_aka" in out
        assert "llm cache:" in out

    def test_telemetry_prometheus_flag(self, capsys):
        with use_registry(), use_tracer():
            assert main(self.ARGS + ["telemetry", "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE llm_requests_total counter" in out

    def test_run_telemetry_out_writes_manifest(self, tmp_path, capsys):
        path = tmp_path / "manifest.json"
        with use_registry(), use_tracer():
            assert main(
                self.ARGS + ["--telemetry-out", str(path), "run"]
            ) == 0
        out = capsys.readouterr().out
        assert "llm cache:" in out
        document = load_manifest(path)
        assert document["org_count"] > 0
        assert document["features"]["rr"]["duration_seconds"] is not None

    def test_experiment_telemetry_out_partial_manifest(self, tmp_path, capsys):
        path = tmp_path / "exp.json"
        with use_registry(), use_tracer():
            assert main(
                self.ARGS + ["--telemetry-out", str(path), "experiment", "table3"]
            ) == 0
        document = load_manifest(path)
        span_names = {s["name"] for s in document["spans"]}
        assert "experiment.table3" in span_names
