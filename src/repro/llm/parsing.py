"""Structured-output format instructions and response parsing.

The extraction prompt asks the model to answer in a small JSON envelope
(the ``{format_instructions}`` placeholder of Listing 2); this module owns
that contract on both sides — rendering the instructions and parsing the
model's reply back into typed results, tolerating the usual LLM quirks
(code fences, leading prose).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import List, Tuple

from ..errors import LLMResponseError
from ..types import ASN

#: Instructions injected into Listing 2's ``{format_instructions}`` slot.
EXTRACTION_FORMAT_INSTRUCTIONS = """\
The output should be a JSON object with exactly these keys:
{"sibling_asns": [<integers>], "reasoning": "<string>"}
Use an empty list when no sibling AS is reported."""

_JSON_BLOCK_RE = re.compile(r"\{.*\}", re.DOTALL)
_FENCE_RE = re.compile(r"```(?:json)?\s*(.*?)```", re.DOTALL)


@dataclass(frozen=True)
class ExtractionResult:
    """Parsed output of the notes/aka information-extraction stage."""

    sibling_asns: Tuple[ASN, ...]
    reasoning: str = ""

    @property
    def found(self) -> bool:
        return bool(self.sibling_asns)


@dataclass(frozen=True)
class ClassifierVerdict:
    """Parsed output of the favicon classifier (Listing 3).

    ``is_company`` follows the paper's decision: a telecommunications
    company (or subsidiary) groups its URLs; a hosting technology or an
    "I don't know" does not.
    """

    answer: str
    is_company: bool

    @property
    def is_unknown(self) -> bool:
        return not self.is_company and self.answer.lower() == "i don't know"


def render_extraction_reply(asns: List[int], reasoning: str) -> str:
    """Serialize an extraction result the way the model would reply."""
    return json.dumps(
        {"sibling_asns": sorted(set(int(a) for a in asns)), "reasoning": reasoning}
    )


def parse_extraction_reply(raw: str) -> ExtractionResult:
    """Parse a model reply into an :class:`ExtractionResult`.

    Accepts raw JSON, fenced JSON, or JSON embedded in prose.  Raises
    :class:`~repro.errors.LLMResponseError` when nothing parseable exists.
    """
    payload = _extract_json_object(raw)
    asns_field = payload.get("sibling_asns")
    if not isinstance(asns_field, list):
        raise LLMResponseError("missing sibling_asns list", raw_output=raw)
    asns: List[ASN] = []
    for item in asns_field:
        try:
            asns.append(int(item))
        except (TypeError, ValueError):
            raise LLMResponseError(
                f"non-integer sibling ASN {item!r}", raw_output=raw
            ) from None
    reasoning = str(payload.get("reasoning", "") or "")
    return ExtractionResult(
        sibling_asns=tuple(sorted(set(asns))), reasoning=reasoning
    )


#: Terms in a classifier reply that indicate a technology, not a company.
_TECHNOLOGY_TERMS = (
    "bootstrap", "wordpress", "godaddy", "ixc", "wix", "framework",
    "hosting technology", "cms", "template",
)


def parse_classifier_reply(raw: str) -> ClassifierVerdict:
    """Parse the one-line classifier answer (Listing 3's contract).

    The prompt instructs: reply *only* with a company name, a technology
    name, or "I don't know".  Company ⇒ group; anything else ⇒ don't.
    """
    answer = raw.strip().strip(".").strip()
    if not answer:
        raise LLMResponseError("empty classifier reply", raw_output=raw)
    lowered = answer.lower()
    if lowered in ("i don't know", "i dont know", "unknown"):
        return ClassifierVerdict(answer="I don't know", is_company=False)
    if any(term in lowered for term in _TECHNOLOGY_TERMS):
        return ClassifierVerdict(answer=answer, is_company=False)
    return ClassifierVerdict(answer=answer, is_company=True)


def _extract_json_object(raw: str) -> dict:
    """Find and decode the first JSON object in *raw*."""
    candidates: List[str] = []
    fenced = _FENCE_RE.search(raw)
    if fenced:
        candidates.append(fenced.group(1))
    block = _JSON_BLOCK_RE.search(raw)
    if block:
        candidates.append(block.group(0))
    candidates.append(raw)
    for candidate in candidates:
        try:
            payload = json.loads(candidate.strip())
        except json.JSONDecodeError:
            continue
        if isinstance(payload, dict):
            return payload
    raise LLMResponseError("no JSON object in model reply", raw_output=raw)
