"""Tests for the networkx clique-graph view of a mapping."""

import networkx as nx
import pytest

from repro.core.mapping import OrgMapping
from repro.metrics.graph import (
    graph_org_factor,
    graph_stats,
    is_valid_clique_graph,
    mapping_to_graph,
)
from repro.metrics import org_factor_from_mapping


def small_mapping():
    return OrgMapping(
        universe=[1, 2, 3, 4, 5, 6, 7],
        clusters=[{1, 2, 3}, {4, 5}],
        org_names={1: "Trio", 4: "Duo"},
    )


class TestGraphConstruction:
    def test_every_asn_is_a_node(self):
        graph = mapping_to_graph(small_mapping())
        assert set(graph.nodes) == {1, 2, 3, 4, 5, 6, 7}

    def test_cliques_within_orgs(self):
        graph = mapping_to_graph(small_mapping())
        assert graph.has_edge(1, 2) and graph.has_edge(1, 3) and graph.has_edge(2, 3)
        assert graph.has_edge(4, 5)

    def test_no_edges_across_orgs(self):
        graph = mapping_to_graph(small_mapping())
        assert not graph.has_edge(3, 4)
        assert not graph.has_edge(1, 6)

    def test_singletons_isolated(self):
        graph = mapping_to_graph(small_mapping())
        assert graph.degree(6) == 0
        assert graph.degree(7) == 0

    def test_node_attributes(self):
        graph = mapping_to_graph(small_mapping())
        assert graph.nodes[2]["org_name"] == "Trio"
        assert graph.nodes[1]["org"] == graph.nodes[3]["org"]
        assert graph.nodes[1]["org"] != graph.nodes[4]["org"]

    def test_structure_is_valid_clique_graph(self):
        assert is_valid_clique_graph(mapping_to_graph(small_mapping()))

    def test_invalid_graph_detected(self):
        graph = nx.path_graph(4)  # a path is not a clique
        assert not is_valid_clique_graph(graph)


class TestGraphTheta:
    def test_matches_size_vector_theta(self):
        mapping = small_mapping()
        graph = mapping_to_graph(mapping)
        assert graph_org_factor(graph) == pytest.approx(
            org_factor_from_mapping(mapping)
        )

    def test_cross_validates_on_real_mapping(self, borges_mapping):
        graph = mapping_to_graph(borges_mapping)
        assert graph_org_factor(graph) == pytest.approx(
            org_factor_from_mapping(borges_mapping)
        )
        assert is_valid_clique_graph(graph)

    def test_stats_consistent(self):
        graph = mapping_to_graph(small_mapping())
        stats = graph_stats(graph)
        assert stats["nodes"] == 7
        assert stats["organizations"] == 4
        assert stats["edges"] == stats["expected_clique_edges"] == 4
        assert stats["largest_organization"] == 3
