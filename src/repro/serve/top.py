"""``borges top``: a live terminal view of a running serve process.

Polls the server's own public surfaces — ``/metrics`` (Prometheus text),
``/v1/admin/slo`` and ``/healthz`` — and renders a compact dashboard:
request rates per status code (computed as counter deltas between
polls), per-endpoint latency quantiles off the serve histograms,
admission-gate occupancy, SLO burn rates with firing/clear alert state,
and process gauges from the runtime sampler.  No dependencies beyond
stdlib: the Prometheus parser below understands exactly the exposition
format :mod:`repro.obs.prometheus` emits.

:func:`run_top` is the loop; ``iterations``/``stream`` parameters exist
so tests can drive one refresh into a buffer instead of a terminal.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, TextIO, Tuple, Union
from urllib.error import URLError
from urllib.request import urlopen

LabelKey = Tuple[Tuple[str, str], ...]

#: ANSI "clear screen + home" used between refreshes.
CLEAR = "\x1b[2J\x1b[H"


def parse_prometheus_text(text: str) -> Dict[str, Dict[LabelKey, float]]:
    """Parse Prometheus text exposition into ``{name: {labels: value}}``.

    Minimal by design: handles the ``name{label="v",...} value`` and
    ``name value`` line forms our own renderer produces, skips comments
    and anything it cannot parse.  Histogram series arrive under their
    ``_bucket``/``_sum``/``_count`` suffixed names.
    """
    out: Dict[str, Dict[LabelKey, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            metric_part, value_part = line.rsplit(" ", 1)
            value = float(value_part)
        except ValueError:
            continue
        labels: List[Tuple[str, str]] = []
        name = metric_part
        if "{" in metric_part and metric_part.endswith("}"):
            name, _, label_blob = metric_part.partition("{")
            for pair in label_blob[:-1].split(","):
                if not pair:
                    continue
                key, _, raw = pair.partition("=")
                labels.append((key.strip(), raw.strip().strip('"')))
        out.setdefault(name, {})[tuple(sorted(labels))] = value
    return out


def _fetch(url: str, timeout: float = 2.0) -> str:
    with urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8")


class TopView:
    """One serve process's polled state and its rendered dashboard."""

    def __init__(self, base_url: str) -> None:
        self.base_url = base_url.rstrip("/")
        self._previous: Optional[Dict[str, Dict[LabelKey, float]]] = None
        self._previous_at = 0.0

    # -- polling -----------------------------------------------------------

    def poll(self) -> Dict[str, object]:
        """One round of scrapes; returns the raw state for rendering."""
        state: Dict[str, object] = {"at": time.time(), "error": ""}
        try:
            metrics = parse_prometheus_text(
                _fetch(f"{self.base_url}/metrics")
            )
            state["metrics"] = metrics
        except (URLError, OSError, ValueError) as exc:
            state["error"] = f"cannot scrape {self.base_url}/metrics: {exc}"
            return state
        for key, path in (("slo", "/v1/admin/slo"), ("health", "/healthz")):
            try:
                state[key] = json.loads(_fetch(f"{self.base_url}{path}"))
            except (URLError, OSError, ValueError):
                state[key] = None  # endpoint absent or not ready: optional
        return state

    # -- rendering ---------------------------------------------------------

    def _rates(
        self, metrics: Dict[str, Dict[LabelKey, float]], elapsed: float
    ) -> List[str]:
        lines = []
        codes = metrics.get("serve_http_requests_total", {})
        if codes:
            total_rate = 0.0
            parts = []
            for labels, value in sorted(codes.items()):
                previous = 0.0
                if self._previous is not None:
                    previous = self._previous.get(
                        "serve_http_requests_total", {}
                    ).get(labels, 0.0)
                rate = max(0.0, value - previous) / elapsed if elapsed else 0.0
                total_rate += rate
                code = dict(labels).get("code", "?")
                parts.append(f"{code}:{rate:7.1f}/s")
            lines.append(f"  http  {total_rate:8.1f} req/s   " + "  ".join(parts))
        return lines

    @staticmethod
    def _slo_lines(slo: Optional[dict]) -> List[str]:
        if not slo:
            return ["  (no SLO tracker configured)"]
        lines = []
        for objective in ("availability", "latency"):
            section = slo.get(objective)
            if not isinstance(section, dict):
                continue
            windows = section.get("windows", {})
            fast = windows.get("fast", {})
            slow = windows.get("slow", {})
            alert = section.get("alert", {})
            marker = "FIRING" if alert.get("state") == "firing" else "clear "
            lines.append(
                f"  {objective:<13} burn fast {fast.get('burn_rate', 0):7.2f}"
                f"  slow {slow.get('burn_rate', 0):7.2f}"
                f"  good {fast.get('good_fraction', 1.0):.4f}"
                f"  [{marker}]"
            )
        return lines

    @staticmethod
    def _gauge_lines(metrics: Dict[str, Dict[LabelKey, float]]) -> List[str]:
        def scalar(name: str) -> float:
            series = metrics.get(name, {})
            return next(iter(series.values()), 0.0) if series else 0.0

        rss_mib = scalar("process_resident_memory_bytes") / (1 << 20)
        lines = [
            f"  rss {rss_mib:8.1f} MiB   threads {scalar('process_threads'):3.0f}"
            f"   generation {scalar('serve_snapshot_generation'):3.0f}"
        ]
        inflight = scalar("serve_admission_inflight")
        queued = scalar("serve_admission_queue_depth")
        shed = scalar("serve_admission_shed_total")
        lines.append(
            f"  admission  inflight {inflight:4.0f}  queued {queued:4.0f}"
            f"  shed(total) {shed:6.0f}"
        )
        return lines

    def render(self, state: Dict[str, object]) -> str:
        """The dashboard for one polled *state*, as a printable string."""
        at = state["at"]
        lines = [
            f"borges top — {self.base_url} — "
            f"{time.strftime('%H:%M:%S', time.localtime(at))}"  # type: ignore[arg-type]
        ]
        if state.get("error"):
            lines.append(f"  {state['error']}")
            return "\n".join(lines) + "\n"
        metrics = state["metrics"]  # type: ignore[assignment]
        elapsed = (
            at - self._previous_at if self._previous_at else 0.0
        )  # type: ignore[operator]
        health = state.get("health")
        if isinstance(health, dict):
            lines.append(
                f"  status {health.get('status', '?')}"
                f"   orgs {health.get('orgs', 0)}"
                f"   asns {health.get('asns', 0)}"
            )
            # Swap-health posture: a stale/degraded snapshot and how we
            # got here (failed swaps, rollbacks walked).
            flags = []
            if health.get("stale"):
                flags.append("STALE")
            if health.get("swap_failures"):
                flags.append(f"swap-failures {health['swap_failures']:.0f}")
            if health.get("rollback_count"):
                flags.append(f"rollbacks {health['rollback_count']:.0f}")
            flags.append(
                f"rollback-depth {health.get('rollback_generations', 0):.0f}"
            )
            lines.append("  swaps  " + "  ".join(flags))
            watch = health.get("watch")
            if isinstance(watch, dict):
                posture = "HALTED" if watch.get("halted") else (
                    "running" if watch.get("running") else "stopped"
                )
                lines.append(
                    f"  watch  {posture}"
                    f"   consecutive-failures "
                    f"{watch.get('consecutive_failures', 0):.0f}"
                )
                shards = watch.get("shard_posture")
                if isinstance(shards, dict):
                    failed = shards.get("failed") or []
                    lines.append(
                        f"  shards {shards.get('ok', 0):.0f}"
                        f"/{shards.get('shards', 0):.0f} ok"
                        f"   retries {shards.get('retries', 0):.0f}"
                        f"   resumed "
                        f"{len(shards.get('resumed') or [])}"
                        + (
                            f"   QUARANTINED {sorted(failed)}"
                            if failed
                            else ""
                        )
                    )
        lines.append("")
        lines.append("rates")
        lines.extend(
            self._rates(metrics, elapsed)  # type: ignore[arg-type]
            or ["  (no traffic yet)"]
        )
        lines.append("")
        lines.append("slo")
        lines.extend(self._slo_lines(state.get("slo")))  # type: ignore[arg-type]
        lines.append("")
        lines.append("process")
        lines.extend(self._gauge_lines(metrics))  # type: ignore[arg-type]
        self._previous = metrics  # type: ignore[assignment]
        self._previous_at = at  # type: ignore[assignment]
        return "\n".join(lines) + "\n"


class PoolTopView:
    """Per-worker dashboard for a :class:`~repro.serve.shm.WorkerPool`.

    Reads the pool's state directory — ``pool.json`` for the supervisor
    posture and ``worker-N.json`` for each worker's pid and private
    admin port — then scrapes every worker's own ``/metrics``.  Rendered
    as one row per worker (pid, generation, request rate from
    ``serve_http_requests_total`` deltas, admission in-flight) plus a
    machine-total line, which is the number the whole multi-worker tier
    exists to move.
    """

    def __init__(self, state_dir: Union[str, Path]) -> None:
        self.state_dir = Path(state_dir)
        self._previous: Dict[int, Tuple[float, float]] = {}  # worker → (total, at)

    def _read_json(self, name: str) -> Optional[dict]:
        try:
            document = json.loads(
                (self.state_dir / name).read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            return None
        return document if isinstance(document, dict) else None

    def poll(self) -> Dict[str, object]:
        """Pool state + one ``/metrics`` scrape per live worker."""
        state: Dict[str, object] = {"at": time.time(), "error": ""}
        pool = self._read_json("pool.json")
        if pool is None:
            state["error"] = f"no pool state at {self.state_dir / 'pool.json'}"
            return state
        state["pool"] = pool
        workers: List[Dict[str, object]] = []
        for index in range(int(pool.get("workers", 0))):
            worker = self._read_json(f"worker-{index}.json") or {
                "worker": index
            }
            admin_port = worker.get("admin_port")
            if admin_port:
                host = str(pool.get("host", "127.0.0.1"))
                try:
                    worker["metrics"] = parse_prometheus_text(
                        _fetch(f"http://{host}:{admin_port}/metrics")
                    )
                except (URLError, OSError, ValueError) as exc:
                    worker["scrape_error"] = str(exc)
            workers.append(worker)
        state["workers"] = workers
        return state

    def render(self, state: Dict[str, object]) -> str:
        at = state["at"]
        lines = [
            f"borges top — pool {self.state_dir} — "
            f"{time.strftime('%H:%M:%S', time.localtime(at))}"  # type: ignore[arg-type]
        ]
        if state.get("error"):
            lines.append(f"  {state['error']}")
            return "\n".join(lines) + "\n"
        pool = state["pool"]  # type: ignore[assignment]
        lines.append(
            f"  supervisor pid {pool.get('supervisor_pid', '?')}"  # type: ignore[union-attr]
            f"   {pool.get('host')}:{pool.get('port')}"  # type: ignore[union-attr]
            f"   generation {pool.get('generation', 0)}"  # type: ignore[union-attr]
            f"   respawns {pool.get('respawns', 0)}"  # type: ignore[union-attr]
        )
        lines.append("")
        lines.append(
            "  worker      pid   gen       rps   in-flight"
        )
        total_rate = 0.0
        for worker in state.get("workers", []):  # type: ignore[union-attr]
            index = int(worker.get("worker", -1))
            metrics = worker.get("metrics")
            if not isinstance(metrics, dict):
                reason = worker.get("scrape_error", "no state file")
                lines.append(f"  {index:>6}        —     —         —   ({reason})")
                continue
            requests = sum(
                metrics.get("serve_http_requests_total", {}).values()
            )
            previous_total, previous_at = self._previous.get(
                index, (requests, 0.0)
            )
            elapsed = at - previous_at if previous_at else 0.0  # type: ignore[operator]
            rate = (
                max(0.0, requests - previous_total) / elapsed
                if elapsed
                else 0.0
            )
            self._previous[index] = (requests, at)  # type: ignore[assignment]
            total_rate += rate
            inflight_series = metrics.get("serve_admission_inflight", {})
            inflight = next(iter(inflight_series.values()), 0.0)
            lines.append(
                f"  {index:>6}  {worker.get('pid', 0):>7}"
                f"  {worker.get('generation', 0):>4}"
                f"  {rate:8.1f}   {inflight:9.0f}"
            )
        lines.append(f"  total              {total_rate:14.1f} req/s (machine)")
        return "\n".join(lines) + "\n"


def run_top(
    host: str = "127.0.0.1",
    port: int = 8080,
    interval: float = 2.0,
    iterations: int = 0,
    clear: bool = True,
    stream: Optional[TextIO] = None,
    pool: Optional[Union[str, Path]] = None,
) -> int:
    """Poll and render until interrupted (or *iterations* refreshes).

    ``iterations=0`` means forever; tests pass a finite count and a
    ``stream`` buffer.  Returns a process exit code: 1 when the first
    poll cannot reach the server at all (one-line diagnosis, no
    dashboard), 0 otherwise.  Scrape failures *after* a successful first
    poll render inline instead — a restarting server is worth watching.

    With *pool* set to a :class:`~repro.serve.shm.WorkerPool` state
    directory the dashboard switches to the per-worker view
    (:class:`PoolTopView`) and ``host``/``port`` are ignored.
    """
    out = stream if stream is not None else sys.stdout
    if pool is not None:
        view: Union[TopView, PoolTopView] = PoolTopView(pool)
        unreachable = f"no worker pool at {pool}"
    else:
        view = TopView(f"http://{host}:{port}")
        unreachable = f"server unreachable at {host}:{port}"
    count = 0
    try:
        while True:
            state = view.poll()
            if count == 0 and state.get("error"):
                out.write(unreachable + "\n")
                out.flush()
                return 1
            rendered = view.render(state)
            if clear:
                out.write(CLEAR)
            out.write(rendered)
            out.flush()
            count += 1
            if iterations and count >= iterations:
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0
