"""Seeded Zipfian load generation for the query service.

Real AS-lookup traffic is heavily skewed — a handful of hypergiant and
tier-1 ASNs absorb most queries — so the generator draws ASNs from a
Zipf(s) distribution over a shuffled rank order.  Everything is seeded:
the same ``(seed, universe)`` pair replays the identical request stream,
which is what lets the throughput benchmark compare runs.

Three driving modes:

* :meth:`LoadGenerator.run` — the original single-threaded replay, used
  by the throughput benchmarks (optionally under per-request tracing).
* :meth:`LoadGenerator.run_overload` — many worker threads hammering the
  service at once (optionally synchronized into thundering-herd waves)
  to exercise the admission gate.  The report classifies every response
  (``2xx`` / ``429`` / ``4xx`` / ``5xx`` / ``deadline``) and records
  latency percentiles for *admitted* requests only, which is the number
  the overload benchmark holds to its p99 bound.  With ``target=`` the
  same workers drive a live HTTP server instead of the in-process
  service, all sharing one bounded :class:`HttpConnectionPool` — N
  worker threads reuse ~pool-size kernel connections instead of opening
  one ephemeral port per request.
* :func:`run_pipelined` — a raw-socket HTTP/1.1 pipelining client for
  aggregate-throughput measurement against a multi-worker pool, where
  ``http.client``'s per-response parsing would make the *client* the
  bottleneck.

The multi-threaded report carries per-worker rows alongside the
aggregate, so a multi-process serve tier can be read as "machine
throughput" and "per-worker share" from one run.
"""

from __future__ import annotations

import bisect
import heapq
import http.client
import random
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple
from urllib.parse import urlparse

from ..logutil import get_logger

from ..errors import (
    ConfigError,
    DeadlineExceededError,
    OverloadedError,
    ReproError,
    UnknownASNError,
)
from ..obs.context import (
    TraceContext,
    reset_trace_context,
    set_trace_context,
)
from ..obs.registry import percentile
from ..types import ASN
from .service import QueryService

_LOG = get_logger("serve.loadgen")

#: Slowest traced requests reported per run (trace ID + latency each).
SLOWEST_REPORTED = 5

#: Pre-formatted 3-hex-char trace-ID suffixes.  The traced hot loop
#: builds each trace ID by concatenating cached pieces instead of
#: formatting an integer per request — concatenation is ~2x cheaper and
#: the table is a one-time ~200 KB cost at import.
_TRACE_SUFFIXES = tuple(f"{i:03x}" for i in range(4096))

#: Response classes tracked by :class:`LoadReport`.  ``deadline`` is kept
#: distinct from ``5xx``: a deadline rejection is the gate working as
#: designed, a ``5xx`` is the service failing.
RESPONSE_CLASSES = ("2xx", "429", "4xx", "5xx", "deadline")


class ZipfianSampler:
    """Draw items with Zipf(s) rank frequencies via inverse-CDF lookup."""

    def __init__(
        self, items: Sequence[ASN], s: float = 1.1, seed: int = 42
    ) -> None:
        if not items:
            raise ConfigError("cannot sample from an empty item set")
        if s <= 0:
            raise ConfigError(f"zipf exponent must be positive: {s}")
        self._rng = random.Random(seed)
        # Shuffle so "rank 1" is not simply the lowest ASN — which ASNs
        # are hot is itself part of the seeded scenario.
        self._items: List[ASN] = list(items)
        self._rng.shuffle(self._items)
        cdf: List[float] = []
        total = 0.0
        for rank in range(1, len(self._items) + 1):
            total += 1.0 / (rank ** s)
            cdf.append(total)
        self._cdf = [value / total for value in cdf]

    def sample(self) -> ASN:
        u = self._rng.random()
        return self._items[bisect.bisect_left(self._cdf, u)]

    def stream(self, n: int) -> Iterator[ASN]:
        for _ in range(n):
            yield self.sample()


# ``percentile`` now lives in :mod:`repro.obs.registry` (shared with the
# histogram summary API); imported above so existing
# ``from repro.serve.loadgen import percentile`` callers keep working.


def _parse_target(target: str) -> Tuple[str, int]:
    """``host:port`` (optionally with an ``http://`` scheme) → (host, port)."""
    parsed = urlparse(target if "//" in target else f"//{target}")
    if not parsed.hostname or not parsed.port:
        raise ConfigError(f"load target must be host:port, got {target!r}")
    return parsed.hostname, parsed.port


class HttpConnectionPool:
    """A bounded, shared pool of keep-alive connections to one server.

    N load-worker threads previously each opened one connection *per
    request*; against a 16-worker bench that exhausts the ephemeral
    port range (every closed connection parks in TIME_WAIT).  Here the
    threads share at most *size* persistent ``http.client`` connections:
    :meth:`request` checks one out (blocking when all are busy), issues
    the request, reads the **whole** body (required to keep the
    keep-alive stream in sync), and returns the connection to the pool.

    A connection that fails mid-request is discarded and replaced with
    a fresh one, up to :attr:`RETRIES` attempts — a server worker being
    hard-killed drops its connections; retrying on a new connection
    lands on a surviving worker, which is exactly the client behaviour
    the churn test relies on.  Failures are counted in
    :attr:`conn_errors`.
    """

    RETRIES = 3

    def __init__(
        self, host: str, port: int, size: int = 8, timeout: float = 10.0
    ) -> None:
        if size < 1:
            raise ConfigError(f"pool size must be >= 1: {size}")
        self.host = host
        self.port = port
        self.size = size
        self.timeout = timeout
        self._slots = threading.BoundedSemaphore(size)
        self._idle: List[http.client.HTTPConnection] = []
        self._lock = threading.Lock()
        self.created = 0
        self.conn_errors = 0

    @classmethod
    def for_target(cls, target: str, size: int = 8, timeout: float = 10.0):
        host, port = _parse_target(target)
        return cls(host, port, size=size, timeout=timeout)

    def _connect(self) -> http.client.HTTPConnection:
        with self._lock:
            self.created += 1
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def request(self, method: str, path: str) -> Tuple[int, bytes]:
        """Issue one request; returns ``(status, body)``.

        Raises :class:`ConnectionError` after :attr:`RETRIES` failed
        attempts (each on a fresh connection).
        """
        self._slots.acquire()
        try:
            with self._lock:
                conn = self._idle.pop() if self._idle else None
            if conn is None:
                conn = self._connect()
            last_error: Optional[Exception] = None
            for _ in range(self.RETRIES):
                try:
                    conn.request(method, path)
                    response = conn.getresponse()
                    body = response.read()
                except (OSError, http.client.HTTPException) as exc:
                    last_error = exc
                    conn.close()
                    with self._lock:
                        self.conn_errors += 1
                    conn = self._connect()
                    continue
                with self._lock:
                    self._idle.append(conn)
                return response.status, body
            conn.close()
            raise ConnectionError(
                f"request to {self.host}:{self.port}{path} failed after "
                f"{self.RETRIES} attempts: {last_error}"
            )
        finally:
            self._slots.release()

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
        for conn in idle:
            conn.close()


def run_pipelined(
    target: str,
    paths: Sequence[str],
    repeat: int = 1,
    batch: int = 64,
    timeout: float = 30.0,
) -> Dict[str, object]:
    """Drive *target* with pipelined HTTP/1.1 GETs over one raw socket.

    Writes *batch* requests back-to-back, then drains that batch's
    responses before sending the next, ``repeat`` passes over *paths*.
    Responses are counted (and status-classified) by scanning for the
    ``HTTP/1.1 `` status-line marker rather than fully parsed — the
    point of this client is that its per-response cost is a ``find``,
    so a single client thread can saturate several server processes and
    the measured number is the *server's* aggregate throughput, not the
    client's parsing speed.  Returns ``{requests, ok, errors,
    elapsed_seconds, qps}``.
    """
    host, port = _parse_target(target)
    marker = b"HTTP/1.1 "
    requests = 0
    ok = 0
    errors = 0
    started = time.perf_counter()
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        prefix = f"Host: {host}:{port}\r\nConnection: keep-alive\r\n\r\n"
        encoded = [
            f"GET {path} HTTP/1.1\r\n{prefix}".encode("ascii")
            for path in paths
        ]
        buffer = b""
        for _ in range(repeat):
            for start in range(0, len(encoded), batch):
                chunk = encoded[start:start + batch]
                sock.sendall(b"".join(chunk))
                requests += len(chunk)
                seen = 0
                while seen < len(chunk):
                    data = sock.recv(1 << 16)
                    if not data:
                        raise ConnectionError(
                            "server closed mid-pipeline after "
                            f"{requests - len(chunk) + seen} responses"
                        )
                    buffer += data
                    position = 0
                    while True:
                        found = buffer.find(marker, position)
                        if found < 0:
                            break
                        status = buffer[found + 9:found + 12]
                        if status == b"200":
                            ok += 1
                        elif not status.startswith(b"4"):
                            errors += 1
                        seen += 1
                        position = found + len(marker)
                    # Keep a marker-minus-one tail so a status line split
                    # across reads is still found, but an already-counted
                    # marker ending the buffer cannot be counted twice.
                    buffer = buffer[max(0, len(buffer) - (len(marker) - 1)):]
    elapsed = time.perf_counter() - started
    return {
        "requests": requests,
        "ok": ok,
        "errors": errors,
        "elapsed_seconds": round(elapsed, 6),
        "qps": round(requests / elapsed, 1) if elapsed else 0.0,
    }


@dataclass
class LoadReport:
    """What one load run did and how fast the service answered."""

    requests: int
    ok: int
    not_found: int
    elapsed_seconds: float
    mix: Dict[str, int] = field(default_factory=dict)
    #: Response-class counts (``2xx``/``429``/``4xx``/``5xx``/``deadline``).
    #: Empty for legacy single-threaded runs that predate classification.
    classes: Dict[str, int] = field(default_factory=dict)
    #: Latency percentiles over *admitted* (2xx/4xx) requests, seconds.
    admitted_p50: float = 0.0
    admitted_p99: float = 0.0
    #: Slowest traced requests (``{trace_id, op, latency_ms}``), slowest
    #: first.  Empty unless the run propagated trace contexts.
    slowest: List[Dict[str, object]] = field(default_factory=list)
    #: Connection-level failures recovered by retry (HTTP target runs).
    conn_errors: int = 0
    #: Per-worker-thread rows (``{worker, requests, ok, qps, classes}``)
    #: from multi-threaded runs; the top-level figures are the machine
    #: aggregate across these.
    per_worker: List[Dict[str, object]] = field(default_factory=list)

    @property
    def qps(self) -> float:
        return self.requests / self.elapsed_seconds if self.elapsed_seconds else 0.0

    @property
    def shed(self) -> int:
        return self.classes.get("429", 0)

    @property
    def server_errors(self) -> int:
        return self.classes.get("5xx", 0)

    def to_json(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "requests": self.requests,
            "ok": self.ok,
            "not_found": self.not_found,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "qps": round(self.qps, 1),
            "mix": dict(self.mix),
        }
        if self.classes:
            out["classes"] = dict(self.classes)
            out["admitted_p50_ms"] = round(self.admitted_p50 * 1e3, 3)
            out["admitted_p99_ms"] = round(self.admitted_p99 * 1e3, 3)
        if self.slowest:
            out["slowest"] = [dict(entry) for entry in self.slowest]
        if self.conn_errors:
            out["conn_errors"] = self.conn_errors
        if self.per_worker:
            out["aggregate_qps"] = round(self.qps, 1)
            out["per_worker"] = [dict(entry) for entry in self.per_worker]
        return out


class LoadGenerator:
    """Drive a :class:`QueryService` with a seeded Zipfian request mix."""

    def __init__(
        self,
        service: QueryService,
        asns: Sequence[ASN],
        seed: int = 42,
        zipf_s: float = 1.1,
    ) -> None:
        self.service = service
        self.asns = list(asns)
        self.seed = seed
        self.zipf_s = zipf_s
        self.sampler = ZipfianSampler(asns, s=zipf_s, seed=seed)
        self._rng = random.Random(seed ^ 0x5F5E100)

    def _run_context(self) -> tuple:
        """(context, trace-id prefix) for a traced run, from the seed.

        Trace IDs are a seeded 96-bit hex prefix plus the request index
        as an 8-hex-char suffix, so a replayed run names its requests
        identically — "the slow request" in one run and its twin in the
        next share a trace ID and can be diffed.  One
        :class:`TraceContext` is installed for the whole run and
        re-stamped per request (see its docstring), and only the short
        suffix is formatted in the hot loop: minting a fresh object,
        contextvar token and 128-bit hex string per request costs more
        than the lookups it decorates.
        """
        rng = random.Random(self.seed ^ 0x7D0C0FFEE)
        prefix = f"{rng.getrandbits(96) or 1:024x}"
        span_id = f"{rng.getrandbits(64) or 1:016x}"
        return TraceContext("", span_id), prefix

    @staticmethod
    def _slowest_entries(heap: List[tuple]) -> List[Dict[str, object]]:
        """Render the slowest-requests heap, dropping sentinel entries."""
        return [
            {
                "trace_id": trace_id,
                "op": op,
                "latency_ms": round(latency * 1e3, 3),
            }
            for latency, trace_id, op in sorted(heap, reverse=True)
            if latency >= 0.0
        ]

    def run(
        self,
        requests: int,
        sibling_fraction: float = 0.0,
        unknown_fraction: float = 0.0,
        trace: bool = False,
    ) -> LoadReport:
        """Issue *requests* lookups; fractions divert some to other ops.

        ``sibling_fraction`` of requests become pairwise sibling checks;
        ``unknown_fraction`` query an ASN outside the universe (the 404
        path), exercising the service's miss accounting.

        With ``trace=True`` every request runs under its own seeded
        :class:`~repro.obs.context.TraceContext` — events the service
        emits while handling it carry the request's trace ID — and the
        report names the trace IDs of the slowest requests, which is how
        an operator goes from "the p99 moved" to a concrete request.

        Traced latency is measured clock-read to clock-read: each
        request's figure includes the generator's own inter-request
        bookkeeping (a few hundred nanoseconds, uniform across requests),
        which keeps the tracing tax inside the throughput budget without
        disturbing the slowest-N ranking.
        """
        ok = 0
        not_found = 0
        mix = {"asn": 0, "siblings": 0, "unknown": 0}
        service = self.service
        sample = self.sampler.sample
        draw = self._rng.random
        perf_counter = time.perf_counter
        context: Optional[TraceContext] = None
        prefix = ""
        token = None
        if trace:
            context, prefix = self._run_context()
            token = set_trace_context(context)
        # Min-heap of (latency, trace_id, op), pre-filled with sentinels
        # so the hot loop is a single compare + (rarely) a pushpop.
        slowest_heap: List[tuple] = [(-1.0, "", "")] * SLOWEST_REPORTED
        suffixes = _TRACE_SUFFIXES
        chunk_prefix = ""
        started = perf_counter()
        t_prev = started
        try:
            for index in range(requests):
                r = draw()
                if trace:
                    # trace_id == prefix + index as 8 hex chars, built
                    # from a per-4096-chunk prefix and a suffix table.
                    low = index & 0xFFF
                    if not low:
                        chunk_prefix = prefix + f"{index >> 12:05x}"
                    context.trace_id = chunk_prefix + suffixes[low]
                if r < unknown_fraction:
                    op = "unknown"
                    mix["unknown"] += 1
                    try:
                        service.lookup_asn(-1)
                        ok += 1
                    except UnknownASNError:
                        not_found += 1
                elif r < unknown_fraction + sibling_fraction:
                    op = "siblings"
                    mix["siblings"] += 1
                    service.siblings(sample(), sample())
                    ok += 1
                else:
                    op = "asn"
                    mix["asn"] += 1
                    service.lookup_asn(sample())
                    ok += 1
                if trace:
                    now = perf_counter()
                    latency = now - t_prev
                    t_prev = now
                    if latency > slowest_heap[0][0]:
                        heapq.heappushpop(
                            slowest_heap, (latency, context.trace_id, op)
                        )
        finally:
            if token is not None:
                reset_trace_context(token)
        elapsed = perf_counter() - started
        slowest = self._slowest_entries(slowest_heap) if trace else []
        return LoadReport(
            requests=requests,
            ok=ok,
            not_found=not_found,
            elapsed_seconds=elapsed,
            mix=mix,
            slowest=slowest,
        )

    # -- overload mode -----------------------------------------------------

    def run_overload(
        self,
        requests: int,
        workers: int = 16,
        herd_size: int = 0,
        unknown_fraction: float = 0.0,
        backoff_seconds: float = 0.005,
        target: Optional[str] = None,
        pool_size: Optional[int] = None,
    ) -> LoadReport:
        """Hammer the service from *workers* threads at once.

        Requests are split evenly across workers, each with its own
        seeded sampler (derived from this generator's seed and the
        worker index, so the aggregate stream is reproducible regardless
        of thread interleaving).  With ``herd_size > 0`` the workers
        synchronize on a barrier every ``herd_size`` requests —
        thundering-herd waves that spike instantaneous concurrency far
        above the average rate.

        Every response is classified: success and not-found are ``2xx``
        and ``4xx``; :class:`~repro.errors.OverloadedError` is ``429``;
        :class:`~repro.errors.DeadlineExceededError` is ``deadline``;
        anything else the service raises counts as ``5xx``.  Latency
        percentiles cover admitted requests only — rejected requests are
        fast by design and would flatter the tail.

        A rejected worker sleeps ``backoff_seconds`` (with seeded jitter)
        before its next request, as a well-behaved client honouring
        ``Retry-After`` would.  Without it the shed workers spin on the
        gate and — under the GIL — starve the very requests that *were*
        admitted, so the measured tail reflects scheduler convoying
        rather than queueing.

        With ``target="host:port"`` the same seeded workers drive a
        live HTTP server through one shared :class:`HttpConnectionPool`
        (sized *pool_size*, default ``min(workers, 8)``): 200 → ``2xx``,
        404 → ``4xx``, 429 → ``429``, 503 with a deadline body →
        ``deadline``, anything else (including requests whose retries
        exhausted) → ``5xx``; recovered connection failures land in
        ``conn_errors``.  The report's ``per_worker`` rows carry each
        thread's own request count and rate; the top-level figures stay
        the machine aggregate.
        """
        if workers < 1:
            raise ConfigError(f"workers must be >= 1: {workers}")
        per_worker = max(1, requests // workers)
        barrier = (
            threading.Barrier(workers) if herd_size > 0 and workers > 1 else None
        )
        pool: Optional[HttpConnectionPool] = None
        if target is not None:
            pool = HttpConnectionPool.for_target(
                target, size=pool_size if pool_size else min(workers, 8)
            )
        lock = threading.Lock()
        classes = {cls: 0 for cls in RESPONSE_CLASSES}
        latencies: List[float] = []
        ok_total = 0
        not_found_total = 0
        worker_rows: List[Optional[Dict[str, object]]] = [None] * workers

        def classify_http(asn: int, local_classes: Dict[str, int]) -> str:
            try:
                status, body = pool.request("GET", f"/v1/asn/{asn}")
            except ConnectionError:
                local_classes["5xx"] += 1
                return "5xx"
            if status == 200:
                local_classes["2xx"] += 1
                return "2xx"
            if status == 429:
                local_classes["429"] += 1
                return "429"
            if status == 503 and b"deadline" in body:
                local_classes["deadline"] += 1
                return "deadline"
            if 400 <= status < 500:
                local_classes["4xx"] += 1
                return "4xx"
            local_classes["5xx"] += 1
            return "5xx"

        def worker(index: int) -> None:
            nonlocal ok_total, not_found_total
            sampler = ZipfianSampler(
                self.asns, s=self.zipf_s, seed=self.seed + 7919 * (index + 1)
            )
            rng = random.Random(self.seed ^ (index << 8))
            local_classes = {cls: 0 for cls in RESPONSE_CLASSES}
            local_latencies: List[float] = []
            ok = 0
            not_found = 0
            worker_started = time.perf_counter()
            for i in range(per_worker):
                if barrier is not None and i % herd_size == 0:
                    try:
                        barrier.wait(timeout=10.0)
                    except threading.BrokenBarrierError:
                        pass  # a worker finished early; keep going solo
                asn = -1 if rng.random() < unknown_fraction else sampler.sample()
                t0 = time.perf_counter()
                if pool is not None:
                    outcome = classify_http(asn, local_classes)
                    if outcome in ("2xx", "4xx"):
                        local_latencies.append(time.perf_counter() - t0)
                        if outcome == "2xx":
                            ok += 1
                        else:
                            not_found += 1
                    elif outcome in ("429", "deadline") and backoff_seconds > 0:
                        time.sleep(backoff_seconds * (0.5 + rng.random()))
                    continue
                try:
                    self.service.lookup_asn(asn)
                    local_latencies.append(time.perf_counter() - t0)
                    local_classes["2xx"] += 1
                    ok += 1
                except UnknownASNError:
                    local_latencies.append(time.perf_counter() - t0)
                    local_classes["4xx"] += 1
                    not_found += 1
                except OverloadedError:
                    local_classes["429"] += 1
                    if backoff_seconds > 0:
                        time.sleep(backoff_seconds * (0.5 + rng.random()))
                except DeadlineExceededError:
                    local_classes["deadline"] += 1
                    if backoff_seconds > 0:
                        time.sleep(backoff_seconds * (0.5 + rng.random()))
                except (ReproError, RuntimeError):
                    # NoSnapshotError or anything unexpected: the client
                    # saw a server failure either way.
                    local_classes["5xx"] += 1
            worker_elapsed = time.perf_counter() - worker_started
            with lock:
                for cls, count in local_classes.items():
                    classes[cls] += count
                latencies.extend(local_latencies)
                ok_total += ok
                not_found_total += not_found
                worker_rows[index] = {
                    "worker": index,
                    "requests": per_worker,
                    "ok": ok,
                    "elapsed_seconds": round(worker_elapsed, 6),
                    "qps": round(
                        per_worker / worker_elapsed if worker_elapsed else 0.0,
                        1,
                    ),
                    "classes": {
                        cls: count
                        for cls, count in local_classes.items()
                        if count
                    },
                }

        threads = [
            threading.Thread(target=worker, args=(i,), name=f"loadgen-{i}")
            for i in range(workers)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        if pool is not None:
            pool.close()

        issued = per_worker * workers
        return LoadReport(
            requests=issued,
            ok=ok_total,
            not_found=not_found_total,
            elapsed_seconds=elapsed,
            mix={"asn": issued},
            classes=classes,
            admitted_p50=percentile(latencies, 0.50),
            admitted_p99=percentile(latencies, 0.99),
            conn_errors=pool.conn_errors if pool is not None else 0,
            per_worker=[row for row in worker_rows if row is not None],
        )
