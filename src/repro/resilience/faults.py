"""Seeded fault injection: reproducible chaos for the two flaky surfaces.

Borges depends on LLM completions and live web scraping — exactly the
dependencies that rate-limit, time out and reset in production.  A
:class:`FaultInjector` draws deterministic, order-independent coins
(seed + call identity, see :mod:`repro.resilience.seeding`) against a
named :class:`FaultProfile`, so a chaos run is byte-reproducible from
``(seed, profile)``.  :class:`FaultyChatBackend` and :class:`FaultyWeb`
wrap the simulated backend/web and translate those coins into the faults
the resilience layer must survive: 429 bursts, timeouts, connection
resets, intermittent 5xx, truncated completions.

Profiles
--------

* ``none``   — no faults (the default; byte-identical to the seed run).
* ``flaky``  — moderate transient faults with ``max_consecutive=2``:
  every fault clears within two consecutive attempts, so default retry
  policies (3 attempts) fully mask it and results are identical to a
  fault-free run.  This is the profile the chaos CI job runs under.
* ``burst``  — long correlated rate-limit/5xx bursts that outlast retry
  budgets and trip circuit breakers.
* ``storm``  — heavy faults plus truncated LLM output; features die and
  the pipeline must complete degraded.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..errors import (
    ConfigError,
    FetchError,
    LLMConnectionError,
    LLMRateLimitError,
    LLMTimeoutError,
)
from ..obs.registry import MetricsRegistry, get_registry
from .seeding import stable_unit

#: Environment variable naming the profile to inject when the config does
#: not pin one — how CI runs the whole suite under chaos without edits.
ENV_FAULT_PROFILE = "BORGES_FAULT_PROFILE"

LLM_SURFACE = "llm"
WEB_SURFACE = "web"
SERVE_SURFACE = "serve"
WATCH_SURFACE = "watch"
SHARD_SURFACE = "shard"

#: Fraction of a truncated completion that survives.
TRUNCATE_KEEP_FRACTION = 0.4

#: Fraction of a corrupted snapshot file that survives truncation.
SNAPSHOT_KEEP_FRACTION = 0.6


@dataclass(frozen=True)
class FaultProfile:
    """Named, rate-parameterised chaos recipe."""

    name: str
    description: str = ""
    llm_rate_limit: float = 0.0
    llm_timeout: float = 0.0
    llm_reset: float = 0.0
    llm_truncate: float = 0.0
    web_timeout: float = 0.0
    web_reset: float = 0.0
    web_server_error: float = 0.0
    serve_slow_read: float = 0.0
    serve_corrupt_snapshot: float = 0.0
    watch_slow_pipeline: float = 0.0
    watch_publish_crash: float = 0.0
    watch_disk_pressure: float = 0.0
    shard_crash: float = 0.0
    shard_hang: float = 0.0
    shard_flaky: float = 0.0
    #: When a fault fires, it repeats for this many consecutive calls on
    #: the same surface (correlated outages, not independent coin flips).
    burst_length: int = 1
    #: Cap on consecutive faults per call site; 0 = uncapped.  A cap of
    #: ``k`` guarantees any retry policy with > ``k`` attempts recovers,
    #: which is what makes the ``flaky`` profile result-preserving.
    max_consecutive: int = 0
    #: How long a serve-side ``slow_read`` fault stalls a request (the
    #: handler sleeps while holding its admission slot).
    slow_read_seconds: float = 0.002
    #: How long a watch-side ``slow_pipeline`` fault stalls one refresh
    #: cycle (the daemon sleeps mid-run, as a hung stage would).
    slow_pipeline_seconds: float = 0.01
    #: How long a ``shard_hang`` fault sleeps — "forever" relative to any
    #: sane per-shard deadline, so the watchdog (not the sleep expiring)
    #: must be what unblocks the run.
    shard_hang_seconds: float = 120.0
    #: Thundering-herd sizing hint for load generators: clients per
    #: admission slot released simultaneously (0 = not a herd profile).
    herd_multiplier: int = 0

    _RATE_FIELDS = (
        "llm_rate_limit",
        "llm_timeout",
        "llm_reset",
        "llm_truncate",
        "web_timeout",
        "web_reset",
        "web_server_error",
        "serve_slow_read",
        "serve_corrupt_snapshot",
        "watch_slow_pipeline",
        "watch_publish_crash",
        "watch_disk_pressure",
        "shard_crash",
        "shard_hang",
        "shard_flaky",
    )

    def validate(self) -> "FaultProfile":
        for field_name in self._RATE_FIELDS:
            rate = getattr(self, field_name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{field_name} out of [0,1]: {rate}")
        if self.burst_length < 1:
            raise ConfigError("burst_length must be >= 1")
        if self.max_consecutive < 0:
            raise ConfigError("max_consecutive must be >= 0")
        return self

    @property
    def active(self) -> bool:
        return any(getattr(self, f) > 0.0 for f in self._RATE_FIELDS)

    def rates_for(self, surface: str) -> Sequence[Tuple[str, float]]:
        """``(kind, rate)`` pairs for one surface, in fixed draw order."""
        prefix = surface + "_"
        return tuple(
            (f[len(prefix):], getattr(self, f))
            for f in self._RATE_FIELDS
            if f.startswith(prefix)
        )


PROFILES: Dict[str, FaultProfile] = {
    profile.name: profile.validate()
    for profile in (
        FaultProfile(name="none", description="no injected faults"),
        FaultProfile(
            name="flaky",
            description=(
                "moderate transient faults, always recoverable within the "
                "default retry budget (result-preserving)"
            ),
            llm_rate_limit=0.05,
            llm_timeout=0.04,
            llm_reset=0.02,
            web_timeout=0.05,
            web_reset=0.02,
            web_server_error=0.04,
            max_consecutive=2,
        ),
        FaultProfile(
            name="burst",
            description=(
                "correlated rate-limit/5xx bursts that exhaust retries and "
                "trip circuit breakers"
            ),
            llm_rate_limit=0.04,
            web_server_error=0.04,
            burst_length=8,
        ),
        FaultProfile(
            name="slow-reader",
            description=(
                "every serve request stalls while holding its admission "
                "slot; exercises queue-depth shedding and deadlines"
            ),
            serve_slow_read=1.0,
        ),
        FaultProfile(
            name="corrupt-snapshot",
            description=(
                "every snapshot file read is truncated and bit-flipped; "
                "the integrity layer must reject it before swap"
            ),
            serve_corrupt_snapshot=1.0,
        ),
        FaultProfile(
            name="thundering-herd",
            description=(
                "load generators aim 8 simultaneous clients at every "
                "admission slot, and each request stalls briefly while "
                "holding it — a herd is only dangerous when requests "
                "take non-trivial time"
            ),
            herd_multiplier=8,
            serve_slow_read=1.0,
            slow_read_seconds=0.005,
        ),
        FaultProfile(
            name="slow-pipeline",
            description=(
                "every watch refresh cycle stalls mid-pipeline; the "
                "supervisor must keep serving and the schedule must not "
                "drift into overlapping runs"
            ),
            watch_slow_pipeline=1.0,
            slow_pipeline_seconds=0.05,
        ),
        FaultProfile(
            name="publish-crash",
            description=(
                "watch publishes crash between the archive write and the "
                "swap; the journal must make the re-run resume instead of "
                "double-publishing"
            ),
            watch_publish_crash=0.5,
            max_consecutive=1,
        ),
        FaultProfile(
            name="disk-pressure",
            description=(
                "every archive write sees a full disk; retention must "
                "prune oldest-first and the daemon must back off without "
                "taking down serving"
            ),
            watch_disk_pressure=1.0,
        ),
        FaultProfile(
            name="shard-crash",
            description=(
                "roughly half the shards of a sharded run die mid-attempt "
                "(fork: os._exit; thread: raised fault) on every attempt; "
                "retries exhaust, so the run must quarantine the doomed "
                "shards and salvage a degraded mapping from the survivors"
            ),
            shard_crash=0.5,
        ),
        FaultProfile(
            name="shard-hang",
            description=(
                "roughly half the shards hang (sleep far past any sane "
                "deadline) on every attempt; the watchdog must SIGKILL at "
                "the deadline, retry, then quarantine"
            ),
            shard_hang=0.5,
        ),
        FaultProfile(
            name="shard-flaky",
            description=(
                "a shard's first attempt may crash but retries never do; "
                "one retry always recovers, so the run must complete "
                "clean (not degraded) with nonzero retry counters"
            ),
            shard_flaky=0.6,
        ),
        FaultProfile(
            name="storm",
            description=(
                "heavy faults plus truncated completions; features fail and "
                "the pipeline completes degraded"
            ),
            llm_rate_limit=0.15,
            llm_timeout=0.15,
            llm_reset=0.05,
            llm_truncate=0.10,
            web_timeout=0.25,
            web_reset=0.10,
            web_server_error=0.15,
        ),
    )
}


def resolve_fault_profile(name: Optional[str] = None) -> FaultProfile:
    """Look up a profile by name, falling back to ``$BORGES_FAULT_PROFILE``.

    An empty/``None`` *name* defers to the environment (default
    ``none``), which is how an unmodified test suite runs under chaos.
    """
    if not name:
        name = os.environ.get(ENV_FAULT_PROFILE, "") or "none"
    try:
        return PROFILES[name]
    except KeyError:
        raise ConfigError(
            f"unknown fault profile {name!r}; known: {sorted(PROFILES)}"
        ) from None


def shard_fault_decision(
    profile: FaultProfile, seed: int, shard_index: int, attempt: int
) -> Optional[str]:
    """The fault a shard attempt must act out (``crash``/``hang``/``None``).

    Drawn in the *parent*, never inside the shard worker: a forked child
    inherits a copy of any injector state, so child-side draws would
    reset the occurrence counter on every retry and re-roll the same
    coin forever.  A pure function of ``(seed, profile, shard, attempt)``
    keeps chaos runs byte-reproducible and identical across thread and
    process execution.

    ``crash`` and ``hang`` are attempt-independent — a poisoned shard
    stays poisoned, so a bounded retry budget exhausts and the
    quarantine/salvage path engages.  ``flaky`` fires only on the first
    attempt (returned as ``crash``), so a single retry always recovers.
    """
    key = str(shard_index)
    if profile.shard_crash > 0.0:
        if stable_unit(
            seed, profile.name, SHARD_SURFACE, "crash", key, 0
        ) < profile.shard_crash:
            return "crash"
    if profile.shard_hang > 0.0:
        if stable_unit(
            seed, profile.name, SHARD_SURFACE, "hang", key, 0
        ) < profile.shard_hang:
            return "hang"
    if attempt == 0 and profile.shard_flaky > 0.0:
        if stable_unit(
            seed, profile.name, SHARD_SURFACE, "flaky", key, 0
        ) < profile.shard_flaky:
            return "crash"
    return None


class FaultInjector:
    """Draws the per-call fault decisions for one chaos run.

    Decisions are keyed by ``(surface, kind, key, occurrence)`` where the
    occurrence counter distinguishes retries of the same call — so a
    retried request re-rolls the dice, yet the whole sequence is a pure
    function of the seed and the (deterministic) call order.
    """

    def __init__(
        self,
        profile: FaultProfile,
        seed: int = 2020,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.profile = profile
        self.seed = seed
        self._registry = registry
        self._occurrence: Dict[Tuple[str, str], int] = {}
        self._consecutive: Dict[Tuple[str, str], int] = {}
        #: Per-surface correlated-burst state: (kind, remaining calls).
        self._burst: Dict[str, Tuple[str, int]] = {}
        self.injected: Dict[str, int] = {}

    @property
    def _metrics(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    def _record(self, surface: str, kind: str) -> None:
        label = f"{surface}:{kind}"
        self.injected[label] = self.injected.get(label, 0) + 1
        self._metrics.counter(
            "faults_injected_total", "faults injected by the chaos layer",
            surface=surface, kind=kind,
        ).inc()

    def next_fault(self, surface: str, key: str) -> Optional[str]:
        """The fault kind to inject for this call, or ``None``."""
        profile = self.profile
        if not profile.active:
            return None
        site = (surface, key)
        occurrence = self._occurrence.get(site, 0)
        self._occurrence[site] = occurrence + 1

        burst = self._burst.get(surface)
        if burst is not None:
            kind, remaining = burst
            if remaining > 0:
                self._burst[surface] = (kind, remaining - 1)
                self._consecutive[site] = self._consecutive.get(site, 0) + 1
                self._record(surface, kind)
                return kind
            del self._burst[surface]

        if (
            profile.max_consecutive
            and self._consecutive.get(site, 0) >= profile.max_consecutive
        ):
            # Guaranteed-recovery window: the fault clears for this call.
            self._consecutive[site] = 0
            return None

        for kind, rate in profile.rates_for(surface):
            if rate <= 0.0:
                continue
            draw = stable_unit(
                self.seed, profile.name, surface, kind, key, occurrence
            )
            if draw < rate:
                if profile.burst_length > 1:
                    self._burst[surface] = (kind, profile.burst_length - 1)
                self._consecutive[site] = self._consecutive.get(site, 0) + 1
                self._record(surface, kind)
                return kind
        self._consecutive[site] = 0
        return None

    def stats(self) -> Dict[str, int]:
        """Injected-fault tallies, for diagnostics and manifests."""
        return dict(sorted(self.injected.items()))


def corrupt_snapshot_text(text: str, seed: int = 2020) -> str:
    """Deterministically corrupt snapshot *text* (truncate + bit-flip).

    Models the two ways snapshot files really go bad — a partial write
    (truncation mid-record) and silent byte corruption — as a pure
    function of ``(text, seed)`` so chaos runs replay exactly.  The
    result is guaranteed to differ from the input.
    """
    if not text:
        return "\x00"
    cut = max(1, int(len(text) * SNAPSHOT_KEEP_FRACTION))
    truncated = text[:cut]
    flip_at = int(stable_unit(seed, "snapshot", "flip", str(len(text)), 0)
                  * len(truncated))
    flip_at = min(flip_at, len(truncated) - 1)
    flipped = chr((ord(truncated[flip_at]) ^ 0x1) or 0x1)
    corrupted = truncated[:flip_at] + flipped + truncated[flip_at + 1:]
    if corrupted == text:
        corrupted += "\x00"
    return corrupted


class FaultyChatBackend:
    """Chat-backend decorator injecting seeded LLM faults.

    Duck-types :class:`repro.llm.client.ChatBackend` (kept import-free to
    avoid a dependency cycle): 429s, timeouts and resets are raised as
    retryable backend errors; ``truncate`` mangles an otherwise-good
    completion the way an interrupted stream would.
    """

    def __init__(self, inner, injector: FaultInjector) -> None:
        self._inner = inner
        self._injector = injector
        self.name = getattr(inner, "name", "unknown")

    @property
    def inner(self):
        return self._inner

    @staticmethod
    def _key(messages) -> str:
        hasher = hashlib.sha256()
        for message in messages:
            hasher.update(message.cache_key().encode("utf-8", "replace"))
            hasher.update(b"\x1e")
        return hasher.hexdigest()[:16]

    def complete(self, messages, config) -> str:
        kind = self._injector.next_fault(LLM_SURFACE, self._key(messages))
        if kind == "rate_limit":
            raise LLMRateLimitError("injected fault: rate limited (HTTP 429)")
        if kind == "timeout":
            raise LLMTimeoutError("injected fault: completion timed out")
        if kind == "reset":
            raise LLMConnectionError("injected fault: connection reset by peer")
        content = self._inner.complete(messages, config)
        if kind == "truncate":
            return content[: max(1, int(len(content) * TRUNCATE_KEEP_FRACTION))]
        return content


class FaultyWeb:
    """Web-driver decorator injecting seeded fetch faults.

    Wraps anything with the :class:`repro.web.simweb.SimulatedWeb`
    interface; non-``fetch`` calls (site registry, favicon bytes, stats)
    pass through untouched.
    """

    def __init__(self, inner, injector: FaultInjector) -> None:
        self._inner = inner
        self._injector = injector

    @property
    def inner(self):
        return self._inner

    def _key(self, url: str) -> str:
        from ..web.url import parse_url

        try:
            return parse_url(url).host
        except Exception:
            return url

    def fetch(self, url: str):
        kind = self._injector.next_fault(WEB_SURFACE, self._key(url))
        if kind == "timeout":
            raise FetchError(url, "injected fault: connection timed out", transient=True)
        if kind == "reset":
            raise FetchError(url, "injected fault: connection reset", transient=True)
        if kind == "server_error":
            from ..web.http import HTTPResponse

            return HTTPResponse(
                url=url, status=503, body="injected fault: service unavailable"
            )
        return self._inner.fetch(url)

    def favicon_bytes(self, url: str):
        return self._inner.favicon_bytes(url)

    def __getattr__(self, item):
        return getattr(self._inner, item)

    def __len__(self) -> int:
        return len(self._inner)

    def __contains__(self, host: str) -> bool:
        return host in self._inner
