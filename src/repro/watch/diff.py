"""Per-generation diffs: what actually changed between two mappings.

The unit of change is the paper's own unit — the organization (a
cluster of ASNs).  Given two generations the diff reports:

* ``orgs_merged`` — organizations in *to* whose members came from two or
  more *from*-organizations (an M&A event, as the longitudinal universe
  models it);
* ``orgs_split`` — organizations in *from* whose members landed in two
  or more *to*-organizations (a divestiture, or an upstream retraction);
* ``asns_moved`` — ASNs present in both generations whose sibling set
  changed (the operator-visible churn);
* ``asns_added`` / ``asns_removed`` — universe drift between snapshots;
* ``churn_fraction`` — moved / common, the publish gate's churn input.

Everything is computed from the read-side :class:`MappingIndex` (the
structure the serve tier already holds), so the HTTP ``/v1/diff``
endpoint costs two dict sweeps, not a pipeline run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..serve.index import MappingIndex

#: Most example org handles carried per diff category in the JSON form —
#: enough for an operator to spot-check, bounded so a pathological diff
#: cannot balloon a response.
EXAMPLE_LIMIT = 20


@dataclass(frozen=True)
class GenerationDiff:
    """The structured delta between two mapping generations."""

    from_orgs: int
    to_orgs: int
    common_asns: int
    asns_added: int
    asns_removed: int
    asns_moved: int
    orgs_merged: int
    orgs_split: int
    merged_examples: Tuple[str, ...] = field(default=())
    split_examples: Tuple[str, ...] = field(default=())

    @property
    def churn_fraction(self) -> float:
        return self.asns_moved / self.common_asns if self.common_asns else 0.0

    def to_json(self) -> Dict[str, object]:
        return {
            "from_orgs": self.from_orgs,
            "to_orgs": self.to_orgs,
            "common_asns": self.common_asns,
            "asns_added": self.asns_added,
            "asns_removed": self.asns_removed,
            "asns_moved": self.asns_moved,
            "orgs_merged": self.orgs_merged,
            "orgs_split": self.orgs_split,
            "churn_fraction": round(self.churn_fraction, 6),
            "merged_examples": list(self.merged_examples),
            "split_examples": list(self.split_examples),
        }


def diff_indexes(old: MappingIndex, new: MappingIndex) -> GenerationDiff:
    """Diff two read-side indexes (see module docstring for semantics)."""
    old_org_of = {asn: old.org_of(asn).org_id for asn in old.asns()}
    new_org_of = {asn: new.org_of(asn).org_id for asn in new.asns()}
    common = old_org_of.keys() & new_org_of.keys()

    moved = 0
    for asn in common:
        # An ASN "moved" when its sibling set changed, not merely when
        # its handle did — handles are derived from the lowest member,
        # so a handle change without membership change is impossible,
        # but a membership change can keep the handle.
        old_members = old.org(old_org_of[asn]).members
        new_members = new.org(new_org_of[asn]).members
        if old_members != new_members:
            moved += 1

    # Merge/split detection over the common-ASN projection: restricting
    # to shared ASNs keeps universe drift (added/removed ASNs) out of
    # the merge/split counts.
    sources_of_new: Dict[str, set] = {}
    targets_of_old: Dict[str, set] = {}
    for asn in common:
        sources_of_new.setdefault(new_org_of[asn], set()).add(old_org_of[asn])
        targets_of_old.setdefault(old_org_of[asn], set()).add(new_org_of[asn])
    merged: List[str] = sorted(
        handle for handle, sources in sources_of_new.items() if len(sources) > 1
    )
    split: List[str] = sorted(
        handle for handle, targets in targets_of_old.items() if len(targets) > 1
    )

    return GenerationDiff(
        from_orgs=len(old),
        to_orgs=len(new),
        common_asns=len(common),
        asns_added=len(new_org_of.keys() - old_org_of.keys()),
        asns_removed=len(old_org_of.keys() - new_org_of.keys()),
        asns_moved=moved,
        orgs_merged=len(merged),
        orgs_split=len(split),
        merged_examples=tuple(merged[:EXAMPLE_LIMIT]),
        split_examples=tuple(split[:EXAMPLE_LIMIT]),
    )
