"""Span tracing for pipeline stages.

A :class:`Tracer` produces nested :class:`Span` objects::

    with tracer.span("ner.extract", asn=64512) as span:
        ...
        span.set_attribute("siblings", 3)

Each span records wall-clock duration, free-form attributes, and error
status (an exception inside the block marks the span ``error`` and
re-raises).  Spans nest: a span opened while another is active becomes
its child, so one pipeline run yields a tree the manifest exporter
serialises as-is.

Like the metrics registry, a process-global tracer backs zero-config
instrumentation (:func:`get_tracer`), and tests swap in a private one via
:func:`use_tracer`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..logutil import get_logger
from .context import current_trace_context, generate_span_id, generate_trace_id

_LOG = get_logger("obs.tracer")


@dataclass
class Span:
    """One timed, attributed stage of a run."""

    name: str
    attributes: Dict[str, object] = field(default_factory=dict)
    started_at: float = 0.0  # UNIX timestamp
    duration: float = 0.0  # seconds, set when the span finishes
    status: str = "in_progress"  # "in_progress" | "ok" | "error"
    error: str = ""
    children: List["Span"] = field(default_factory=list)
    trace_id: str = ""  # 32-hex W3C trace ID shared by the whole tree
    span_id: str = ""  # 16-hex ID of this span
    parent_span_id: str = ""  # parent's span_id, or the remote caller's

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    @property
    def finished(self) -> bool:
        return self.status != "in_progress"

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "started_at": self.started_at,
            "duration_seconds": self.duration,
            "status": self.status,
        }
        if self.trace_id:
            out["trace_id"] = self.trace_id
            out["span_id"] = self.span_id
            if self.parent_span_id:
                out["parent_span_id"] = self.parent_span_id
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        if self.error:
            out["error"] = self.error
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


class Tracer:
    """Builds span trees; one instance per process (or per test).

    The active-span stack is *per thread*: the stage executor finishes
    independent stages on worker threads, and each thread nests its spans
    under whatever parent it :meth:`attach`\\ ed, without racing the main
    thread's stack.  The root list is shared and lock-protected.
    """

    def __init__(self) -> None:
        self._roots: List[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    @property
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @contextmanager
    def attach(self, parent: Optional[Span]) -> Iterator[None]:
        """Make *parent* this thread's active span for the duration.

        Used by the stage executor to parent worker-thread spans under
        the span that was active when the work was scheduled.  A ``None``
        parent is a no-op, so callers need not special-case untraced runs.
        """
        if parent is None:
            yield
            return
        stack = self._stack
        stack.append(parent)
        try:
            yield
        finally:
            stack.pop()

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Span]:
        """Open a span; nests under the currently active span, if any.

        Trace identity: a child span inherits its parent's trace ID and
        records the parent's span ID; a root span adopts the ambient
        :func:`~repro.obs.context.current_trace_context` (so a span tree
        opened while serving a request joins the request's trace, with
        the HTTP-layer span ID as its remote parent) and only mints a
        brand-new trace ID when there is no ambient context at all.
        """
        node = Span(
            name=name,
            attributes=dict(attributes),
            started_at=time.time(),
            span_id=generate_span_id(),
        )
        if self._stack:
            parent = self._stack[-1]
            node.trace_id = parent.trace_id
            node.parent_span_id = parent.span_id
            parent.children.append(node)
        else:
            context = current_trace_context()
            if context is not None:
                node.trace_id = context.trace_id
                node.parent_span_id = context.span_id
            else:
                node.trace_id = generate_trace_id()
            with self._lock:
                self._roots.append(node)
        self._stack.append(node)
        start = time.perf_counter()
        try:
            yield node
            node.status = "ok"
        except BaseException as exc:
            node.status = "error"
            node.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            node.duration = time.perf_counter() - start
            self._stack.pop()
            _LOG.debug("span %s took %.3fs (%s)", name, node.duration, node.status)

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def spans(self) -> List[Span]:
        """Root spans recorded so far."""
        with self._lock:
            return list(self._roots)

    def all_spans(self) -> List[Span]:
        """Every span, depth-first across all roots."""
        out: List[Span] = []
        for root in self.spans():
            out.extend(root.walk())
        return out

    def find(self, name: str) -> List[Span]:
        """All spans (at any depth) with the given name."""
        return [s for s in self.all_spans() if s.name == name]

    def to_dicts(self) -> List[Dict[str, object]]:
        return [root.to_dict() for root in self.spans()]

    def reset(self) -> None:
        with self._lock:
            self._roots.clear()
        self._stack.clear()


# -- process-global default ----------------------------------------------------

_GLOBAL_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer instrumented modules default to."""
    return _GLOBAL_TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the global tracer; returns the previous one."""
    global _GLOBAL_TRACER
    previous = _GLOBAL_TRACER
    _GLOBAL_TRACER = tracer
    return previous


@contextmanager
def use_tracer(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Temporarily install *tracer* (default: a fresh one) as global."""
    tracer = tracer or Tracer()
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
