"""The simulated web: a registry of sites with redirects and favicons.

:class:`SimulatedWeb` plays the role of the live Internet in §4.3.  The
universe generator (see :mod:`repro.universe.web_synth`) plants sites
here: brand landing pages, post-merger redirect chains (the
Clearwire → Sprint → T-Mobile pattern), dead hosts, framework-default
favicons, and mainstream-platform pages.  The scraper and favicon API
only ever talk to this object, so swapping in a real HTTP driver touches
nothing downstream.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..errors import FetchError, URLError
from ..types import FaviconHash
from .http import (
    HTTPResponse,
    RedirectKind,
    make_redirect_response,
    render_page_body,
)
from .url import normalize_url, parse_url


def favicon_hash(content: bytes) -> FaviconHash:
    """Stable identity of favicon content (16-hex-digit digest)."""
    return hashlib.sha256(content).hexdigest()[:16]


def make_favicon(brand: str) -> bytes:
    """Deterministic pseudo-icon bytes for a brand name.

    Two sites share a favicon exactly when they were given the same brand
    token — which is how the universe generator encodes "same logo".
    """
    return b"ICO:" + brand.encode("utf-8")


#: Favicons served by web frameworks / hosting products, which group
#: unrelated sites together (Table 2's Bootstrap example).  Any brand
#: token ending in ``-default`` is a framework identity; this tuple lists
#: the named families, and the universe generator mints additional
#: anonymous template families ("webtemplate<k>-default").
FRAMEWORK_FAVICON_BRANDS = (
    "bootstrap-default",
    "wordpress-default",
    "godaddy-default",
    "ixcsoft-default",
    "wix-default",
)


def is_framework_favicon_brand(brand: str) -> bool:
    """True when a favicon brand token is a framework default, not a logo."""
    return brand.endswith("-default")


@dataclass
class Site:
    """One simulated website, keyed by host."""

    host: str
    title: str = ""
    #: Client- or server-side redirect, if this site forwards visitors.
    redirect_kind: RedirectKind = RedirectKind.NONE
    redirect_target: str = ""
    #: Favicon bytes; empty means the site serves no icon.
    favicon: bytes = b""
    #: Dead sites time out (the paper found ~14% of PDB URLs unreachable).
    alive: bool = True

    def respond(self, url: str) -> HTTPResponse:
        """Serve the response this site gives for *url*."""
        if not self.alive:
            # Timeouts are transient at the HTTP layer (the scraper may
            # re-attempt them), even though a dead simulated site never
            # actually recovers within a run.
            raise FetchError(url, "connection timed out", transient=True)
        if self.redirect_kind != RedirectKind.NONE and self.redirect_target:
            return make_redirect_response(url, self.redirect_kind, self.redirect_target)
        return HTTPResponse(
            url=url,
            status=200,
            body=render_page_body(self.title or self.host),
        )

    @property
    def favicon_id(self) -> Optional[FaviconHash]:
        return favicon_hash(self.favicon) if self.favicon else None


class SimulatedWeb:
    """A host→site registry with an HTTP-shaped fetch interface."""

    def __init__(self) -> None:
        self._sites: Dict[str, Site] = {}
        self.fetch_count = 0
        self._content_digest: Optional[str] = None

    # -- registry ---------------------------------------------------------

    def add_site(self, site: Site) -> Site:
        host = site.host.lower()
        if host in self._sites:
            raise ValueError(f"site already registered for host {host!r}")
        site.host = host
        self._sites[host] = site
        self._content_digest = None
        return site

    def add_page(
        self,
        url: str,
        title: str = "",
        favicon_brand: str = "",
        alive: bool = True,
    ) -> Site:
        """Convenience: register a plain landing page for *url*'s host."""
        host = parse_url(url).host
        favicon = make_favicon(favicon_brand) if favicon_brand else b""
        return self.add_site(
            Site(host=host, title=title or host, favicon=favicon, alive=alive)
        )

    def add_redirect(
        self,
        url: str,
        target: str,
        kind: RedirectKind = RedirectKind.HTTP_301,
        favicon_brand: str = "",
    ) -> Site:
        """Register a site whose only job is to forward to *target*."""
        host = parse_url(url).host
        favicon = make_favicon(favicon_brand) if favicon_brand else b""
        return self.add_site(
            Site(
                host=host,
                title=host,
                redirect_kind=kind,
                redirect_target=normalize_url(target),
                favicon=favicon,
            )
        )

    def site_for(self, url: str) -> Optional[Site]:
        try:
            host = parse_url(url).host
        except URLError:
            return None
        return self._sites.get(host)

    def hosts(self) -> List[str]:
        return sorted(self._sites)

    def sites(self) -> Iterator[Site]:
        for host in self.hosts():
            yield self._sites[host]

    def __len__(self) -> int:
        return len(self._sites)

    def __contains__(self, host: str) -> bool:
        return host.lower() in self._sites

    # -- HTTP-shaped interface ---------------------------------------------

    def fetch(self, url: str) -> HTTPResponse:
        """Fetch one URL (no redirect following — that's the scraper's job).

        Raises :class:`~repro.errors.FetchError` for unknown hosts (NXDOMAIN
        analogue) and dead sites (timeout analogue).
        """
        self.fetch_count += 1
        parsed = parse_url(url)  # may raise URLError
        site = self._sites.get(parsed.host)
        if site is None:
            raise FetchError(url, "host not found")
        return site.respond(parsed.url)

    def favicon_bytes(self, url: str) -> Optional[bytes]:
        """The favicon the host of *url* serves, or ``None``."""
        site = self.site_for(url)
        if site is None or not site.alive or not site.favicon:
            return None
        return site.favicon

    def content_digest(self) -> str:
        """Stable content hash; anchors stage-artifact fingerprints.

        Cached between calls (the registry is write-once in practice) and
        invalidated whenever a site is added.  ``fetch_count`` is runtime
        state, not content, so it does not participate.
        """
        if self._content_digest is None:
            from ..digest import stable_digest

            self._content_digest = stable_digest(
                [
                    {
                        "host": site.host,
                        "title": site.title,
                        "redirect_kind": str(site.redirect_kind.value),
                        "redirect_target": site.redirect_target,
                        "favicon": site.favicon,
                        "alive": site.alive,
                    }
                    for site in self.sites()
                ]
            )
        return self._content_digest

    # -- diagnostics --------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        sites = list(self.sites())
        return {
            "hosts": len(sites),
            "alive": sum(1 for s in sites if s.alive),
            "redirecting": sum(
                1 for s in sites if s.redirect_kind != RedirectKind.NONE
            ),
            "with_favicon": sum(1 for s in sites if s.favicon),
            "fetches": self.fetch_count,
        }
