"""Build the simulated web from ground truth + corporate history.

Every brand's landing page, every post-merger redirect chain, every
framework-default favicon and dead host is planted here, so the scraper
discovers them the way the paper's Selenium crawl discovered the real
ones.

The planting helpers operate on a plain ``host → Site`` dict so the
streaming generator (:mod:`repro.universe.stream`) can plant one org's
sites at a time with a per-org RNG substream; :func:`build_web` keeps
the collect-everything entry point over a shared stream.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from ..config import UniverseConfig
from ..logutil import get_logger
from ..web.http import RedirectKind
from ..web.simweb import SimulatedWeb, Site, make_favicon
from .entities import Brand, GroundTruth, Org, OrgCategory
from .events import Timeline

_LOG = get_logger("universe.web_synth")

_REDIRECT_KINDS = (
    RedirectKind.HTTP_301,
    RedirectKind.HTTP_302,
    RedirectKind.META_REFRESH,
    RedirectKind.JAVASCRIPT,
)


def build_web(
    ground_truth: GroundTruth,
    timeline: Timeline,
    config: UniverseConfig,
    seed: int,
) -> SimulatedWeb:
    """Instantiate the whole simulated web for one universe."""
    rng = random.Random(("web", seed).__repr__())
    sites: Dict[str, Site] = {}
    for org in ground_truth.all_orgs():
        plant_org_sites(sites, org, rng, config)
    for org in ground_truth.all_orgs():
        plant_org_redirects(sites, org, rng, config)
    web = SimulatedWeb()
    for site in sites.values():
        web.add_site(site)
    _LOG.debug("web built: %s", web.stats())
    # Acquisition order is already encoded in Brand.acquired + flagship
    # choice; multi-hop chains (Clearwire → Sprint → T-Mobile) compose
    # naturally from per-brand redirects.
    _ = timeline
    return web


def plant_org_sites(
    sites: Dict[str, Site], org: Org, rng: random.Random, config: UniverseConfig
) -> None:
    """Landing pages and favicons for every brand of one org."""
    for brand in org.brands:
        if not brand.website_host or brand.website_host in sites:
            continue
        alive = rng.random() >= config.dead_site_rate
        sites[brand.website_host] = Site(
            host=brand.website_host,
            title=brand.name,
            favicon=(
                make_favicon(brand.favicon_brand)
                if brand.favicon_brand
                else b""
            ),
            alive=alive,
        )


def plant_org_redirects(
    sites: Dict[str, Site], org: Org, rng: random.Random, config: UniverseConfig
) -> None:
    """Turn one org's acquired brands' sites into redirects to the parent.

    Acquisition order matters: a brand acquired in year Y redirects to
    whatever the acquirer's flagship site was — which may itself have
    become a redirect after a later event, producing multi-hop chains
    (the Clearwire → Sprint → T-Mobile pattern).
    """
    flagship = _flagship_brand(org)
    if flagship is None:
        return
    # Carriers consolidate their web presence aggressively after
    # acquisitions (the Level3 → CenturyLink → Lumen pattern).
    redirect_rate = config.merger_redirect_rate
    if org.category is OrgCategory.TRANSIT:
        redirect_rate = min(0.9, redirect_rate * 2.2)
    for brand in org.brands:
        if brand is flagship or not brand.acquired:
            continue
        if not brand.website_host or not flagship.website_host:
            continue
        if rng.random() >= redirect_rate:
            continue
        site = sites.get(brand.website_host)
        if site is None or not site.alive:
            continue
        if site.redirect_kind != RedirectKind.NONE:
            continue  # already part of a chain
        site.redirect_kind = rng.choice(_REDIRECT_KINDS)
        site.redirect_target = flagship.website_url


def _flagship_brand(org: Org) -> Optional[Brand]:
    """The brand whose site the others redirect to (the current identity)."""
    candidates = [b for b in org.brands if b.website_host and not b.acquired]
    if not candidates:
        candidates = [b for b in org.brands if b.website_host]
    if not candidates:
        return None
    # Deterministic: the lowest-ASN non-acquired brand is the flagship.
    return min(candidates, key=lambda b: b.primary_asn)
