"""The Borges pipeline: run features, consolidate, emit the mapping.

:class:`BorgesPipeline` wires the four features (§3) over a WHOIS
dataset + PeeringDB snapshot + web driver and produces a
:class:`BorgesResult`: per-feature clusters (Table 3's unit), the final
consolidated :class:`~repro.core.mapping.OrgMapping`, and module-level
diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config import (
    FEATURE_FAVICONS,
    FEATURE_NOTES_AKA,
    FEATURE_OID_P,
    FEATURE_RR,
    BorgesConfig,
)
from ..llm.client import ChatClient
from ..llm.simulated import make_default_client
from ..logutil import get_logger
from ..obs.registry import MetricsRegistry, get_registry
from ..obs.tracer import Tracer, get_tracer
from ..peeringdb import PDBSnapshot
from ..resilience.faults import (
    FaultInjector,
    FaultyWeb,
    resolve_fault_profile,
)
from ..types import ASN, Cluster
from ..web.favicon import FaviconAPI
from ..web.scraper import HeadlessScraper
from ..web.simweb import SimulatedWeb
from ..whois import WhoisDataset
from .mapping import OrgMapping
from .ner import NERModule, NERRecordResult
from .org_keys import oid_p_clusters, oid_w_clusters
from .web_inference import WebInferenceModule, WebInferenceResult

_LOG = get_logger("core.pipeline")


@dataclass(frozen=True)
class FeatureClusters:
    """One feature's output, plus the Table-3 accounting."""

    feature: str
    clusters: List[Cluster]

    @property
    def asn_count(self) -> int:
        """Number of distinct ASNs the feature says anything about."""
        members = set()
        for cluster in self.clusters:
            members.update(cluster)
        return len(members)

    @property
    def org_count(self) -> int:
        """Number of organizations after consolidating within the feature."""
        from .merge import merge_clusters

        return len(merge_clusters([self.clusters]))


@dataclass
class BorgesResult:
    """Everything one pipeline run produced."""

    mapping: OrgMapping
    features: Dict[str, FeatureClusters] = field(default_factory=dict)
    ner_results: List[NERRecordResult] = field(default_factory=list)
    web_result: Optional[WebInferenceResult] = None
    #: Run-level accounting (LLM cache hits, scraper stats, NER counters)
    #: for the CLI summary and the telemetry manifest.
    diagnostics: Dict[str, object] = field(default_factory=dict)
    #: True when at least one enabled feature failed and the mapping was
    #: consolidated from the survivors only.
    degraded: bool = False
    #: feature name → one-line error, for every feature that failed.
    feature_errors: Dict[str, str] = field(default_factory=dict)

    def feature_table(self) -> List[Dict[str, object]]:
        """Rows shaped like Table 3 (source, #ASes, #orgs)."""
        rows = []
        for name in ("oid_p", "oid_w", "notes_aka", "rr", "favicons"):
            feature = self.features.get(name)
            if feature is None:
                continue
            rows.append(
                {
                    "source": name,
                    "asns": feature.asn_count,
                    "orgs": feature.org_count,
                }
            )
        return rows


class BorgesPipeline:
    """Configured, reusable pipeline front-end.

    ``web`` may be any object accepted by :class:`HeadlessScraper` /
    :class:`FaviconAPI` (the simulated web offline; a real HTTP driver in
    production).  ``client`` defaults to the offline simulated LLM.
    """

    def __init__(
        self,
        whois: WhoisDataset,
        pdb: PDBSnapshot,
        web: SimulatedWeb,
        config: Optional[BorgesConfig] = None,
        client: Optional[ChatClient] = None,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._whois = whois
        self._pdb = pdb
        self._config = (config or BorgesConfig()).validate()
        resilience = self._config.resilience
        self._fault_profile = resolve_fault_profile(resilience.fault_profile)
        self._fault_injector: Optional[FaultInjector] = None
        if self._fault_profile.active:
            # One shared injector across both flaky surfaces, so the
            # run's chaos is a pure function of (profile, fault_seed) and
            # the diagnostics see every injected fault in one tally.
            self._fault_injector = FaultInjector(
                self._fault_profile,
                seed=resilience.fault_seed,
                registry=registry,
            )
            web = FaultyWeb(web, self._fault_injector)
        self._client = client or make_default_client(
            self._config.llm,
            resilience=resilience,
            registry=registry,
            injector=self._fault_injector,
        )
        self._tracer = tracer
        self._registry = registry
        self._scraper = HeadlessScraper(
            web, config=self._config.scraper, registry=registry,
            resilience=resilience,
        )
        self._favicon_api = FaviconAPI(web, registry=registry)
        self._ner = NERModule(self._client, self._config)
        self._web_module = WebInferenceModule(
            self._scraper, self._favicon_api, self._client, self._config,
            tracer=tracer, registry=registry,
        )

    @property
    def config(self) -> BorgesConfig:
        return self._config

    @property
    def client(self) -> ChatClient:
        return self._client

    @property
    def _spans(self) -> Tracer:
        return self._tracer if self._tracer is not None else get_tracer()

    @property
    def _metrics(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    def run(self) -> BorgesResult:
        """Execute every enabled feature and consolidate."""
        with self._spans.span(
            "pipeline.run", features=sorted(self._config.features)
        ):
            return self._run_features()

    def _run_features(self) -> BorgesResult:
        config = self._config
        spans = self._spans
        features: Dict[str, FeatureClusters] = {}
        failures: Dict[str, str] = {}

        def guard(name, fn):
            """Run one optional feature in an isolation boundary.

            A failure is recorded against *name* and the run continues:
            the mapping is consolidated from whatever features survive.
            """
            try:
                return fn()
            except Exception as exc:  # noqa: BLE001 - boundary by design
                failures[name] = f"{type(exc).__name__}: {exc}"
                self._metrics.counter(
                    "pipeline_feature_failures_total",
                    "features lost to errors (run degraded)",
                    feature=name,
                ).inc()
                _LOG.warning(
                    "feature %s failed, continuing degraded: %s", name, exc
                )
                return None

        # oid_w is the backbone (it defines the universe); it is not an
        # optional feature and its failure aborts the run.
        with spans.span("feature.oid_w"):
            features["oid_w"] = FeatureClusters(
                "oid_w", oid_w_clusters(self._whois)
            )
        ner_results: List[NERRecordResult] = []
        web_result: Optional[WebInferenceResult] = None

        if config.has(FEATURE_OID_P):
            def run_oid_p():
                with spans.span("feature.oid_p"):
                    return FeatureClusters(
                        FEATURE_OID_P, oid_p_clusters(self._pdb)
                    )

            clusters = guard(FEATURE_OID_P, run_oid_p)
            if clusters is not None:
                features[FEATURE_OID_P] = clusters
        if config.has(FEATURE_NOTES_AKA):
            def run_notes_aka():
                with spans.span("feature.notes_aka") as span:
                    results = self._ner.run(self._pdb)
                    span.set_attribute(
                        "records_queried", self._ner.stats.records_queried
                    )
                    return results

            ner_results = guard(FEATURE_NOTES_AKA, run_notes_aka) or []
            if FEATURE_NOTES_AKA not in failures:
                features[FEATURE_NOTES_AKA] = FeatureClusters(
                    FEATURE_NOTES_AKA, self._ner.clusters(ner_results)
                )
        if config.has(FEATURE_RR) or config.has(FEATURE_FAVICONS):
            # WebInferenceModule opens the feature.rr/feature.favicons
            # spans itself (the scrape stage is shared between them).
            want_favicons = config.has(FEATURE_FAVICONS)
            boundary = FEATURE_FAVICONS if want_favicons else FEATURE_RR
            web_result = guard(
                boundary,
                lambda: self._web_module.run(self._pdb, favicons=want_favicons),
            )
            if web_result is None and want_favicons and config.has(FEATURE_RR):
                # Salvage rr without the favicon stage: the scraper and
                # LLM caches persist, so the re-run only redoes the part
                # that did not complete.
                web_result = guard(
                    FEATURE_RR,
                    lambda: self._web_module.run(self._pdb, favicons=False),
                )
            if web_result is not None:
                if config.has(FEATURE_RR) and FEATURE_RR not in failures:
                    features[FEATURE_RR] = FeatureClusters(
                        FEATURE_RR, web_result.rr_clusters
                    )
                if want_favicons and FEATURE_FAVICONS not in failures:
                    features[FEATURE_FAVICONS] = FeatureClusters(
                        FEATURE_FAVICONS, web_result.favicon_clusters
                    )

        with spans.span("pipeline.merge") as span:
            mapping = self.build_mapping(features)
            span.set_attribute("orgs", len(mapping))
        for name, feature in features.items():
            self._metrics.gauge(
                "pipeline_feature_clusters", "clusters emitted per feature",
                feature=name,
            ).set(len(feature.clusters))
        self._metrics.gauge(
            "pipeline_orgs", "organizations after consolidation"
        ).set(len(mapping))
        self._metrics.gauge(
            "pipeline_degraded", "1 when the last run lost features"
        ).set(1 if failures else 0)
        return BorgesResult(
            mapping=mapping,
            features=features,
            ner_results=ner_results,
            web_result=web_result,
            diagnostics=self._diagnostics(web_result, failures),
            degraded=bool(failures),
            feature_errors=dict(failures),
        )

    def _diagnostics(
        self,
        web_result: Optional[WebInferenceResult],
        failures: Optional[Dict[str, str]] = None,
    ) -> Dict[str, object]:
        diagnostics: Dict[str, object] = {
            "llm_cache": self._client.cache_stats(),
            "llm_requests": self._client.request_count,
            "scraper": self._scraper.stats(),
            "ner": dict(vars(self._ner.stats)),
        }
        if web_result is not None:
            diagnostics["web"] = dict(vars(web_result.stats))
        failures = failures or {}
        resilience: Dict[str, object] = {
            "fault_profile": self._fault_profile.name,
            "llm_breaker": self._client.breaker.state,
            "web_breakers": self._scraper.breaker_states(),
            "degraded": bool(failures),
            "feature_errors": dict(failures),
        }
        if self._fault_injector is not None:
            resilience["faults_injected"] = self._fault_injector.stats()
        diagnostics["resilience"] = resilience
        return diagnostics

    def build_mapping(
        self, features: Dict[str, FeatureClusters]
    ) -> OrgMapping:
        """Consolidate feature clusters over the WHOIS universe."""
        all_clusters: List[Cluster] = []
        for feature in features.values():
            all_clusters.extend(feature.clusters)
        org_names = {
            asn: self._whois.org_name_of(asn) for asn in self._whois.asns()
        }
        label = "borges[" + ",".join(sorted(self._config.features)) + "]"
        return OrgMapping(
            universe=self._whois.asns(),
            clusters=all_clusters,
            method=label,
            org_names=org_names,
        )
