"""Table 6 — Organization Factor (θ) for baselines and all 16 combos.

Paper: AS2Org 0.3343 (baseline), as2org+ 0.3467 (+3.7%), full Borges
0.3576 (+7%), with each individual feature giving improvements
comparable to as2org+.  The reproduction target is the ordering
AS2Org < as2org+ < Borges with single-digit-percent gaps, and
monotonicity across feature subsets.
"""

from conftest import run_and_render


def test_table6_org_factor_combinations(benchmark, ctx):
    report = run_and_render(benchmark, ctx, "table6")
    by_method = {row["method"]: row for row in report.rows}

    baseline = by_method["AS2Org (baseline)"]["theta"]
    plus = by_method["as2org+"]["theta"]
    full = by_method["OID_P + N&A + R&R + F"]["theta"]

    # The paper's headline ordering with single-digit-% improvements.
    assert baseline < plus < full
    plus_gain = 100.0 * (plus / baseline - 1.0)
    full_gain = 100.0 * (full / baseline - 1.0)
    assert 1.0 <= plus_gain <= 6.0      # paper: +3.7%
    assert 5.0 <= full_gain <= 13.0     # paper: +7%

    # Individual features each contribute a modest improvement.
    for single in ("OID_P", "N&A", "R&R", "F"):
        assert baseline < by_method[single]["theta"] < full

    # Monotone in feature subsets (supersets never lose θ).
    assert by_method["OID_P + N&A"]["theta"] >= by_method["OID_P"]["theta"]
    assert by_method["R&R + F"]["theta"] >= by_method["F"]["theta"]
    assert full >= max(
        by_method[m]["theta"] for m in ("OID_P", "N&A", "R&R", "F")
    )
