"""Zero-copy query semantics over a compiled snapshot blob.

:class:`BlobIndex` duck-types the full :class:`~repro.serve.index.
MappingIndex` read API — ``lookup_asn`` / ``org`` / ``org_of`` /
``are_siblings`` / ``search`` / ``asns`` / ``stats`` and the container
protocol — directly off any buffer (``bytes``, ``mmap``, shared
memory).  Nothing is deserialized up front: a lookup is two hashes and
a 28-byte struct read, and the record objects handed back
(:class:`BlobAsnRecord` / :class:`BlobOrgRecord`) are ``__slots__``
views that decode their strings and member spans only when accessed.
``to_json`` produces dicts with the exact key order of the in-memory
records, so HTTP responses are byte-identical between a worker serving
a mapped blob and a process serving the index it was compiled from —
the property the serve-scale CI job asserts.

Search reproduces :meth:`MappingIndex.search` exactly: per query-token
exact postings, a prefix expansion for the final token (length ≥ 2),
per-token score accumulation, and the identical ``(-score, -size,
handle)`` ranking.  The token table is sorted lexicographically, so the
prefix expansion is a binary search plus a contiguous scan instead of
the in-memory index's full-postings sweep.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ...errors import UnknownASNError, UnknownOrgError
from ...types import ASN
from ..index import org_handle, tokenize
from .blob import (
    EMPTY_KEY,
    _ORG,
    _PHI64,
    _SLOT,
    _TOKEN,
    _U32,
    _U64,
    BlobHeader,
    mix64,
    read_header,
    verify_blob,
)

_MASK64 = (1 << 64) - 1


class BlobOrgRecord:
    """Lazy view of one organization row; mirrors ``OrgRecord``."""

    __slots__ = ("_index", "row")

    def __init__(self, index: "BlobIndex", row: int) -> None:
        self._index = index
        self.row = row

    @property
    def org_id(self) -> str:
        return org_handle(self._index._org_rep(self.row))

    @property
    def name(self) -> str:
        fields = self._index._org_fields(self.row)
        return self._index._string(fields[0], fields[1])

    @property
    def country(self) -> str:
        fields = self._index._org_fields(self.row)
        return self._index._string(fields[2], fields[3])

    @property
    def members(self) -> Tuple[ASN, ...]:
        return self._index._org_members(self.row)

    @property
    def size(self) -> int:
        return self._index._org_size(self.row)

    def to_json(self) -> Dict[str, object]:
        fields = self._index._org_fields(self.row)
        return {
            "org_id": org_handle(fields[6]),
            "name": self._index._string(fields[0], fields[1]),
            "country": self._index._string(fields[2], fields[3]),
            "size": fields[5],
            "members": list(self._index._org_members(self.row)),
        }


class BlobAsnRecord:
    """Lazy view of one ASN slot; mirrors ``AsnRecord``."""

    __slots__ = ("_index", "asn", "_slot")

    def __init__(self, index: "BlobIndex", asn: ASN, slot: int) -> None:
        self._index = index
        self.asn = asn
        self._slot = slot

    @property
    def name(self) -> str:
        fields = self._index._slot_fields(self._slot)
        return self._index._string(fields[1], fields[2])

    @property
    def website(self) -> str:
        fields = self._index._slot_fields(self._slot)
        return self._index._string(fields[3], fields[4])

    @property
    def org(self) -> BlobOrgRecord:
        return BlobOrgRecord(
            self._index, self._index._slot_fields(self._slot)[5]
        )

    def to_json(self) -> Dict[str, object]:
        fields = self._index._slot_fields(self._slot)
        return {
            "asn": self.asn,
            "name": self._index._string(fields[1], fields[2]),
            "website": self._index._string(fields[3], fields[4]),
            "org": BlobOrgRecord(self._index, fields[5]).to_json(),
        }


class BlobIndex:
    """The MappingIndex read API over one verified blob buffer.

    *buf* may be ``bytes`` or any buffer (an ``mmap`` view of a segment
    file is the intended production case).  The buffer must outlive the
    index; when it came from :func:`~repro.serve.shm.segment.
    map_blob_file` the mapping object is kept alive on ``_mapped``.
    """

    __slots__ = (
        "_buf",
        "header",
        "method",
        "digest",
        "_arena_off",
        "_garray_off",
        "_slots_off",
        "_orgs_off",
        "_members_off",
        "_asns_off",
        "_tokens_off",
        "_postings_off",
        "_slot_count",
        "_bucket_count",
        "_mapped",
    )

    def __init__(self, buf, verify: bool = True) -> None:
        self._buf = buf
        self.header: BlobHeader = (
            verify_blob(buf) if verify else read_header(buf)
        )
        method_off, method_len = self.header.method_ref
        self._arena_off = self.header.section("arena")[0]
        self._garray_off = self.header.section("garray")[0]
        self._slots_off = self.header.section("slots")[0]
        self._orgs_off = self.header.section("orgs")[0]
        self._members_off = self.header.section("members")[0]
        self._asns_off = self.header.section("asns")[0]
        self._tokens_off = self.header.section("tokens")[0]
        self._postings_off = self.header.section("postings")[0]
        self._slot_count = self.header.slot_count
        self._bucket_count = self.header.bucket_count
        self.method = self._string(method_off, method_len)
        self.digest = self.header.index_digest
        self._mapped = None

    # -- raw decoding ------------------------------------------------------

    def _string(self, offset: int, length: int) -> str:
        start = self._arena_off + offset
        return bytes(self._buf[start:start + length]).decode("utf-8")

    def _slot_fields(self, slot: int) -> tuple:
        return _SLOT.unpack_from(self._buf, self._slots_off + slot * _SLOT.size)

    def _org_fields(self, row: int) -> tuple:
        return _ORG.unpack_from(self._buf, self._orgs_off + row * _ORG.size)

    def _org_rep(self, row: int) -> int:
        return self._org_fields(row)[6]

    def _org_size(self, row: int) -> int:
        return self._org_fields(row)[5]

    def _org_members(self, row: int) -> Tuple[ASN, ...]:
        fields = self._org_fields(row)
        start = self._members_off + fields[4] * _U64.size
        return tuple(
            value
            for (value,) in _U64.iter_unpack(
                bytes(self._buf[start:start + fields[5] * _U64.size])
            )
        )

    # -- perfect-hash ASN lookup ------------------------------------------

    def _find_slot(self, asn: int) -> int:
        """The slot holding *asn*, or -1 on a miss."""
        if asn < 0 or asn > _MASK64 or self.header.asn_count == 0:
            return -1
        bucket = mix64(asn ^ _PHI64) % self._bucket_count
        (d,) = _U32.unpack_from(
            self._buf, self._garray_off + bucket * _U32.size
        )
        if d == 0:
            return -1  # bucket never received a key
        slot = mix64(asn ^ ((d * _PHI64) & _MASK64)) % self._slot_count
        (stored,) = _U64.unpack_from(
            self._buf, self._slots_off + slot * _SLOT.size
        )
        return slot if stored == asn else -1

    # -- MappingIndex API --------------------------------------------------

    def __len__(self) -> int:
        return self.header.org_count

    def __contains__(self, asn: int) -> bool:
        return self._find_slot(asn) >= 0

    @property
    def asn_count(self) -> int:
        return self.header.asn_count

    def asns(self) -> List[ASN]:
        start = self._asns_off
        end = start + self.header.asn_count * _U64.size
        return [
            value
            for (value,) in _U64.iter_unpack(bytes(self._buf[start:end]))
        ]

    def lookup_asn(self, asn: ASN) -> BlobAsnRecord:
        slot = self._find_slot(asn)
        if slot < 0:
            raise UnknownASNError(asn)
        return BlobAsnRecord(self, asn, slot)

    def org(self, org_id: str) -> BlobOrgRecord:
        # Handles are derived ("BORGES-{lowest member}"), so resolving
        # one is an ASN lookup plus a representative check — no separate
        # org hash table needed.  The round-trip format check rejects
        # aliases like "BORGES-007" that parse but never get minted.
        if org_id.startswith("BORGES-"):
            raw = org_id[len("BORGES-"):]
            try:
                rep = int(raw)
            except ValueError:
                rep = -1
            if rep >= 0 and str(rep) == raw:
                slot = self._find_slot(rep)
                if slot >= 0:
                    row = self._slot_fields(slot)[5]
                    if self._org_rep(row) == rep:
                        return BlobOrgRecord(self, row)
        raise UnknownOrgError(org_id)

    def org_of(self, asn: ASN) -> BlobOrgRecord:
        return self.lookup_asn(asn).org

    def are_siblings(self, a: ASN, b: ASN) -> bool:
        left = self._find_slot(a)
        right = self._find_slot(b)
        return (
            left >= 0
            and right >= 0
            and self._slot_fields(left)[5] == self._slot_fields(right)[5]
        )

    # -- search ------------------------------------------------------------

    def _token_fields(self, row: int) -> tuple:
        return _TOKEN.unpack_from(
            self._buf, self._tokens_off + row * _TOKEN.size
        )

    def _token_at(self, row: int) -> str:
        fields = self._token_fields(row)
        return self._string(fields[0], fields[1])

    def _token_postings(self, row: int) -> Tuple[int, ...]:
        fields = self._token_fields(row)
        start = self._postings_off + fields[2] * _U32.size
        return tuple(
            value
            for (value,) in _U32.iter_unpack(
                bytes(self._buf[start:start + fields[3] * _U32.size])
            )
        )

    def _token_lower_bound(self, token: str) -> int:
        """First token row ≥ *token* (bisect over the sorted table)."""
        lo, hi = 0, self.header.token_count
        while lo < hi:
            mid = (lo + hi) // 2
            if self._token_at(mid) < token:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def search(self, query: str, limit: int = 10) -> List[BlobOrgRecord]:
        """Byte-identical twin of :meth:`MappingIndex.search`."""
        tokens = tokenize(query)
        if not tokens or limit <= 0:
            return []
        token_count = self.header.token_count
        scores: Dict[int, int] = {}
        for position, token in enumerate(tokens):
            row = self._token_lower_bound(token)
            matched: Set[int] = set()
            if row < token_count and self._token_at(row) == token:
                matched.update(self._token_postings(row))
            if position == len(tokens) - 1 and len(token) >= 2:
                while row < token_count and self._token_at(row).startswith(
                    token
                ):
                    matched.update(self._token_postings(row))
                    row += 1
            for org_row in matched:
                scores[org_row] = scores.get(org_row, 0) + 1
        ranked = sorted(
            scores.items(),
            key=lambda item: (
                -item[1],
                -self._org_size(item[0]),
                org_handle(self._org_rep(item[0])),
            ),
        )
        return [BlobOrgRecord(self, row) for row, _ in ranked[:limit]]

    # -- accounting --------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "digest": self.digest,
            "orgs": self.header.org_count,
            "asns": self.header.asn_count,
            "search_tokens": self.header.token_count,
        }
