"""Confusion-matrix scoring for the LLM validation tables (Tables 4–5)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class ConfusionCounts:
    """TP/TN/FP/FN tallies with the derived rates the paper reports."""

    tp: int = 0
    tn: int = 0
    fp: int = 0
    fn: int = 0

    def __add__(self, other: "ConfusionCounts") -> "ConfusionCounts":
        return ConfusionCounts(
            tp=self.tp + other.tp,
            tn=self.tn + other.tn,
            fp=self.fp + other.fp,
            fn=self.fn + other.fn,
        )

    @property
    def total(self) -> int:
        return self.tp + self.tn + self.fp + self.fn

    @property
    def precision(self) -> float:
        denominator = self.tp + self.fp
        return self.tp / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.tp + self.fn
        return self.tp / denominator if denominator else 0.0

    @property
    def accuracy(self) -> float:
        return (self.tp + self.tn) / self.total if self.total else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def as_table_row(self) -> Dict[str, float]:
        """The fields Tables 4–5 print."""
        return {
            "TP": self.tp,
            "TN": self.tn,
            "FP": self.fp,
            "FN": self.fn,
            "precision": round(self.precision, 3),
            "recall": round(self.recall, 3),
            "accuracy": round(self.accuracy, 3),
        }
