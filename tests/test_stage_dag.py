"""The stage DAG: topology, caching, degradation, determinism.

Covers the executor-level guarantees the old hand-written pipeline flow
could not make:

* a favicon-stage failure leaves rr intact *without re-running scrape*
  (the old code salvaged rr by re-running the whole web module);
* a backbone failure (oid_w) still aborts the run;
* two identical runs produce byte-identical artifacts and manifests;
* the Table-6 sweep computes the shared scrape and NER extraction
  exactly once across all 16 feature combinations;
* a warm re-run is served entirely from cache and reproduces the same
  mapping and θ.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis import factor_combination_table
from repro.cli import main as cli_main
from repro.config import TEST_UNIVERSE, BorgesConfig, ExecutorConfig
from repro.core import ArtifactStore, BorgesPipeline, build_stage_graph
from repro.core import stages as stages_mod
from repro.core.web_inference import WebInferenceModule
from repro.metrics import org_factor_from_mapping
from repro.universe import generate_universe


@pytest.fixture(scope="module")
def small_universe():
    return generate_universe(TEST_UNIVERSE)


def make_pipeline(universe, store=None, config=None, **kwargs):
    return BorgesPipeline(
        universe.whois, universe.pdb, universe.web,
        config=config, artifact_store=store, **kwargs,
    )


# ---------------------------------------------------------------------------
# Graph topology


class TestGraphTopology:
    def test_full_graph_shape(self):
        graph = build_stage_graph(BorgesConfig())
        assert list(graph) == [
            "oid_w", "oid_p", "ner_extract", "notes_aka",
            "scrape", "rr", "favicons", "merge",
        ]
        assert graph["rr"].deps == ("scrape",)
        assert graph["favicons"].deps == ("scrape",)
        assert graph["notes_aka"].deps == ("ner_extract",)
        assert graph["merge"].deps == (
            "oid_w", "oid_p", "notes_aka", "rr", "favicons"
        )
        assert graph["oid_w"].backbone and graph["merge"].backbone
        assert not graph["merge"].require_all_deps

    def test_feature_subset_prunes_stages(self):
        graph = build_stage_graph(BorgesConfig().with_features("rr"))
        assert list(graph) == ["oid_w", "scrape", "rr", "merge"]
        assert graph["merge"].deps == ("oid_w", "rr")

    def test_notes_aka_pulls_ner_extract(self):
        graph = build_stage_graph(BorgesConfig().with_features("notes_aka"))
        assert list(graph) == ["oid_w", "ner_extract", "notes_aka", "merge"]

    def test_targets_keep_transitive_deps_and_backbone(self):
        graph = build_stage_graph(BorgesConfig(), targets=["favicons"])
        assert list(graph) == ["oid_w", "scrape", "favicons", "merge"]
        assert graph["merge"].deps == ("oid_w", "favicons")

    def test_unknown_target_is_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            build_stage_graph(BorgesConfig(), targets=["nonsense"])


# ---------------------------------------------------------------------------
# Degraded runs


class TestDegradedRuns:
    def test_favicon_failure_leaves_rr_intact_without_rerun(
        self, small_universe, monkeypatch
    ):
        def boom(self, by_final):
            raise RuntimeError("favicon API on fire")

        monkeypatch.setattr(WebInferenceModule, "favicon_stage", boom)
        store = ArtifactStore()
        result = make_pipeline(small_universe, store=store).run()

        assert result.degraded is True
        assert "favicons" in result.feature_errors
        assert "rr" in result.features and result.features["rr"].clusters
        # The DAG property the old salvage path couldn't give: scrape and
        # rr each ran exactly once — the favicon failure triggered no
        # re-execution of anything upstream or sibling.
        assert store.counters["scrape"]["computed"] == 1
        assert store.counters["rr"]["computed"] == 1
        statuses = {r["stage"]: r["status"] for r in result.stage_records}
        assert statuses["favicons"] == "failed"
        assert statuses["rr"] == "ok" and statuses["scrape"] == "ok"
        assert statuses["merge"] == "ok"  # consolidates the survivors

    def test_backbone_failure_aborts_the_run(self, small_universe, monkeypatch):
        def boom(whois):
            raise RuntimeError("whois backbone gone")

        monkeypatch.setattr(stages_mod, "oid_w_clusters", boom)
        with pytest.raises(RuntimeError, match="whois backbone gone"):
            make_pipeline(small_universe).run()

    def test_ner_failure_degrades_notes_aka_only(
        self, small_universe, monkeypatch
    ):
        from repro.core.ner import NERModule

        def boom(self, pdb):
            raise RuntimeError("LLM unreachable")

        monkeypatch.setattr(NERModule, "run", boom)
        result = make_pipeline(small_universe).run()
        assert result.degraded is True
        assert "notes_aka" in result.feature_errors
        for survivor in ("oid_w", "oid_p", "rr", "favicons"):
            assert survivor in result.features
        statuses = {r["stage"]: r["status"] for r in result.stage_records}
        assert statuses["ner_extract"] == "failed"
        assert statuses["notes_aka"] == "skipped"


# ---------------------------------------------------------------------------
# Determinism and caching


class TestDeterminism:
    def test_identical_runs_are_byte_identical(self, small_universe, tmp_path):
        stores = []
        for name in ("a", "b"):
            store = ArtifactStore(root=tmp_path / name)
            make_pipeline(small_universe, store=store).run()
            stores.append(store)
        first, second = stores
        assert first.manifest() == second.manifest()
        files_a = sorted(p.name for p in (tmp_path / "a").iterdir())
        files_b = sorted(p.name for p in (tmp_path / "b").iterdir())
        assert files_a == files_b and files_a
        for name in files_a:
            assert (tmp_path / "a" / name).read_bytes() == (
                tmp_path / "b" / name
            ).read_bytes()

    def test_warm_run_skips_every_stage_and_reproduces_theta(
        self, small_universe, tmp_path
    ):
        store_cold = ArtifactStore(root=tmp_path / "cache")
        cold = make_pipeline(small_universe, store=store_cold).run()
        store_warm = ArtifactStore(root=tmp_path / "cache")
        warm = make_pipeline(small_universe, store=store_warm).run()

        assert all(r["status"] == "cached" for r in warm.stage_records)
        assert warm.mapping.clusters() == cold.mapping.clusters()
        assert org_factor_from_mapping(warm.mapping) == pytest.approx(
            org_factor_from_mapping(cold.mapping)
        )
        # Nothing was recomputed — including zero LLM traffic.
        assert store_warm.counters["ner_extract"]["computed"] == 0
        stats = warm.diagnostics["artifact_cache"]
        assert stats["computed"] == 0 and stats["hits"] == len(warm.stage_records)

    def test_shared_memory_store_reuses_across_runs(self, small_universe):
        store = ArtifactStore()
        pipeline = make_pipeline(small_universe, store=store)
        pipeline.run()
        second = pipeline.run()
        assert all(r["status"] == "cached" for r in second.stage_records)
        assert all(r["source"] == "memory" for r in second.stage_records)

    def test_default_runs_use_a_fresh_store(self, small_universe):
        pipeline = make_pipeline(small_universe)
        first = pipeline.run()
        second = pipeline.run()
        # No artifact reuse between default runs (legacy behaviour: the
        # LLM response cache, one level down, provides the hits).
        assert all(r["status"] == "ok" for r in second.stage_records)
        assert second.mapping.clusters() == first.mapping.clusters()

    def test_config_change_invalidates_only_affected_stages(
        self, small_universe
    ):
        store = ArtifactStore()
        base = BorgesConfig()
        make_pipeline(small_universe, store=store, config=base).run()
        changed = dataclasses.replace(base, apply_blocklists=False)
        result = make_pipeline(small_universe, store=store, config=changed).run()
        statuses = {r["stage"]: r["status"] for r in result.stage_records}
        # Blocklists only enter the rr/favicons slices (and merge sees new
        # upstream fingerprints); everything else is reused.
        assert statuses["oid_w"] == "cached"
        assert statuses["oid_p"] == "cached"
        assert statuses["ner_extract"] == "cached"
        assert statuses["notes_aka"] == "cached"
        assert statuses["scrape"] == "cached"
        assert statuses["rr"] == "ok"
        assert statuses["favicons"] == "ok"
        assert statuses["merge"] == "ok"


# ---------------------------------------------------------------------------
# The Table-6 sweep through the shared store


class TestSweepSharing:
    def test_sweep_runs_scrape_and_ner_exactly_once(self, small_universe):
        store = ArtifactStore()
        rows = factor_combination_table(
            small_universe.whois,
            small_universe.pdb,
            small_universe.web,
            artifact_store=store,
        )
        # 2 baselines + 15 non-empty feature combinations.
        assert len(rows) == 17
        assert store.counters["scrape"]["computed"] == 1
        assert store.counters["ner_extract"]["computed"] == 1
        # Every combination needs its own merge: 15 distinct artifacts.
        assert store.counters["merge"]["computed"] == 15


# ---------------------------------------------------------------------------
# Executor config + CLI surface


class TestExecutorSurface:
    def test_sequential_executor_matches_concurrent(self, small_universe):
        concurrent = make_pipeline(small_universe).run()
        sequential = make_pipeline(
            small_universe,
            config=dataclasses.replace(
                BorgesConfig(), executor=ExecutorConfig(max_workers=1)
            ),
        ).run()
        assert sequential.mapping.clusters() == concurrent.mapping.clusters()

    def test_executor_config_validation(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            ExecutorConfig(max_workers=0).validate()

    def test_plan_predicts_cache_hits(self, small_universe, tmp_path):
        store = ArtifactStore(root=tmp_path / "c")
        pipeline = make_pipeline(small_universe, store=store)
        assert all(row["cached"] is None for row in pipeline.plan())
        pipeline.run()
        assert all(row["cached"] == "memory" for row in pipeline.plan())

    def test_run_with_stage_subset(self, small_universe):
        result = make_pipeline(small_universe).run(stages=["rr"])
        assert set(result.features) == {"oid_w", "rr"}
        assert {r["stage"] for r in result.stage_records} == {
            "oid_w", "scrape", "rr", "merge"
        }

    def test_cli_explain_plan(self, capsys):
        status = cli_main(
            ["--orgs", "60", "--seed", "7", "run", "--explain-plan"]
        )
        assert status == 0
        out = capsys.readouterr().out
        for stage in ("oid_w", "scrape", "favicons", "merge"):
            assert stage in out
        assert "backbone" in out

    def test_cli_warm_cache_run(self, tmp_path, capsys):
        args = [
            "--orgs", "60", "--seed", "7", "run",
            "--artifact-cache", str(tmp_path / "cache"),
        ]
        assert cli_main(args) == 0
        cold = capsys.readouterr().out
        assert "8 planned, 0 served from cache" in cold
        assert cli_main(args) == 0
        warm = capsys.readouterr().out
        assert "8 served from cache" in warm
        assert "0 requests" in warm  # the warm run never touched the LLM

    def test_stage_records_reach_the_manifest(self, small_universe):
        from repro.obs import build_manifest

        result = make_pipeline(small_universe).run()
        manifest = build_manifest(result=result)
        stages = {entry["stage"]: entry for entry in manifest["stages"]}
        assert set(stages) == {
            "oid_w", "oid_p", "ner_extract", "notes_aka",
            "scrape", "rr", "favicons", "merge",
        }
        for entry in stages.values():
            assert entry["status"] in ("ok", "cached")
            assert entry["fingerprint"]
