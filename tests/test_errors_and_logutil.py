"""Unit tests for the error hierarchy and logging helpers."""

import logging

import pytest

from repro.errors import (
    DataError,
    FetchError,
    LLMError,
    LLMResponseError,
    RedirectLoopError,
    ReproError,
    URLError,
    UnknownASNError,
    WebError,
)
from repro.logutil import ProgressCounter, get_logger, setup_logging, timed


class TestErrorHierarchy:
    def test_everything_derives_from_repro_error(self):
        for exc_type in (DataError, LLMError, WebError, UnknownASNError):
            assert issubclass(exc_type, ReproError)

    def test_unknown_asn_records_asn(self):
        error = UnknownASNError(64512)
        assert error.asn == 64512
        assert "64512" in str(error)

    def test_fetch_error_fields(self):
        error = FetchError("http://x.example/", "host not found")
        assert error.url == "http://x.example/"
        assert error.reason == "host not found"

    def test_redirect_loop_is_fetch_error(self):
        error = RedirectLoopError("http://x.example/", 16)
        assert isinstance(error, FetchError)
        assert error.max_hops == 16

    def test_url_error_fields(self):
        error = URLError("not a url", "empty host")
        assert error.url == "not a url"

    def test_llm_response_error_keeps_raw(self):
        error = LLMResponseError("bad json", raw_output="{oops")
        assert error.raw_output == "{oops"

    def test_catching_base_class(self):
        with pytest.raises(ReproError):
            raise UnknownASNError(1)


class TestLogUtil:
    def test_get_logger_namespaces(self):
        assert get_logger("core.ner").name == "repro.core.ner"

    def test_get_logger_idempotent_prefix(self):
        assert get_logger("repro.web").name == "repro.web"

    def test_setup_logging_adds_one_handler(self):
        setup_logging()
        setup_logging()
        assert len(logging.getLogger("repro").handlers) == 1

    @pytest.fixture()
    def propagating_repro_logger(self):
        """setup_logging turns propagation off; caplog needs it back on."""
        logger = logging.getLogger("repro")
        previous = logger.propagate
        logger.propagate = True
        yield
        logger.propagate = previous

    def test_timed_context(self, caplog, propagating_repro_logger):
        logger = get_logger("test.timed")
        with caplog.at_level(logging.INFO, logger="repro.test.timed"):
            with timed(logger, "sleepless"):
                pass
        assert any("sleepless took" in r.message for r in caplog.records)

    def test_timed_yields_elapsed_holder(self):
        import time

        logger = get_logger("test.timed2")
        with timed(logger, "napping") as block:
            time.sleep(0.01)
        assert block.label == "napping"
        assert block.elapsed >= 0.01

    def test_timed_elapsed_set_even_on_error(self):
        logger = get_logger("test.timed3")
        with pytest.raises(RuntimeError):
            with timed(logger, "explodes") as block:
                raise RuntimeError("boom")
        assert block.elapsed > 0.0

    def test_progress_counter_counts(self):
        counter = ProgressCounter(get_logger("test.pc"), "items", every=10)
        for _ in range(25):
            counter.tick()
        assert counter.count == 25

    def test_progress_counter_logs_at_interval(self, caplog, propagating_repro_logger):
        logger = get_logger("test.pc2")
        counter = ProgressCounter(logger, "items", total=20, every=10)
        with caplog.at_level(logging.INFO, logger="repro.test.pc2"):
            for _ in range(20):
                counter.tick()
        assert sum("items:" in r.message for r in caplog.records) == 2

    def test_progress_counter_done_skips_duplicate_final_line(
        self, caplog, propagating_repro_logger
    ):
        logger = get_logger("test.pc3")
        counter = ProgressCounter(logger, "items", every=10)
        with caplog.at_level(logging.INFO, logger="repro.test.pc3"):
            for _ in range(20):
                counter.tick()
            counter.done()  # 20 is a multiple of 10: tick already logged it
        assert sum("items:" in r.message for r in caplog.records) == 2

    def test_progress_counter_done_logs_partial_tail(
        self, caplog, propagating_repro_logger
    ):
        logger = get_logger("test.pc4")
        counter = ProgressCounter(logger, "items", every=10)
        with caplog.at_level(logging.INFO, logger="repro.test.pc4"):
            for _ in range(15):
                counter.tick()
            counter.done()
        messages = [r.message for r in caplog.records if "items:" in r.message]
        assert len(messages) == 2
        assert "(done)" in messages[-1]
        assert "15" in messages[-1]

    def test_progress_counter_rate_in_output(
        self, caplog, propagating_repro_logger
    ):
        logger = get_logger("test.pc5")
        counter = ProgressCounter(logger, "items", every=5)
        with caplog.at_level(logging.INFO, logger="repro.test.pc5"):
            for _ in range(5):
                counter.tick()
        assert any("/s)" in r.message for r in caplog.records)
        assert counter.rate > 0.0
