"""Order-independent seeded randomness for resilience decisions.

Retry jitter and fault injection must be *deterministic* and *stable
across runs* for chaos runs to be reproducible from a seed: each decision
is keyed by a hash of the seed and the item's identity rather than by a
shared RNG stream whose state would depend on call order.  This is the
same discipline the simulated LLM's calibrated error model uses
(:mod:`repro.llm.errors_model` re-exports these helpers).
"""

from __future__ import annotations

import hashlib
import struct


def stable_unit(seed: int, *identity: object) -> float:
    """A deterministic pseudo-uniform value in [0, 1) for *identity*.

    Identical ``(seed, identity)`` always yields the same value,
    independent of call order — the property that makes temperature-0
    error injection and seeded chaos reproducible.
    """
    hasher = hashlib.sha256()
    hasher.update(str(seed).encode("utf-8"))
    for part in identity:
        hasher.update(b"\x1f")
        hasher.update(repr(part).encode("utf-8"))
    (value,) = struct.unpack(">Q", hasher.digest()[:8])
    return value / float(2**64)


def stable_choice_index(seed: int, n: int, *identity: object) -> int:
    """A deterministic index in ``range(n)`` for *identity*."""
    if n <= 0:
        raise ValueError("n must be positive")
    return int(stable_unit(seed, "choice", *identity) * n) % n
