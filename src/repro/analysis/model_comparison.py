"""Model-comparison analysis: mapping quality across the simulated zoo.

For every profile in :data:`repro.llm.model_zoo.MODEL_ZOO`, run the
extraction-stage validation (Table 4's protocol), the full pipeline, and
report extraction accuracy, θ, ground-truth pair precision/recall, and
estimated model spend — the table a practitioner needs to pick a model.
"""

from __future__ import annotations

from typing import Dict, List

from ..config import BorgesConfig
from ..core.ner import NERModule
from ..core.pipeline import BorgesPipeline
from ..llm.model_zoo import MODEL_ZOO
from ..llm.simulated import make_default_client
from ..metrics.org_factor import org_factor_from_mapping
from ..metrics.partition import score_partition
from .validation import validate_extraction


def model_comparison_table(context) -> List[Dict[str, object]]:
    """One row per zoo model (context: ExperimentContext)."""
    universe = context.universe
    truth = universe.ground_truth.true_clusters()
    rows: List[Dict[str, object]] = []
    for name in sorted(MODEL_ZOO):
        profile = MODEL_ZOO[name]
        llm_config = profile.llm_config()
        config = BorgesConfig(llm=llm_config)
        client = make_default_client(llm_config)

        ner = NERModule(client, config)
        validation = validate_extraction(
            ner, universe.pdb, universe.annotations
        )

        pipeline = BorgesPipeline(
            universe.whois, universe.pdb, universe.web,
            config=config, client=client,
        )
        mapping = pipeline.run().mapping
        scores = score_partition(mapping.clusters(), truth)
        usage = client.total_usage
        rows.append(
            {
                "model": name,
                "extract_accuracy": round(validation.counts.accuracy, 3),
                "theta": round(org_factor_from_mapping(mapping), 4),
                "pair_precision": round(scores.pair_precision, 4),
                "pair_recall": round(scores.pair_recall, 4),
                "relative_cost": round(
                    usage.cost_usd() * profile.cost_multiplier, 4
                ),
            }
        )
    return rows
