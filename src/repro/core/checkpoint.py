"""Crash-safe sharded-run checkpoint: resume from completed shards.

A million-ASN sharded run is the longest wall-clock path in the repo;
dying at shard 7 of 8 and redoing everything is the difference between a
non-event and an incident.  :class:`RunCheckpoint` journals every
completed shard's cluster lists into the same digest-chained, append-only
JSONL the watch daemon uses (:class:`repro.watch.journal.RunJournal` —
tamper-evident chain, fsync per entry, self-healing partial tail), keyed
by a run *identity*.  ``borges run --shards N --resume`` (and every
sharded watch refresh) replays the file, re-runs only missing or failed
shards, and reduces journaled + fresh clusters into a mapping
byte-identical to the uninterrupted run.

The identity is the digest of everything that determines the *result*:
dataset content digests, the result-relevant config fingerprint, the
stage set and the shard count.  It deliberately excludes the resilience
config — fault profiles, retry budgets and deadlines change how a run
*executes*, never what it computes — so a checkpoint written under chaos
is resumable by the clean re-run.  A ``begin`` under a different
identity resets the file: stale shards from another universe are never
reduced into the wrong mapping.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from ..digest import stable_digest
from ..logutil import get_logger
from ..types import Cluster
from ..watch.journal import RunJournal

_LOG = get_logger("core.checkpoint")

Pathish = Union[str, "Path"]  # noqa: F821 — typing nicety only


def run_identity(
    dataset_digests: Dict[str, str],
    config_fingerprint: str,
    n_shards: int,
    stages: Sequence[str],
) -> str:
    """Digest of everything that determines a sharded run's result."""
    return stable_digest(
        {
            "datasets": dict(dataset_digests),
            "config": config_fingerprint,
            "n_shards": int(n_shards),
            "stages": sorted(str(s) for s in stages),
        }
    )


def _clusters_to_json(clusters: Sequence[Cluster]) -> List[List[int]]:
    return sorted(sorted(int(a) for a in cluster) for cluster in clusters)


def _clusters_from_json(payload: object) -> List[Cluster]:
    return [frozenset(int(a) for a in cluster) for cluster in payload or []]


class RunCheckpoint:
    """Digest-chained journal of completed shards for one run identity.

    Entry kinds:

    ``begin``  opens a run (``identity``, ``n_shards``); everything after
               it belongs to that identity.  Only the *latest* begin's
               shards are live — an identity change resets the file.
    ``shard``  one completed shard: its merged cluster list plus its
               per-feature cluster lists, both as sorted ASN arrays so
               the entry digest is canonical.
    """

    def __init__(self, path: Pathish) -> None:
        self._journal = RunJournal(path)

    @property
    def path(self):
        return self._journal.path

    @property
    def dropped_tail(self) -> int:
        return self._journal.dropped_tail

    # -- replay ------------------------------------------------------------

    def identity(self) -> Optional[str]:
        """Identity of the latest ``begin``, or ``None`` for a fresh file."""
        begins = self._journal.entries("begin")
        if not begins:
            return None
        return str(begins[-1]["fields"].get("identity", ""))

    def completed_shards(
        self, identity: Optional[str] = None
    ) -> Dict[int, Dict[str, object]]:
        """Shard index → recorded fields, for the latest ``begin``.

        With *identity* given, an identity mismatch returns ``{}`` — a
        checkpoint from a different universe/config resumes nothing.
        """
        completed: Dict[int, Dict[str, object]] = {}
        current: Optional[str] = None
        for entry in self._journal.entries():
            kind = entry.get("kind")
            fields = dict(entry.get("fields", {}))
            if kind == "begin":
                current = str(fields.get("identity", ""))
                completed = {}
            elif kind == "shard":
                completed[int(fields.get("shard", -1))] = fields
        if identity is not None and current != identity:
            return {}
        return completed

    # -- writing -----------------------------------------------------------

    def begin(self, identity: str, n_shards: int) -> Dict[int, Dict[str, object]]:
        """Open a run; returns the shards already completed for *identity*.

        Same identity → the journal is extended (resume).  Different
        identity → the file is reset and nothing resumes.
        """
        completed = self.completed_shards(identity)
        if self.identity() != identity:
            if self.identity() is not None:
                _LOG.info(
                    "checkpoint %s: identity changed, starting fresh",
                    self.path,
                )
            self.reset()
            self._journal.append(
                "begin", identity=identity, n_shards=int(n_shards)
            )
        return completed

    def record_shard(
        self,
        shard_index: int,
        merged: Sequence[Cluster],
        features: Dict[str, Sequence[Cluster]],
        duration_seconds: float = 0.0,
    ) -> None:
        """Durably journal one completed shard's cluster lists."""
        self._journal.append(
            "shard",
            shard=int(shard_index),
            merged=_clusters_to_json(merged),
            features={
                str(name): _clusters_to_json(clusters)
                for name, clusters in sorted(features.items())
            },
            duration_seconds=round(float(duration_seconds), 6),
        )

    def reset(self) -> None:
        """Discard every entry (the file is recreated on the next append)."""
        path = self._journal.path
        try:
            path.unlink()
        except OSError:
            pass
        self._journal = RunJournal(path)

    # -- decoding ----------------------------------------------------------

    @staticmethod
    def shard_clusters(fields: Dict[str, object]) -> List[Cluster]:
        """A recorded shard's merged clusters, as frozensets."""
        return _clusters_from_json(fields.get("merged"))

    @staticmethod
    def shard_feature_clusters(
        fields: Dict[str, object]
    ) -> Dict[str, List[Cluster]]:
        """A recorded shard's per-feature clusters, as frozensets."""
        features = fields.get("features")
        if not isinstance(features, dict):
            return {}
        return {
            str(name): _clusters_from_json(clusters)
            for name, clusters in features.items()
        }

    def stats(self) -> Dict[str, object]:
        completed = self.completed_shards()
        return {
            "path": str(self.path),
            "identity": self.identity(),
            "entries": len(self._journal),
            "completed_shards": sorted(completed),
            "dropped_tail": self.dropped_tail,
        }
