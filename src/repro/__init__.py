"""Borges — Better ORGanizations Entities mappingS (IMC 2025 reproduction).

A framework for improving AS-to-Organization mappings by combining WHOIS
and PeeringDB organization keys with LLM-based extraction of sibling
ASNs from free text and website-based inference (redirect chains, domain
similarity, favicon analysis).

Quickstart::

    from repro import generate_universe, BorgesPipeline, org_factor_from_mapping

    universe = generate_universe()                    # offline synthetic inputs
    pipeline = BorgesPipeline(universe.whois, universe.pdb, universe.web)
    result = pipeline.run()
    print(org_factor_from_mapping(result.mapping))    # the theta metric

The package layout mirrors the system: substrates (``peeringdb``,
``whois``, ``web``, ``llm``, ``apnic``, ``asrank``), the synthetic-world
generator (``universe``), the baselines (``baselines``), the Borges core
(``core``), metrics and analyses (``metrics``, ``analysis``), the
experiment harness (``experiments``), and the observability layer
(``obs``: metrics registry, span tracing, run manifests).
"""

from .config import (
    ALL_FEATURES,
    BorgesConfig,
    LLMConfig,
    ScraperConfig,
    UniverseConfig,
)
from .core import BorgesPipeline, BorgesResult, OrgMapping
from .baselines import build_as2org_mapping, build_as2orgplus_mapping
from .metrics import org_factor, org_factor_from_mapping
from .universe import Universe, generate_universe

__version__ = "1.0.0"

__all__ = [
    "ALL_FEATURES",
    "BorgesConfig",
    "LLMConfig",
    "ScraperConfig",
    "UniverseConfig",
    "BorgesPipeline",
    "BorgesResult",
    "OrgMapping",
    "build_as2org_mapping",
    "build_as2orgplus_mapping",
    "org_factor",
    "org_factor_from_mapping",
    "Universe",
    "generate_universe",
    "__version__",
]
