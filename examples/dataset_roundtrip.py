#!/usr/bin/env python3
"""Working with the on-disk dataset formats.

Borges consumes the same file formats the real systems publish:

* PeeringDB bulk-export JSON (``org``/``net`` tables),
* CAIDA's AS2Org JSON-lines format (``Organization``/``ASN`` records),
* APNIC-style per-AS population CSV.

This example exports a universe to those formats, reloads everything
from disk, runs the pipeline on the reloaded data, and saves the
resulting mapping — the full offline workflow a downstream user follows
with real snapshots.

Run:  python examples/dataset_roundtrip.py [outdir]
"""

import sys
import tempfile
from pathlib import Path

from repro import BorgesPipeline, generate_universe, org_factor_from_mapping
from repro.apnic import ApnicDataset
from repro.config import UniverseConfig
from repro.core.mapping import OrgMapping
from repro.peeringdb import load_snapshot, save_snapshot
from repro.whois import load_as2org_file, save_as2org_file


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="borges-datasets-")
    )
    out.mkdir(parents=True, exist_ok=True)

    print("generating and exporting datasets...")
    universe = generate_universe(UniverseConfig(n_organizations=1200))
    save_snapshot(universe.pdb, out / "peeringdb_snapshot.json.gz")
    save_as2org_file(universe.whois, out / "as2org.jsonl.gz")
    universe.apnic.save_csv(out / "apnic_population.csv")
    for path in sorted(out.iterdir()):
        print(f"  wrote {path} ({path.stat().st_size:,} bytes)")

    print("\nreloading from disk...")
    pdb = load_snapshot(out / "peeringdb_snapshot.json.gz")
    whois = load_as2org_file(out / "as2org.jsonl.gz")
    apnic = ApnicDataset.load_csv(out / "apnic_population.csv")
    print(
        f"  {len(whois):,} WHOIS ASNs, {len(pdb):,} PDB nets, "
        f"{apnic.total_users:,} users"
    )

    print("\nrunning Borges on the reloaded datasets...")
    # The web is the one live component; offline we reuse the simulated
    # web (a real deployment points the scraper at the Internet).
    result = BorgesPipeline(whois, pdb, universe.web).run()
    theta = org_factor_from_mapping(result.mapping)
    print(f"  theta = {theta:.4f}, {len(result.mapping):,} organizations")

    mapping_path = out / "borges_mapping.json"
    result.mapping.save(mapping_path)
    reloaded = OrgMapping.load(mapping_path)
    assert reloaded.clusters() == result.mapping.clusters()
    print(f"  mapping saved and verified at {mapping_path}")


if __name__ == "__main__":
    main()
