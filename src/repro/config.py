"""Configuration dataclasses for the Borges pipeline and the synthetic world.

Two families of knobs live here:

* :class:`UniverseConfig` — parameters of the synthetic Internet used as an
  offline stand-in for the paper's PeeringDB/WHOIS/web/APNIC inputs.  The
  defaults are a scaled-down replica of the paper's 2024-07 snapshot that
  preserves its ratios (PeeringDB coverage, website coverage, org-size
  skew); see DESIGN.md §4 for the scale note.
* :class:`BorgesConfig` — the pipeline's own switches: which of the four
  features run, filter toggles, LLM and scraping settings.  These map
  one-to-one onto the design choices §4.2/§4.3 of the paper describes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

from .errors import ConfigError

#: Names of the four Borges features as used throughout tables and the CLI.
FEATURE_OID_P = "oid_p"
FEATURE_NOTES_AKA = "notes_aka"
FEATURE_RR = "rr"
FEATURE_FAVICONS = "favicons"
#: The compulsory WHOIS backbone; always on, never in ``features``.
FEATURE_OID_W = "oid_w"

ALL_FEATURES: Tuple[str, ...] = (
    FEATURE_OID_P,
    FEATURE_NOTES_AKA,
    FEATURE_RR,
    FEATURE_FAVICONS,
)

#: Canonical display order of every feature (Table 3 rows,
#: ``BorgesResult.feature_table``, and :func:`feature_combo_label` all
#: derive from this single tuple so they cannot drift when a feature is
#: added).
TABLE_FEATURE_ORDER: Tuple[str, ...] = (
    FEATURE_OID_P,
    FEATURE_OID_W,
    FEATURE_NOTES_AKA,
    FEATURE_RR,
    FEATURE_FAVICONS,
)


@dataclass(frozen=True)
class LLMConfig:
    """Settings for the chat model used by the NER and classifier stages.

    Mirrors §4.2: GPT-4o-mini with temperature 0 and top_p 1 for
    reproducible output.  ``backend`` selects the driver; the offline
    default is the deterministic simulator.
    """

    model: str = "gpt-4o-mini-sim"
    temperature: float = 0.0
    top_p: float = 1.0
    max_tokens: int = 1024
    backend: str = "simulated"
    #: Probability knobs of the simulator's calibrated error model.  They
    #: are chosen so the validation tables land near the paper's accuracy
    #: (Table 4: 0.947, Table 5: 0.986).  Setting both to 0 yields the
    #: perfect-oracle ablation.
    extraction_error_rate: float = 0.03
    classifier_error_rate: float = 0.09
    seed: int = 1340

    def validate(self) -> "LLMConfig":
        if not 0.0 <= self.temperature <= 2.0:
            raise ConfigError(f"temperature out of range: {self.temperature}")
        if not 0.0 <= self.top_p <= 1.0:
            raise ConfigError(f"top_p out of range: {self.top_p}")
        if self.max_tokens <= 0:
            raise ConfigError("max_tokens must be positive")
        for name in ("extraction_error_rate", "classifier_error_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} out of range: {rate}")
        return self


@dataclass(frozen=True)
class ScraperConfig:
    """Settings for the headless-browser analogue (§4.3.1)."""

    max_redirect_hops: int = 16
    timeout_seconds: float = 15.0
    follow_meta_refresh: bool = True
    execute_javascript: bool = True
    user_agent: str = "borges-repro/1.0 (+headless)"

    def validate(self) -> "ScraperConfig":
        if self.max_redirect_hops < 1:
            raise ConfigError("max_redirect_hops must be >= 1")
        if self.timeout_seconds <= 0:
            raise ConfigError("timeout_seconds must be positive")
        return self


@dataclass(frozen=True)
class ResilienceConfig:
    """Retry/backoff, circuit-breaker and fault-injection knobs.

    The delays are tuned for the offline simulators (no real network
    latency); a live deployment would raise them.  ``fault_profile``
    names one of :data:`repro.resilience.PROFILES`; the empty string
    defers to the ``BORGES_FAULT_PROFILE`` environment variable (default
    ``none``), which is how CI runs the unmodified suite under chaos.
    """

    #: LLM completion retries (exponential backoff, seeded jitter).
    llm_attempts: int = 3
    llm_base_delay: float = 0.01
    llm_max_delay: float = 0.25
    #: Web fetch retries; the simulated web answers instantly, so the
    #: default backoff is zero-cost while preserving the retry semantics.
    web_attempts: int = 3
    web_base_delay: float = 0.0
    web_max_delay: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_jitter: float = 0.1
    #: Circuit breakers (per LLM backend, per web host).
    breaker_failure_threshold: int = 5
    breaker_recovery_seconds: float = 30.0
    breaker_half_open_max_calls: int = 1
    #: Seeded chaos: profile name ("" → environment) and injector seed.
    fault_profile: str = ""
    fault_seed: int = 2020

    def validate(self) -> "ResilienceConfig":
        if self.llm_attempts < 1 or self.web_attempts < 1:
            raise ConfigError("retry attempts must be >= 1")
        for name in (
            "llm_base_delay", "llm_max_delay", "web_base_delay", "web_max_delay"
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ConfigError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ConfigError(f"backoff_jitter out of [0,1]: {self.backoff_jitter}")
        if self.breaker_failure_threshold < 1:
            raise ConfigError("breaker_failure_threshold must be >= 1")
        if self.breaker_recovery_seconds <= 0:
            raise ConfigError("breaker_recovery_seconds must be positive")
        if self.breaker_half_open_max_calls < 1:
            raise ConfigError("breaker_half_open_max_calls must be >= 1")
        if self.fault_profile:
            from .resilience.faults import PROFILES

            if self.fault_profile not in PROFILES:
                raise ConfigError(
                    f"unknown fault profile {self.fault_profile!r}; "
                    f"known: {sorted(PROFILES)}"
                )
        return self

    def with_profile(self, name: str) -> "ResilienceConfig":
        """Return a copy pinned to the named fault profile."""
        return dataclasses.replace(self, fault_profile=name).validate()


@dataclass(frozen=True)
class ExecutorConfig:
    """Stage-DAG execution knobs.

    ``max_workers`` bounds how many *independent* ready stages run
    concurrently; stages sharing a resource (the LLM client, the web
    driver) are serialised regardless, and an active fault profile forces
    sequential execution so seeded chaos stays a pure function of call
    order.  ``artifact_cache_dir`` persists stage artifacts to disk so a
    later process re-runs warm (the CLI's ``--artifact-cache``).
    """

    max_workers: int = 4
    artifact_cache_dir: str = ""

    def validate(self) -> "ExecutorConfig":
        if self.max_workers < 1:
            raise ConfigError("max_workers must be >= 1")
        return self


@dataclass(frozen=True)
class BorgesConfig:
    """Full pipeline configuration.

    ``features`` selects which sibling-inference signals run; WHOIS org IDs
    (``OID_W``) are always included, as in the paper, because WHOIS is the
    compulsory delegation database that defines the node set.
    """

    features: FrozenSet[str] = frozenset(ALL_FEATURES)
    #: §4.2 input filter: drop notes/aka entries containing no digits.
    ner_input_filter: bool = True
    #: §4.2 output filter: only accept numbers literally present in the text.
    ner_output_filter: bool = True
    #: §4.3.2 / §4.3.3 blocklists (Appendix D).
    apply_blocklists: bool = True
    #: §4.3.3 step 2: LLM reclassification of shared-favicon groups whose
    #: subdomains differ.  Disabling leaves only the strict step-1 rule.
    favicon_llm_step: bool = True
    llm: LLMConfig = field(default_factory=LLMConfig)
    scraper: ScraperConfig = field(default_factory=ScraperConfig)
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    executor: ExecutorConfig = field(default_factory=ExecutorConfig)

    def validate(self) -> "BorgesConfig":
        unknown = self.features - set(ALL_FEATURES)
        if unknown:
            raise ConfigError(f"unknown features: {sorted(unknown)}")
        self.llm.validate()
        self.scraper.validate()
        self.resilience.validate()
        self.executor.validate()
        return self

    def with_fault_profile(self, name: str) -> "BorgesConfig":
        """Return a copy running under the named fault profile."""
        return dataclasses.replace(
            self, resilience=self.resilience.with_profile(name)
        ).validate()

    def with_features(self, *names: str) -> "BorgesConfig":
        """Return a copy restricted to the given feature subset."""
        return dataclasses.replace(self, features=frozenset(names)).validate()

    def has(self, feature: str) -> bool:
        return feature in self.features


@dataclass(frozen=True)
class UniverseConfig:
    """Parameters of the synthetic Internet.

    The defaults build a ≈12k-ASN world whose statistics mirror the
    paper's snapshot at roughly 1:10 scale:

    * paper: 117,431 WHOIS ASNs / 95,300 WHOIS orgs  → ratio 1.23 AS/org
    * paper: 30,955 PDB nets (26.4% of WHOIS ASNs) / 27,712 PDB orgs
    * paper: 26,225 of 30,955 PDB nets carry a website (84.7%)
    * paper: 17,633 non-empty notes/aka; 2,916 with digits
    """

    seed: int = 42
    #: Number of ground-truth organizations (conglomerates count once).
    n_organizations: int = 9_000
    #: Fraction of organizations that are multinational conglomerates with
    #: several subsidiaries/brands (the heavy tail of org sizes).
    conglomerate_fraction: float = 0.02
    #: Mean subsidiaries per conglomerate (geometric-ish tail).
    mean_subsidiaries: float = 5.0
    #: Largest conglomerate size cap (paper: DoD runs 973 of 117k ≈ 0.8%).
    max_org_asns: int = 120
    #: Probability an AS registers in PeeringDB (paper ≈ 0.264 overall;
    #: larger orgs are more likely to register — modelled inside generator).
    pdb_registration_rate: float = 0.30
    #: Probability a PDB net reports a website (paper ≈ 0.847).
    website_rate: float = 0.85
    #: Probability a PDB net has non-empty notes or aka (paper ≈ 0.57).
    notes_rate: float = 0.55
    #: Of non-empty notes/aka, fraction containing digits (paper ≈ 0.165).
    numeric_notes_rate: float = 0.17
    #: Of numeric notes, fraction that actually report siblings (the rest
    #: are upstream lists, phone numbers, prefix counts, years...).
    sibling_notes_rate: float = 0.35
    #: Probability a merged/acquired subsidiary's site redirects to the
    #: parent's site (the Clearwire→Sprint→T-Mobile pattern).
    merger_redirect_rate: float = 0.25
    #: Probability subsidiaries share the parent's favicon.
    shared_favicon_rate: float = 0.06
    #: Probability a small org uses a web-framework default favicon.
    framework_favicon_rate: float = 0.08
    #: Probability a small org points its PDB website at a mainstream
    #: platform (facebook/github/...) — the blocklist targets these.
    platform_website_rate: float = 0.04
    #: Fraction of WHOIS records where a conglomerate's subsidiary gets its
    #: own WHOIS org (legal fragmentation — what AS2Org cannot see past).
    whois_fragmentation_rate: float = 0.85
    #: Probability PeeringDB consolidates a fragmented subsidiary under the
    #: parent's PDB org (the Fig. 3 Lumen/CenturyLink effect).
    pdb_consolidation_rate: float = 0.32
    #: Dead-site probability (paper: 20,742 of 24,200 URLs reachable).
    dead_site_rate: float = 0.14
    #: Access-network share among ASNs (eyeballs carrying APNIC users).
    access_fraction: float = 0.45
    #: Global user population to distribute over access networks.
    total_users: int = 420_000_000

    def validate(self) -> "UniverseConfig":
        if self.n_organizations < 10:
            raise ConfigError("n_organizations must be >= 10")
        if self.max_org_asns < 2:
            raise ConfigError("max_org_asns must be >= 2")
        rates = {
            name: getattr(self, name)
            for name in (
                "conglomerate_fraction",
                "pdb_registration_rate",
                "website_rate",
                "notes_rate",
                "numeric_notes_rate",
                "sibling_notes_rate",
                "merger_redirect_rate",
                "shared_favicon_rate",
                "framework_favicon_rate",
                "platform_website_rate",
                "whois_fragmentation_rate",
                "pdb_consolidation_rate",
                "dead_site_rate",
                "access_fraction",
            )
        }
        for name, value in rates.items():
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} out of [0,1]: {value}")
        if self.mean_subsidiaries < 1.0:
            raise ConfigError("mean_subsidiaries must be >= 1")
        if self.total_users <= 0:
            raise ConfigError("total_users must be positive")
        return self

    def scaled(self, factor: float) -> "UniverseConfig":
        """Return a copy with organization count scaled by *factor*.

        Useful for quick tests (``cfg.scaled(0.02)``) and for stress runs.
        """
        if factor <= 0:
            raise ConfigError("scale factor must be positive")
        return dataclasses.replace(
            self,
            n_organizations=max(10, int(self.n_organizations * factor)),
            total_users=max(1, int(self.total_users * factor)),
        ).validate()


#: A small universe used across the test-suite: fast but still exhibits
#: conglomerates, redirects, favicons and noisy notes.
TEST_UNIVERSE = UniverseConfig(seed=7, n_organizations=400, total_users=20_000_000)


def feature_combo_label(features: FrozenSet[str]) -> str:
    """Human-readable label for a feature subset, Table-6 style."""
    order = {name: i for i, name in enumerate(TABLE_FEATURE_ORDER)}
    pretty = {
        FEATURE_OID_P: "OID_P",
        FEATURE_NOTES_AKA: "N&A",
        FEATURE_RR: "R&R",
        FEATURE_FAVICONS: "F",
    }
    if not features:
        return "AS2Org (baseline)"
    names = sorted(features, key=lambda n: order[n])
    return " + ".join(pretty[n] for n in names)


def all_feature_combos() -> Tuple[FrozenSet[str], ...]:
    """Every subset of the four features (the 16 rows of Table 6)."""
    combos = [
        frozenset(name for i, name in enumerate(ALL_FEATURES) if mask & (1 << i))
        for mask in range(2 ** len(ALL_FEATURES))
    ]
    return tuple(sorted(combos, key=lambda s: (len(s), feature_combo_label(s))))
