"""Marginal-growth measures (§6).

When a Borges cluster merges several baseline clusters, the *marginal
growth* is the increase over the largest prior component — §6.1's
example: merging groups of 300, 200 and 100 users yields marginal growth
(300+200+100) − 300 = 300... no: the increase over the largest prior
group, 600 − 300 = 300 for users summed; the paper's phrasing ("300 −
200 = 100") measures against the group that *gained* — we follow the
formal definition: total of the merged cluster minus the maximum
baseline component.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Set

from ..types import ASN, Cluster


def baseline_components(
    cluster: Cluster, baseline_cluster_of: Callable[[ASN], Cluster]
) -> List[Cluster]:
    """The distinct baseline clusters a new cluster is composed of."""
    seen: Set[Cluster] = set()
    for asn in cluster:
        seen.add(baseline_cluster_of(asn))
    return sorted(seen, key=lambda c: (-len(c), min(c)))


def marginal_growth(
    cluster: Cluster,
    baseline_cluster_of: Callable[[ASN], Cluster],
    weight_of: Callable[[Iterable[ASN]], float],
) -> float:
    """Weight gained over the heaviest baseline component.

    ``weight_of`` maps an ASN group to its weight — user population for
    Tables 7–8, country-count for Table 9 via dedicated logic, ASN count
    for Fig. 8.
    """
    components = baseline_components(cluster, baseline_cluster_of)
    if len(components) <= 1:
        return 0.0
    total = weight_of(cluster)
    largest = max(weight_of(component) for component in components)
    return max(0.0, total - largest)


def marginal_members_growth(
    cluster: Cluster, baseline_cluster_of: Callable[[ASN], Cluster]
) -> int:
    """Marginal growth counted in member ASNs (Fig. 8's unit)."""
    return int(
        marginal_growth(
            cluster,
            baseline_cluster_of,
            weight_of=lambda group: float(len(set(group) & set(cluster))),
        )
    )
