#!/usr/bin/env python
"""CI shard-chaos check: crashes and hangs must degrade, never fail.

Runs ``borges run --shards 4`` over a ~100k-ASN universe three times in
fresh subprocesses:

1. under the ``shard-crash`` profile with a checkpoint — the run must
   *complete* (exit 0), report a degraded salvaged mapping with
   quarantined shards, and journal every surviving shard;
2. under the ``shard-hang`` profile with a short ``--shard-deadline`` —
   hung shard attempts must be killed at the deadline and the whole run
   stay inside a wall-clock ceiling;
3. with the fault cleared and ``--resume`` over the crash run's
   checkpoint — only the previously-failed shards may re-run, and the
   final mapping must be **byte-identical** to a clean sharded run.

Run from the repository root::

    python scripts/shard_chaos_check.py

Exits non-zero with a diagnostic on any violation.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: ~100k ASNs under the default universe config.
DEFAULT_ORGS = 67_700

#: Wall-clock ceiling for the shard-hang run: 4 shards × 2 attempts ×
#: the deadline, plus pipeline time for the surviving shards.  The
#: deadline is far above a legitimate ~25k-ASN shard (a few seconds)
#: and far below the injected 120 s hang.
HANG_DEADLINE = 30.0
HANG_WALL_CEILING = 600.0


def run_borges(
    label: str,
    tmp: Path,
    orgs: int,
    *,
    profile: str = "",
    checkpoint: Path = None,
    resume: bool = False,
    deadline: float = 0.0,
    expect_degraded: bool = False,
) -> dict:
    mapping = tmp / f"mapping-{label}.json"
    manifest = tmp / f"manifest-{label}.json"
    cmd = [sys.executable, "-m", "repro.cli", "--telemetry-out", str(manifest)]
    if profile:
        cmd += ["--fault-profile", profile]
    cmd += [
        "--seed", "11",
        "--orgs", str(orgs),
        "run",
        "--shards", "4",
        "--shard-retries", "1",
        "--save-mapping", str(mapping),
    ]
    if checkpoint is not None:
        cmd += ["--checkpoint", str(checkpoint)]
    if resume:
        cmd += ["--resume"]
    if deadline:
        cmd += ["--shard-deadline", str(deadline)]
    env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
    start = time.perf_counter()
    proc = subprocess.run(
        cmd, cwd=ROOT, env=env, capture_output=True, text=True
    )
    seconds = time.perf_counter() - start
    if proc.returncode != 0:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        raise SystemExit(
            f"{label}: borges run failed ({proc.returncode}) — chaos must "
            f"degrade the run, never fail it"
        )
    degraded = "DEGRADED" in proc.stdout
    if degraded != expect_degraded:
        print(proc.stdout)
        raise SystemExit(
            f"{label}: degraded={degraded}, expected {expect_degraded}"
        )
    payload = json.loads(manifest.read_text())
    fault = payload.get("diagnostics", {}).get("fault_tolerance", {})
    print(
        f"{label}: {seconds:,.1f}s, degraded={degraded}, "
        f"quarantined={fault.get('failed_shards')}, "
        f"resumed={fault.get('resumed_shards')}, "
        f"retries={fault.get('retry_total')}, "
        f"org_count={payload.get('org_count'):,}"
    )
    return {
        "mapping": mapping.read_bytes(),
        "fault": fault,
        "seconds": seconds,
        "stdout": proc.stdout,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--orgs", type=int, default=DEFAULT_ORGS)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp_name:
        tmp = Path(tmp_name)
        checkpoint = tmp / "checkpoint.jsonl"

        crash = run_borges(
            "shard-crash", tmp, args.orgs,
            profile="shard-crash", checkpoint=checkpoint,
            expect_degraded=True,
        )
        if not crash["fault"].get("failed_shards"):
            print(
                "FAIL: shard-crash at 4 shards quarantined nothing",
                file=sys.stderr,
            )
            return 1

        hang = run_borges(
            "shard-hang", tmp, args.orgs,
            profile="shard-hang", deadline=HANG_DEADLINE,
            expect_degraded=True,
        )
        failed = hang["fault"].get("failed_shards") or []
        reasons = {
            record.get("exit_reason")
            for record in hang["fault"].get("attempts", [])
            if record.get("shard") in failed
        }
        if reasons - {"deadline"}:
            print(
                f"FAIL: hung shards quarantined for {sorted(reasons)}, "
                f"expected only the deadline watchdog",
                file=sys.stderr,
            )
            return 1
        if hang["seconds"] > HANG_WALL_CEILING:
            print(
                f"FAIL: shard-hang run took {hang['seconds']:,.1f}s "
                f"(> {HANG_WALL_CEILING:,.0f}s) — the watchdog is not "
                f"bounding hung attempts",
                file=sys.stderr,
            )
            return 1

        resumed = run_borges(
            "resume", tmp, args.orgs,
            checkpoint=checkpoint, resume=True,
        )
        if resumed["fault"].get("failed_shards"):
            print("FAIL: clean resume still quarantined shards", file=sys.stderr)
            return 1
        reused = resumed["fault"].get("resumed_shards") or []
        if not reused or len(reused) >= 4:
            print(
                f"FAIL: resume reused {len(reused)}/4 shards — expected "
                f"only the crashed shards to re-run",
                file=sys.stderr,
            )
            return 1

        clean = run_borges("clean", tmp, args.orgs, checkpoint=None)

    if resumed["mapping"] != clean["mapping"]:
        print(
            "FAIL: resumed mapping differs from the clean sharded run",
            file=sys.stderr,
        )
        return 1
    print(
        f"resume converged: byte-identical to clean "
        f"({len(clean['mapping']):,} bytes), reused shards {reused}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
