"""The snapshot blob format and its compiler.

A blob is one flat byte string that N serve workers can map read-only
and query without deserializing anything.  Layout::

    +----------------------------+
    | header (fixed size)        |  magic, version, payload SHA-256,
    +----------------------------+  logical index digest, counts,
    | string arena               |  section offsets/lengths
    +----------------------------+
    | MPH g-array   (u32 × r)    |  per-bucket displacement values
    +----------------------------+
    | ASN slots     (28 B × m)   |  asn, name ref, website ref, org idx
    +----------------------------+
    | org records   (36 B × o)   |  name/country refs, members span,
    +----------------------------+  representative (lowest) ASN
    | members       (u64 × a)    |  concatenated per-org sorted ASNs
    +----------------------------+
    | sorted ASNs   (u64 × a)    |  the full universe, ascending
    +----------------------------+
    | token table   (20 B × t)   |  token ref + postings span, sorted
    +----------------------------+  lexicographically (prefix ranges
    | postings      (u32 × p)    |  are contiguous)
    +----------------------------+

Everything is little-endian and offset-indexed: strings are ``(offset,
length)`` references into the arena (deduplicated at compile time),
members and postings are ``(start, count)`` spans into their flat
arrays.  There are no pointers and no per-record framing, so the same
bytes are valid in a file, an ``mmap`` view, or a test's ``bytes``
object.

**ASN lookup** is a CHD-style minimal perfect hash (Belazzougui,
Botelho & Dietzfelbinger's *hash, displace, and compress*, minus the
compress): ASNs hash into ``r ≈ n/4`` buckets; per bucket a
displacement ``d`` is chosen so every key's slot ``mix(key ^ d·φ) % m``
is unique and unoccupied, buckets placed largest-first.  Lookups cost
two hashes and one slot probe; the slot stores the key, so misses are
detected exactly.  ``m`` carries ~6% slack over ``n`` to keep the
displacement search short; empty slots hold a sentinel key.

**Integrity** is stamped twice: ``payload_sha256`` covers every byte
after the header (a truncated or bit-flipped segment fails
:func:`verify_blob` before it can serve), and ``index_digest`` carries
the *logical* digest of the source :class:`MappingIndex`, so a blob
answers ``stats()`` identically to the index it was compiled from.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...errors import SnapshotError

#: First 8 bytes of every blob.
BLOB_MAGIC = b"BORGBLOB"

#: Bumped on any layout change; readers refuse other versions.
BLOB_VERSION = 1

#: Conventional filename suffix for compiled snapshot blobs.
BLOB_SUFFIX = ".blob"

#: Key stored in unused MPH slots (no real ASN is 2^64 - 1).
EMPTY_KEY = 0xFFFFFFFFFFFFFFFF

_MASK64 = (1 << 64) - 1
_PHI64 = 0x9E3779B97F4A7C15  # 2^64 / golden ratio; decorrelates d values

# Header: magic, version, flags, total size, payload SHA-256 (raw),
# logical index digest (hex ascii), counts (asns/orgs/tokens/buckets/
# slots), method string ref, then (offset, length) per section in blob
# order: arena, garray, slots, orgs, members, asns, tokens, postings.
_HEADER = struct.Struct("<8sIIQ32s64sQQQQQII" + "QQ" * 8)

_SLOT = struct.Struct("<QIIIII")  # asn, name ref, website ref, org idx
_ORG = struct.Struct("<IIIIQIQ")  # name ref, country ref, members span, rep
_TOKEN = struct.Struct("<IIQI")  # token ref, postings span
_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")

SLOT_SIZE = _SLOT.size
ORG_SIZE = _ORG.size
TOKEN_SIZE = _TOKEN.size
HEADER_SIZE = _HEADER.size

_SECTIONS = (
    "arena",
    "garray",
    "slots",
    "orgs",
    "members",
    "asns",
    "tokens",
    "postings",
)


class BlobFormatError(SnapshotError):
    """A blob failed structural or digest verification."""


def mix64(x: int) -> int:
    """MurmurHash3's 64-bit finalizer: the blob's one hash function."""
    x &= _MASK64
    x ^= x >> 33
    x = (x * 0xFF51AFD7ED558CCD) & _MASK64
    x ^= x >> 33
    x = (x * 0xC4CEB9FE1A85EC53) & _MASK64
    return x ^ (x >> 33)


def _bucket_of(key: int, buckets: int) -> int:
    return mix64(key ^ _PHI64) % buckets


def _slot_of(key: int, d: int, slots: int) -> int:
    return mix64(key ^ ((d * _PHI64) & _MASK64)) % slots


@dataclass(frozen=True)
class BlobHeader:
    """The decoded fixed-size header of one blob."""

    version: int
    flags: int
    blob_size: int
    payload_sha256: bytes
    index_digest: str
    asn_count: int
    org_count: int
    token_count: int
    bucket_count: int
    slot_count: int
    method_ref: Tuple[int, int]
    sections: Dict[str, Tuple[int, int]]

    def section(self, name: str) -> Tuple[int, int]:
        return self.sections[name]


def _build_mph(keys: List[int]) -> Tuple[int, int, List[int], List[Optional[int]]]:
    """(slot count m, bucket count r, g-array, slot→key) for *keys*."""
    n = len(keys)
    m = n + max(1, n >> 4)  # ~6% slack keeps the displacement search short
    r = (n // 4) + 1
    buckets: List[List[int]] = [[] for _ in range(r)]
    for key in keys:
        buckets[_bucket_of(key, r)].append(key)
    occupied = bytearray(m)
    g = [0] * r
    placed: List[Optional[int]] = [None] * m
    # Largest buckets first: they need the most simultaneous free slots,
    # so they get the emptiest table.
    for index in sorted(range(r), key=lambda i: -len(buckets[i])):
        bucket = buckets[index]
        if not bucket:
            break  # sorted by size: everything after is empty too
        d = 1  # g == 0 marks an empty bucket, so displacements start at 1
        while True:
            positions = [_slot_of(key, d, m) for key in bucket]
            if len(set(positions)) == len(positions) and not any(
                occupied[p] for p in positions
            ):
                break
            d += 1
            if d > 0xFFFFFFFF:  # pragma: no cover — astronomically unlikely
                raise BlobFormatError(
                    f"perfect-hash displacement overflow in bucket {index}"
                )
        g[index] = d
        for key, position in zip(bucket, positions):
            occupied[position] = 1
            placed[position] = key
    return m, r, g, placed


def compile_index(index) -> bytes:
    """Lower a :class:`~repro.serve.index.MappingIndex` into blob bytes.

    The compiler reads the index's compiled structures directly (it
    lives in the same package as :class:`MappingIndex` and is versioned
    with it); org order follows the index's cluster order so the stored
    logical digest describes exactly the same structure.
    """
    asn_map = index._asns
    org_map = index._orgs
    postings_map = index._postings

    arena = bytearray()
    interned: Dict[bytes, Tuple[int, int]] = {}

    def ref(text: str) -> Tuple[int, int]:
        data = text.encode("utf-8")
        got = interned.get(data)
        if got is None:
            got = (len(arena), len(data))
            interned[data] = got
            arena.extend(data)
        return got

    method_ref = ref(index.method)

    org_ids = list(org_map)
    org_index_of = {handle: i for i, handle in enumerate(org_ids)}
    org_rows: List[bytes] = []
    member_rows: List[bytes] = []
    member_cursor = 0
    for handle in org_ids:
        record = org_map[handle]
        name_off, name_len = ref(record.name)
        country_off, country_len = ref(record.country)
        org_rows.append(
            _ORG.pack(
                name_off,
                name_len,
                country_off,
                country_len,
                member_cursor,
                len(record.members),
                record.members[0],
            )
        )
        for member in record.members:
            member_rows.append(_U64.pack(member))
        member_cursor += len(record.members)

    keys = list(asn_map)
    slot_count, bucket_count, g, placed = _build_mph(keys)
    slot_rows: List[bytes] = []
    for key in placed:
        if key is None:
            slot_rows.append(_SLOT.pack(EMPTY_KEY, 0, 0, 0, 0, 0))
            continue
        record = asn_map[key]
        name_off, name_len = ref(record.name)
        site_off, site_len = ref(record.website)
        slot_rows.append(
            _SLOT.pack(
                key,
                name_off,
                name_len,
                site_off,
                site_len,
                org_index_of[record.org.org_id],
            )
        )

    asn_rows = [_U64.pack(asn) for asn in sorted(keys)]

    token_rows: List[bytes] = []
    posting_rows: List[bytes] = []
    posting_cursor = 0
    for token in sorted(postings_map):
        handles = postings_map[token]
        token_off, token_len = ref(token)
        token_rows.append(
            _TOKEN.pack(token_off, token_len, posting_cursor, len(handles))
        )
        for handle in handles:
            posting_rows.append(_U32.pack(org_index_of[handle]))
        posting_cursor += len(handles)

    if len(arena) > 0xFFFFFFFF:  # string refs are u32
        raise BlobFormatError(
            f"string arena of {len(arena)} bytes exceeds the 4 GiB limit"
        )

    section_bytes = {
        "arena": bytes(arena),
        "garray": b"".join(_U32.pack(d) for d in g),
        "slots": b"".join(slot_rows),
        "orgs": b"".join(org_rows),
        "members": b"".join(member_rows),
        "asns": b"".join(asn_rows),
        "tokens": b"".join(token_rows),
        "postings": b"".join(posting_rows),
    }
    offsets: List[Tuple[int, int]] = []
    cursor = HEADER_SIZE
    for name in _SECTIONS:
        data = section_bytes[name]
        offsets.append((cursor, len(data)))
        cursor += len(data)
    payload = b"".join(section_bytes[name] for name in _SECTIONS)

    flat: List[int] = []
    for pair in offsets:
        flat.extend(pair)
    header = _HEADER.pack(
        BLOB_MAGIC,
        BLOB_VERSION,
        0,
        HEADER_SIZE + len(payload),
        hashlib.sha256(payload).digest(),
        index.digest.encode("ascii"),
        len(keys),
        len(org_ids),
        len(token_rows),
        bucket_count,
        slot_count,
        method_ref[0],
        method_ref[1],
        *flat,
    )
    return header + payload


def read_header(buf) -> BlobHeader:
    """Decode the header of *buf* (no payload digest check)."""
    if len(buf) < HEADER_SIZE:
        raise BlobFormatError(
            f"blob of {len(buf)} bytes is shorter than the "
            f"{HEADER_SIZE}-byte header"
        )
    fields = _HEADER.unpack_from(buf, 0)
    magic, version = fields[0], fields[1]
    if magic != BLOB_MAGIC:
        raise BlobFormatError(f"bad blob magic: {bytes(magic)!r}")
    if version != BLOB_VERSION:
        raise BlobFormatError(
            f"unsupported blob version {version} (expected {BLOB_VERSION})"
        )
    sections = {
        name: (fields[13 + 2 * i], fields[14 + 2 * i])
        for i, name in enumerate(_SECTIONS)
    }
    return BlobHeader(
        version=version,
        flags=fields[2],
        blob_size=fields[3],
        payload_sha256=fields[4],
        index_digest=fields[5].decode("ascii"),
        asn_count=fields[6],
        org_count=fields[7],
        token_count=fields[8],
        bucket_count=fields[9],
        slot_count=fields[10],
        method_ref=(fields[11], fields[12]),
        sections=sections,
    )


def verify_blob(buf) -> BlobHeader:
    """Structural + digest verification; returns the decoded header.

    Checks the magic/version, the declared size against the actual
    buffer, section bounds, and the payload SHA-256 — the same
    fail-before-swap discipline the store applies to every other
    snapshot source.
    """
    header = read_header(buf)
    if header.blob_size > len(buf):
        raise BlobFormatError(
            f"blob declares {header.blob_size} bytes but only "
            f"{len(buf)} are present (truncated segment)"
        )
    cursor = HEADER_SIZE
    for name in _SECTIONS:
        offset, length = header.sections[name]
        if offset != cursor or offset + length > header.blob_size:
            raise BlobFormatError(
                f"section {name!r} at ({offset}, {length}) breaks the "
                f"declared layout"
            )
        cursor = offset + length
    if cursor != header.blob_size:
        raise BlobFormatError(
            f"sections end at {cursor}, not the declared {header.blob_size}"
        )
    actual = hashlib.sha256(
        bytes(memoryview(buf)[HEADER_SIZE:header.blob_size])
    ).digest()
    if actual != header.payload_sha256:
        raise BlobFormatError(
            "blob payload digest mismatch (bit rot or tampering): "
            f"expected {header.payload_sha256.hex()[:16]}…, "
            f"got {actual.hex()[:16]}…"
        )
    return header


def blob_stats(buf) -> Dict[str, object]:
    """Accounting for one blob: counts and per-section byte sizes."""
    header = read_header(buf)
    return {
        "version": header.version,
        "bytes": header.blob_size,
        "asns": header.asn_count,
        "orgs": header.org_count,
        "search_tokens": header.token_count,
        "index_digest": header.index_digest,
        "sections": {
            name: header.sections[name][1] for name in _SECTIONS
        },
    }
