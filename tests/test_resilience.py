"""The resilience layer: retries, breakers, seeded chaos, degradation.

Covers the contracts ISSUE's robustness work promises: backoff schedules
are deterministic and bounded; breakers open/half-open/close exactly as
the state machine says; fault injection is a pure function of
(seed, profile); the client masks transient faults; the scraper no
longer caches transient failures forever nor blesses 404 landing pages;
and the pipeline completes degraded — with accounting — when a feature's
backend dies mid-run.
"""

from __future__ import annotations

import dataclasses
import os

import pytest

from repro.config import TEST_UNIVERSE, BorgesConfig, ResilienceConfig
from repro.core import BorgesPipeline
from repro.errors import (
    CircuitOpenError,
    ConfigError,
    FetchError,
    LLMBackendError,
    LLMInvalidRequestError,
    LLMRateLimitError,
    LLMTimeoutError,
)
from repro.llm.client import ChatClient, ChatMessage
from repro.llm.simulated import SimulatedChatBackend, make_default_client
from repro.obs import build_manifest
from repro.obs.registry import MetricsRegistry
from repro.resilience import (
    PROFILES,
    BreakerRegistry,
    CircuitBreaker,
    FaultInjector,
    FaultyChatBackend,
    FaultyWeb,
    RetryPolicy,
    resolve_fault_profile,
    stable_unit,
)
from repro.universe import generate_universe
from repro.web.http import HTTPResponse
from repro.web.scraper import HeadlessScraper
from repro.web.simweb import SimulatedWeb

NO_SLEEP = RetryPolicy(sleep=lambda _s: None)

#: Zero-delay resilience so chaos tests never actually sleep.
FAST_RESILIENCE = ResilienceConfig(
    llm_base_delay=0.0, llm_max_delay=0.0, web_base_delay=0.0, web_max_delay=0.0
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# RetryPolicy


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            attempts=6, base_delay=0.01, max_delay=0.05, multiplier=2.0,
            jitter=0.0,
        )
        assert policy.schedule() == [0.01, 0.02, 0.04, 0.05, 0.05]

    def test_jitter_stays_within_fraction_and_is_deterministic(self):
        policy = RetryPolicy(
            attempts=5, base_delay=0.1, max_delay=10.0, multiplier=1.0,
            jitter=0.25, seed=3,
        )
        for attempt in range(1, 5):
            delay = policy.delay_for(attempt, key="example.com")
            assert 0.075 <= delay <= 0.125
            assert delay == policy.delay_for(attempt, key="example.com")
        # A different key draws a different (but still bounded) jitter.
        assert policy.schedule("a.com") != policy.schedule("b.com")

    def test_execute_retries_transient_then_succeeds(self):
        slept = []
        policy = RetryPolicy(attempts=3, jitter=0.0, sleep=slept.append)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise LLMTimeoutError("transient")
            return "ok"

        assert policy.execute(flaky) == "ok"
        assert calls["n"] == 3
        assert slept == [0.01, 0.02]

    def test_fatal_error_is_not_retried(self):
        policy = NO_SLEEP
        calls = {"n": 0}

        def fatal():
            calls["n"] += 1
            raise LLMInvalidRequestError("malformed request")

        with pytest.raises(LLMInvalidRequestError):
            policy.execute(fatal)
        assert calls["n"] == 1

    def test_exhaustion_reraises_last_error(self):
        policy = RetryPolicy(attempts=2, sleep=lambda _s: None)
        with pytest.raises(LLMRateLimitError):
            policy.execute(lambda: (_ for _ in ()).throw(
                LLMRateLimitError("still limited")
            ))

    def test_validate_rejects_bad_knobs(self):
        with pytest.raises(ConfigError):
            RetryPolicy(attempts=0).validate()
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=1.5).validate()
        with pytest.raises(ConfigError):
            RetryPolicy(multiplier=0.5).validate()


# ---------------------------------------------------------------------------
# CircuitBreaker


class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = FakeClock()
        breaker = CircuitBreaker(
            name="test", failure_threshold=3, recovery_seconds=10.0,
            clock=clock, registry=MetricsRegistry(), **kwargs,
        )
        return breaker, clock

    def test_opens_at_threshold_and_rejects(self):
        breaker, _clock = self.make()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.allow() is False
        assert breaker.rejections == 1

    def test_success_resets_failure_count(self):
        breaker, _clock = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_after_recovery_then_closes_on_success(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.allow() is False
        clock.advance(10.0)
        assert breaker.state == "half_open"
        assert breaker.allow() is True       # the probe
        assert breaker.allow() is False      # probes are bounded
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow() is True

    def test_half_open_reopens_on_probe_failure(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow() is True
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.allow() is False

    def test_call_raises_circuit_open(self):
        breaker, _clock = self.make()
        for _ in range(3):
            with pytest.raises(LLMTimeoutError):
                breaker.call(lambda: (_ for _ in ()).throw(
                    LLMTimeoutError("down")
                ))
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "never runs")

    def test_registry_isolates_keys(self):
        registry = BreakerRegistry(
            failure_threshold=1, registry=MetricsRegistry(), prefix="web"
        )
        registry.breaker("a.com").record_failure()
        assert registry.breaker("a.com").state == "open"
        assert registry.breaker("b.com").state == "closed"
        assert registry.open_count() == 1
        assert registry.states() == {"a.com": "open", "b.com": "closed"}
        assert registry.breaker("a.com").name == "web:a.com"


# ---------------------------------------------------------------------------
# Fault injection


class TestFaultInjector:
    def sequence(self, seed, calls=60, profile="flaky"):
        injector = FaultInjector(
            PROFILES[profile], seed=seed, registry=MetricsRegistry()
        )
        return [
            injector.next_fault("llm", f"key{i % 7}") for i in range(calls)
        ]

    def test_same_seed_same_sequence(self):
        assert self.sequence(1) == self.sequence(1)

    def test_different_seed_different_sequence(self):
        assert self.sequence(1) != self.sequence(2)

    def test_none_profile_injects_nothing(self):
        assert all(k is None for k in self.sequence(5, profile="none"))

    def test_flaky_caps_consecutive_faults(self):
        injector = FaultInjector(
            PROFILES["flaky"], seed=9, registry=MetricsRegistry()
        )
        streak = 0
        for i in range(400):
            kind = injector.next_fault("llm", "same-call-site")
            streak = streak + 1 if kind else 0
            assert streak <= PROFILES["flaky"].max_consecutive

    def test_burst_profile_repeats_the_fault(self):
        injector = FaultInjector(
            PROFILES["burst"], seed=1, registry=MetricsRegistry()
        )
        kinds = [injector.next_fault("llm", f"k{i}") for i in range(500)]
        first = next(i for i, k in enumerate(kinds) if k is not None)
        burst = kinds[first:first + PROFILES["burst"].burst_length]
        assert len(set(burst)) == 1 and burst[0] is not None

    def test_resolve_profile_env_and_unknown(self, monkeypatch):
        monkeypatch.delenv("BORGES_FAULT_PROFILE", raising=False)
        assert resolve_fault_profile("").name == "none"
        monkeypatch.setenv("BORGES_FAULT_PROFILE", "flaky")
        assert resolve_fault_profile(None).name == "flaky"
        assert resolve_fault_profile("storm").name == "storm"
        with pytest.raises(ConfigError):
            resolve_fault_profile("hurricane")

    def test_stable_unit_is_uniformish(self):
        draws = [stable_unit(0, "x", i) for i in range(200)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert 0.35 < sum(draws) / len(draws) < 0.65


# ---------------------------------------------------------------------------
# Client-level resilience


def _extraction_messages(asn=65550, notes="AS65551 is our sibling."):
    # Borrow the real prompt renderer so the simulated backend accepts it.
    from repro.llm.prompts import render_extraction_prompt

    return [
        ChatMessage(role="user", content=render_extraction_prompt(asn, notes, ""))
    ]


class DyingBackend(SimulatedChatBackend):
    """Delegates to the simulator until ``die_after`` calls, then times out."""

    def __init__(self, die_after):
        super().__init__()
        self.calls = 0
        self.die_after = die_after

    def complete(self, messages, config):
        self.calls += 1
        if self.calls > self.die_after:
            raise LLMTimeoutError("backend died mid-run")
        return super().complete(messages, config)


class TestClientResilience:
    def test_flaky_faults_are_masked(self):
        """max_consecutive < attempts ⇒ chaos is invisible in the output."""
        clean = make_default_client()
        messages = _extraction_messages()
        expected = clean.chat(messages).content

        backend = FaultyChatBackend(
            SimulatedChatBackend(),
            FaultInjector(PROFILES["storm"], seed=6, registry=MetricsRegistry()),
        )
        # Storm has no consecutive cap, so give the policy a big budget.
        client = ChatClient(
            backend,
            retry_policy=RetryPolicy(attempts=30, sleep=lambda _s: None),
            breaker=CircuitBreaker(
                name="llm:test", failure_threshold=1000,
                registry=MetricsRegistry(),
            ),
            registry=MetricsRegistry(),
        )
        assert client.chat(messages).content == expected

    def test_retry_exhaustion_wraps_with_attempt_count(self):
        backend = DyingBackend(die_after=0)
        client = ChatClient(
            backend,
            retry_policy=RetryPolicy(attempts=3, sleep=lambda _s: None),
            registry=MetricsRegistry(),
        )
        with pytest.raises(LLMBackendError, match="after 3 attempts"):
            client.chat(_extraction_messages())
        assert backend.calls == 3

    def test_breaker_opens_then_fails_fast(self):
        backend = DyingBackend(die_after=0)
        clock = FakeClock()
        breaker = CircuitBreaker(
            name="llm:test", failure_threshold=4, recovery_seconds=30.0,
            clock=clock, registry=MetricsRegistry(),
        )
        client = ChatClient(
            backend,
            retry_policy=RetryPolicy(attempts=2, sleep=lambda _s: None),
            breaker=breaker,
            registry=MetricsRegistry(),
        )
        with pytest.raises(LLMBackendError):
            client.chat(_extraction_messages(notes="first request"))
        with pytest.raises(LLMBackendError):
            client.chat(_extraction_messages(notes="second request"))
        assert breaker.state == "open"
        calls_before = backend.calls
        with pytest.raises(CircuitOpenError):
            client.chat(_extraction_messages(notes="third request"))
        assert backend.calls == calls_before  # rejected without touching it

        # After recovery the half-open probe reaches the backend again; it
        # fails, the breaker re-opens, and the retry is rejected outright.
        clock.advance(30.0)
        with pytest.raises(CircuitOpenError):
            client.chat(_extraction_messages(notes="fourth request"))
        assert backend.calls == calls_before + 1
        assert breaker.state == "open"

    def test_invalid_request_is_fatal_not_retried(self):
        backend = SimulatedChatBackend()
        client = ChatClient(
            backend,
            retry_policy=RetryPolicy(attempts=3, sleep=lambda _s: None),
            registry=MetricsRegistry(),
        )
        with pytest.raises(LLMInvalidRequestError):
            client.chat([ChatMessage(role="user", content="what is an AS?")])


# ---------------------------------------------------------------------------
# Scraper resilience (satellites: 404 handling, transient negative cache)


class ScriptedWeb:
    """A web driver whose fetch outcomes are scripted per host."""

    def __init__(self):
        self.script = {}
        self.fetches = []

    def set(self, host, outcomes):
        """Outcomes: list of HTTPResponse | Exception, last one repeats."""
        self.script[host] = list(outcomes)

    def fetch(self, url):
        from repro.web.url import parse_url

        host = parse_url(url).host
        self.fetches.append(host)
        outcomes = self.script.get(host)
        if not outcomes:
            raise FetchError(url, "host not found")
        outcome = outcomes.pop(0) if len(outcomes) > 1 else outcomes[0]
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    def favicon_bytes(self, url):
        return None


def page(url, status=200):
    return HTTPResponse(url=url, status=status, body="<html>hi</html>")


FAST_SCRAPER_RESILIENCE = dataclasses.replace(
    FAST_RESILIENCE, web_attempts=3, breaker_failure_threshold=5
)


class TestScraperResilience:
    def make_scraper(self, web, **overrides):
        resilience = dataclasses.replace(FAST_SCRAPER_RESILIENCE, **overrides)
        return HeadlessScraper(
            web, registry=MetricsRegistry(), resilience=resilience
        )

    def test_404_final_page_is_a_failure(self):
        web = ScriptedWeb()
        web.set("www.gone.com", [page("https://www.gone.com/", status=404)])
        result = self.make_scraper(web).resolve("https://www.gone.com/")
        assert result.ok is False
        assert result.error == "http 404"
        assert result.final_url is None
        assert result.transient is False

    def test_5xx_is_retried_then_reported_transient(self):
        web = ScriptedWeb()
        web.set("www.down.com", [page("https://www.down.com/", status=503)])
        scraper = self.make_scraper(web)
        result = scraper.resolve("https://www.down.com/")
        assert result.ok is False
        assert result.error == "server error 503"
        assert result.transient is True
        assert web.fetches.count("www.down.com") == 3  # all attempts used

    def test_retry_masks_a_one_off_transient_failure(self):
        web = ScriptedWeb()
        web.set("www.blip.com", [
            FetchError("https://www.blip.com/", "connection reset", transient=True),
            page("https://www.blip.com/"),
        ])
        result = self.make_scraper(web).resolve("https://www.blip.com/")
        assert result.ok is True
        assert result.final_url == "https://www.blip.com/"

    def test_transient_failure_is_not_cached_forever(self):
        web = ScriptedWeb()
        web.set("www.flaky.com", [
            FetchError("https://www.flaky.com/", "timed out", transient=True),
            page("https://www.flaky.com/"),
        ])
        scraper = self.make_scraper(web, web_attempts=1)
        first = scraper.resolve("https://www.flaky.com/")
        assert first.ok is False and first.transient is True
        second = scraper.resolve("https://www.flaky.com/")
        assert second.ok is True
        assert scraper.reattempts == 1
        assert scraper.stats()["transient_failures"] == 0

    def test_permanent_failure_stays_cached(self):
        web = ScriptedWeb()  # unknown host → "host not found", not transient
        scraper = self.make_scraper(web)
        first = scraper.resolve("https://www.nxdomain.com/")
        assert first.ok is False and first.transient is False
        scraper.resolve("https://www.nxdomain.com/")
        assert web.fetches.count("www.nxdomain.com") == 1  # served from cache

    def test_breaker_opens_per_host(self):
        web = ScriptedWeb()
        web.set("www.dead.com", [
            FetchError("https://www.dead.com/", "timed out", transient=True),
        ])
        web.set("www.fine.com", [page("https://www.fine.com/")])
        scraper = self.make_scraper(web, breaker_failure_threshold=4)
        scraper.resolve("https://www.dead.com/")      # 3 failures
        scraper.resolve("https://www.dead.com/path")  # 4th → breaker opens
        assert scraper.breaker_states()["www.dead.com"] == "open"
        rejected = scraper.resolve("https://www.dead.com/other")
        assert rejected.ok is False and rejected.transient is True
        assert "circuit" in rejected.error
        # The healthy host is untouched by its neighbour's outage.
        assert scraper.resolve("https://www.fine.com/").ok is True

    def test_redirect_without_location_is_a_failure(self):
        web = ScriptedWeb()
        web.set("www.odd.com", [
            HTTPResponse(url="https://www.odd.com/", status=301, body="")
        ])
        result = self.make_scraper(web).resolve("https://www.odd.com/")
        assert result.ok is False
        assert result.error == "redirect without location"


# ---------------------------------------------------------------------------
# Pipeline degradation


class TestPipelineDegradation:
    @pytest.fixture(scope="class")
    def small_universe(self):
        return generate_universe(TEST_UNIVERSE)

    def test_backend_death_mid_run_degrades_but_completes(self, small_universe):
        backend = DyingBackend(die_after=10)
        config = dataclasses.replace(BorgesConfig(), resilience=FAST_RESILIENCE)
        registry = MetricsRegistry()
        client = ChatClient(
            backend,
            retry_policy=RetryPolicy(attempts=2, sleep=lambda _s: None),
            breaker=CircuitBreaker(
                name="llm:dying", failure_threshold=3, registry=registry
            ),
            registry=registry,
        )
        pipeline = BorgesPipeline(
            small_universe.whois, small_universe.pdb, small_universe.web,
            config, client=client, registry=registry,
        )
        result = pipeline.run()
        assert result.degraded is True
        assert "notes_aka" in result.feature_errors
        # NER dies first; the favicon classifier then hits the open breaker.
        assert "favicons" in result.feature_errors
        # The run still produced a mapping from the surviving features.
        assert "oid_w" in result.features and "oid_p" in result.features
        assert "rr" in result.features  # salvaged without the favicon stage
        assert len(result.mapping) > 0
        resilience = result.diagnostics["resilience"]
        assert resilience["degraded"] is True
        assert resilience["feature_errors"] == result.feature_errors
        assert resilience["llm_breaker"] == "open"

    def test_degraded_flag_reaches_the_manifest(self, small_universe):
        backend = DyingBackend(die_after=0)
        config = dataclasses.replace(BorgesConfig(), resilience=FAST_RESILIENCE)
        client = ChatClient(
            backend,
            retry_policy=RetryPolicy(attempts=1, sleep=lambda _s: None),
            registry=MetricsRegistry(),
        )
        pipeline = BorgesPipeline(
            small_universe.whois, small_universe.pdb, small_universe.web,
            config, client=client, registry=MetricsRegistry(),
        )
        result = pipeline.run()
        manifest = build_manifest(
            config=config, result=result, client=client,
            registry=MetricsRegistry(),
        )
        assert manifest["degraded"] is True
        assert set(manifest["feature_errors"]) == set(result.feature_errors)

    def test_clean_run_is_not_degraded(self, borges_result):
        assert borges_result.degraded is False
        assert borges_result.feature_errors == {}
        resilience = borges_result.diagnostics["resilience"]
        # Under the chaos CI job the suite itself runs with
        # $BORGES_FAULT_PROFILE set; the run must still not degrade.
        expected = os.environ.get("BORGES_FAULT_PROFILE", "") or "none"
        assert resilience["fault_profile"] == expected
        assert resilience["degraded"] is False

    def test_storm_profile_completes_and_reproduces(self, small_universe):
        config = dataclasses.replace(
            BorgesConfig().with_fault_profile("storm"),
            resilience=dataclasses.replace(
                FAST_RESILIENCE, fault_profile="storm"
            ),
        )

        def run_once():
            pipeline = BorgesPipeline(
                small_universe.whois, small_universe.pdb, small_universe.web,
                config, registry=MetricsRegistry(),
            )
            return pipeline.run()

        first, second = run_once(), run_once()
        # Same seed + profile ⇒ byte-identical outcome, degraded or not.
        assert first.mapping.clusters() == second.mapping.clusters()
        assert first.degraded == second.degraded
        assert first.feature_errors == second.feature_errors
        stats_1 = first.diagnostics["resilience"].get("faults_injected")
        stats_2 = second.diagnostics["resilience"].get("faults_injected")
        assert stats_1 == stats_2 and stats_1  # chaos actually fired

    def test_flaky_profile_preserves_results(self, small_universe, borges_result):
        config = dataclasses.replace(
            BorgesConfig(),
            resilience=dataclasses.replace(
                FAST_RESILIENCE, fault_profile="flaky"
            ),
        )
        pipeline = BorgesPipeline(
            small_universe.whois, small_universe.pdb, small_universe.web,
            config, registry=MetricsRegistry(),
        )
        result = pipeline.run()
        assert result.degraded is False
        assert result.mapping.clusters() == borges_result.mapping.clusters()
        injected = result.diagnostics["resilience"]["faults_injected"]
        assert sum(injected.values()) > 0  # faults fired, and were masked


# ---------------------------------------------------------------------------
# FaultyWeb wrapper


class TestFaultyWeb:
    def test_delegates_registry_interface(self):
        web = SimulatedWeb()
        web.add_page("https://www.x.com/", title="X")
        faulty = FaultyWeb(
            web,
            FaultInjector(PROFILES["none"], registry=MetricsRegistry()),
        )
        assert len(faulty) == 1
        assert "www.x.com" in faulty
        assert faulty.hosts() == ["www.x.com"]
        assert faulty.fetch("https://www.x.com/").ok is True
        assert faulty.favicon_bytes("https://www.x.com/") is None

    def test_injects_seeded_faults(self):
        web = SimulatedWeb()
        for i in range(30):
            web.add_page(f"https://www.site{i}.com/")
        injector = FaultInjector(
            PROFILES["storm"], seed=4, registry=MetricsRegistry()
        )
        faulty = FaultyWeb(web, injector)
        outcomes = []
        for i in range(30):
            try:
                response = faulty.fetch(f"https://www.site{i}.com/")
                outcomes.append(response.status)
            except FetchError as exc:
                assert exc.transient is True
                outcomes.append(exc.reason)
        assert any(o != 200 for o in outcomes)
        assert sum(injector.stats().values()) > 0
