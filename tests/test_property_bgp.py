"""Property-based tests for BGP propagation over random topologies.

The invariant under test is the core of the substrate: every path the
simulator emits over *any* valid (acyclic-p2c) topology must be
loop-free and valley-free, and route preference must never pick a
provider-learned route when a customer-learned one exists.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asrank import ASTopology
from repro.asrank.bgp import is_valley_free, propagate_routes


@st.composite
def random_topology(draw):
    """A random layered topology: p2c edges only point downward, so the
    provider graph is a DAG by construction; plus random same-layer
    peerings."""
    n_layers = draw(st.integers(min_value=2, max_value=4))
    layer_sizes = [
        draw(st.integers(min_value=1, max_value=4)) for _ in range(n_layers)
    ]
    layers = []
    asn = 10
    for size in layer_sizes:
        layers.append(list(range(asn, asn + size)))
        asn += size
    topology = ASTopology()
    for node_list in layers:
        for node in node_list:
            topology.add_asn(node)
    # Downward p2c edges between consecutive layers.
    for upper, lower in zip(layers, layers[1:]):
        for customer in lower:
            n_providers = draw(
                st.integers(min_value=1, max_value=min(2, len(upper)))
            )
            providers = draw(
                st.permutations(upper).map(lambda p: p[:n_providers])
            )
            for provider in providers:
                topology.add_p2c(provider, customer)
    # Same-layer peerings.
    for node_list in layers:
        for i in range(0, len(node_list) - 1, 2):
            if draw(st.booleans()):
                topology.add_p2p(node_list[i], node_list[i + 1])
    return topology


@settings(max_examples=40, deadline=None)
@given(random_topology())
def test_topology_generator_is_acyclic(topology):
    topology.validate_acyclic()


@settings(max_examples=30, deadline=None)
@given(random_topology(), st.data())
def test_all_routes_valley_free_and_loop_free(topology, data):
    asns = topology.asns()
    origin = data.draw(st.sampled_from(asns))
    table = propagate_routes(topology, origin)
    for asn, (path, _relation) in table.items():
        assert path[0] == asn and path[-1] == origin
        assert len(path) == len(set(path)), "loop in path"
        assert is_valley_free(topology, path), path


@settings(max_examples=30, deadline=None)
@given(random_topology(), st.data())
def test_customer_routes_preferred(topology, data):
    """If an AS has a route via a direct customer edge to the origin, the
    selected route must be customer-learned (the Gao-Rexford economic
    preference)."""
    asns = topology.asns()
    origin = data.draw(st.sampled_from(asns))
    table = propagate_routes(topology, origin)
    for provider in topology.providers_of(origin):
        entry = table.get(provider)
        assert entry is not None
        path, relation = entry
        # The direct customer route has length 1; selection may pick an
        # equally-preferred customer route but never peer/provider-learned.
        assert relation == 0  # _FROM_CUSTOMER
