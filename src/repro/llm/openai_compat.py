"""Adapter for real OpenAI-compatible chat endpoints.

The paper runs GPT-4o-mini through the OpenAI API.  This backend speaks
the same ``/v1/chat/completions`` wire protocol using only the standard
library, so pointing Borges at a real model is::

    from repro.llm.client import ChatClient
    from repro.llm.openai_compat import OpenAICompatBackend

    backend = OpenAICompatBackend(
        base_url="https://api.openai.com/v1",
        api_key=os.environ["OPENAI_API_KEY"],
    )
    client = ChatClient(backend, config=LLMConfig(model="gpt-4o-mini"))

Everything downstream (NER module, favicon classifier, caching, usage
accounting) is unchanged — the simulated backend and this one are
interchangeable ``ChatBackend`` implementations.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, List, Sequence

from ..config import LLMConfig
from ..errors import LLMBackendError
from ..logutil import get_logger
from .client import ChatBackend, ChatMessage, ImageContent, TextContent

_LOG = get_logger("llm.openai_compat")


def message_to_wire(message: ChatMessage) -> Dict[str, object]:
    """Serialize a :class:`ChatMessage` into OpenAI wire format."""
    if isinstance(message.content, str):
        return {"role": message.role, "content": message.content}
    blocks: List[Dict[str, object]] = []
    for block in message.content:
        if isinstance(block, (TextContent, ImageContent)):
            blocks.append(block.to_json())
        else:  # pragma: no cover - defensive
            raise LLMBackendError(f"unsupported content block {block!r}")
    return {"role": message.role, "content": blocks}


class OpenAICompatBackend(ChatBackend):
    """Minimal, dependency-free OpenAI-compatible chat driver."""

    name = "openai-compat"

    def __init__(
        self,
        base_url: str,
        api_key: str = "",
        timeout_seconds: float = 60.0,
    ) -> None:
        self._base_url = base_url.rstrip("/")
        self._api_key = api_key
        self._timeout = timeout_seconds

    def complete(
        self, messages: Sequence[ChatMessage], config: LLMConfig
    ) -> str:
        payload = {
            "model": config.model,
            "temperature": config.temperature,
            "top_p": config.top_p,
            "max_tokens": config.max_tokens,
            "messages": [message_to_wire(m) for m in messages],
        }
        request = urllib.request.Request(
            self._base_url + "/chat/completions",
            data=json.dumps(payload).encode("utf-8"),
            headers=self._headers(),
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self._timeout) as resp:
                body = json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raise LLMBackendError(
                f"chat endpoint returned HTTP {exc.code}: {exc.reason}"
            ) from exc
        except (urllib.error.URLError, OSError) as exc:
            raise LLMBackendError(f"chat endpoint unreachable: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise LLMBackendError(f"non-JSON chat response: {exc}") from exc
        return self._extract_content(body)

    def _headers(self) -> Dict[str, str]:
        headers = {"Content-Type": "application/json"}
        if self._api_key:
            headers["Authorization"] = f"Bearer {self._api_key}"
        return headers

    @staticmethod
    def _extract_content(body: Dict[str, object]) -> str:
        try:
            choices = body["choices"]  # type: ignore[index]
            first = choices[0]  # type: ignore[index]
            content = first["message"]["content"]  # type: ignore[index]
        except (KeyError, IndexError, TypeError) as exc:
            raise LLMBackendError(
                f"malformed chat completion payload: {body!r:.200}"
            ) from exc
        if not isinstance(content, str):
            raise LLMBackendError("chat completion content is not text")
        return content
