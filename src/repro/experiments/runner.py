"""Experiment registry and the shared, cached context.

Building a universe and running the pipeline is fast (<2 s at default
scale) but happens once per process: :func:`get_context` memoizes by
universe seed/size so the CLI and the bench suite reuse one context
across all ten experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..analysis import (
    factor_combination_table,
    feature_contribution_table,
    footprint_growth,
    footprint_summary,
    hypergiant_sizes,
    population_change_summary,
    theta_curves,
    top_population_growth,
    transit_marginal_growth,
    validate_classifier,
    validate_extraction,
)
from ..baselines import build_as2org_mapping, build_as2orgplus_mapping
from ..config import BorgesConfig, UniverseConfig
from ..core.artifacts import ArtifactStore
from ..core.mapping import OrgMapping
from ..core.pipeline import BorgesPipeline, BorgesResult
from ..errors import ExperimentError
from ..logutil import get_logger, timed
from ..metrics.org_factor import org_factor_from_mapping
from ..obs.registry import get_registry
from ..obs.tracer import get_tracer
from ..universe import Universe, generate_universe
from ..web.favicon import FaviconAPI
from .report import Report

_LOG = get_logger("experiments.runner")


@dataclass
class ExperimentContext:
    """One universe plus the three mappings every experiment consumes."""

    universe: Universe
    pipeline: BorgesPipeline
    result: BorgesResult
    as2org: OrgMapping
    as2orgplus: OrgMapping
    #: Content-addressed stage cache shared by every pipeline this
    #: context spawns (the Table-6 sweep reuses the primary run's scrape
    #: and NER artifacts instead of recomputing them per combination).
    artifact_store: ArtifactStore = field(default_factory=ArtifactStore)

    @property
    def borges(self) -> OrgMapping:
        return self.result.mapping

    @classmethod
    def build(
        cls,
        universe_config: Optional[UniverseConfig] = None,
        borges_config: Optional[BorgesConfig] = None,
    ) -> "ExperimentContext":
        tracer = get_tracer()
        store = ArtifactStore()
        with timed(_LOG, "experiment context build") as block:
            with tracer.span("context.universe"):
                universe = generate_universe(universe_config)
            pipeline = BorgesPipeline(
                universe.whois, universe.pdb, universe.web,
                config=borges_config, artifact_store=store,
            )
            result = pipeline.run()
            with tracer.span("context.baselines"):
                as2org = build_as2org_mapping(universe.whois)
                as2orgplus = build_as2orgplus_mapping(
                    universe.whois, universe.pdb
                )
        get_registry().gauge(
            "context_build_seconds", "wall-clock to build an ExperimentContext"
        ).set(block.elapsed)
        return cls(
            universe=universe,
            pipeline=pipeline,
            result=result,
            as2org=as2org,
            as2orgplus=as2orgplus,
            artifact_store=store,
        )


_CONTEXT_CACHE: Dict[Tuple[int, int], ExperimentContext] = {}


def get_context(
    universe_config: Optional[UniverseConfig] = None,
) -> ExperimentContext:
    """A memoized context for the given universe configuration."""
    config = universe_config or UniverseConfig()
    key = (config.seed, config.n_organizations)
    if key not in _CONTEXT_CACHE:
        _LOG.info("building experiment context for %s", key)
        _CONTEXT_CACHE[key] = ExperimentContext.build(config)
    return _CONTEXT_CACHE[key]


# -- experiment implementations ------------------------------------------------


def _table3(ctx: ExperimentContext) -> Report:
    return Report(
        experiment_id="table3",
        title="ASes and Organizations obtained from each feature",
        rows=feature_contribution_table(ctx.result),
    )


def _table4(ctx: ExperimentContext) -> Report:
    validation = validate_extraction(
        ctx.pipeline._ner, ctx.universe.pdb, ctx.universe.annotations
    )
    row = validation.counts.as_table_row()
    return Report(
        experiment_id="table4",
        title="LLM information-extraction validation (notes and aka)",
        rows=[{"metric": k, "value": v} for k, v in row.items()],
        notes=[f"sample size: {validation.sample_size} records"],
    )


def _table5(ctx: ExperimentContext) -> Report:
    web_result = ctx.result.web_result
    if web_result is None:
        raise ExperimentError("pipeline ran without the web features")
    favicon_api = FaviconAPI(ctx.universe.web)
    validation = validate_classifier(
        web_result, favicon_api, ctx.universe.annotations
    )
    rows = []
    for label, counts in (
        ("Step 1", validation.step1),
        ("Step 2", validation.step2),
        ("All", validation.overall),
    ):
        row: Dict[str, object] = {"step": label}
        row.update(counts.as_table_row())
        rows.append(row)
    return Report(
        experiment_id="table5",
        title="LLM favicon-classifier validation (per step and overall)",
        rows=rows,
        notes=[f"favicon groups reviewed: {validation.groups_reviewed}"],
    )


def _table6(ctx: ExperimentContext) -> Report:
    rows = factor_combination_table(
        ctx.universe.whois,
        ctx.universe.pdb,
        ctx.universe.web,
        config=ctx.pipeline.config,
        client=ctx.pipeline.client,
        artifact_store=ctx.artifact_store,
    )
    return Report(
        experiment_id="table6",
        title="Organization Factor (theta) per feature combination",
        rows=rows,
        notes=[
            "paper: AS2Org 0.3343, as2org+ 0.3467 (+3.7%), Borges 0.3576 (+7%)"
        ],
    )


def _table7(ctx: ExperimentContext) -> Report:
    summary = population_change_summary(
        ctx.borges, ctx.as2org, ctx.universe.apnic
    )
    rows = [
        {
            "group": "Changed",
            "organizations": summary.changed_count,
            "mean_users_as2org": round(summary.mean_users_changed_as2org),
            "mean_users_borges": round(summary.mean_users_changed_borges),
        },
        {
            "group": "Unchanged",
            "organizations": summary.unchanged_count,
            "mean_users_as2org": round(summary.mean_users_unchanged),
            "mean_users_borges": round(summary.mean_users_unchanged),
        },
    ]
    return Report(
        experiment_id="table7",
        title="Mean AS population of changed vs unchanged organizations",
        rows=rows,
        notes=[
            f"total marginal growth: {summary.total_marginal_growth:,} users "
            f"({summary.marginal_growth_pct_of_internet:.1f}% of "
            f"{summary.total_users:,}) — paper: 193M of 4.21B (≈5%)",
        ],
    )


def _table8(ctx: ExperimentContext) -> Report:
    rows = top_population_growth(ctx.borges, ctx.as2org, ctx.universe.apnic)
    return Report(
        experiment_id="table8",
        title="Top 20 marginal AS population growths",
        rows=rows,
    )


def _table9(ctx: ExperimentContext) -> Report:
    rows = footprint_growth(ctx.borges, ctx.as2org, ctx.universe.apnic)
    summary = footprint_summary(ctx.borges, ctx.as2org, ctx.universe.apnic)
    return Report(
        experiment_id="table9",
        title="Top 20 country-level footprint growths",
        rows=rows,
        notes=[
            f"{summary.expanded_count} organizations expanded; mean marginal "
            f"increase {summary.mean_marginal_countries:.2f} countries "
            "(paper: 101 orgs, 2.37 countries)",
        ],
    )


def _fig7(ctx: ExperimentContext) -> Report:
    curves = theta_curves(ctx.universe.whois, ctx.as2org)
    theta = org_factor_from_mapping(ctx.as2org)
    return Report(
        experiment_id="fig7",
        title="Organization Factor construction: cumulative curves",
        series={
            name: ([float(x) for x in xs], [float(y) for y in ys])
            for name, (xs, ys) in curves.items()
        },
        notes=[f"as2org theta from curve: {theta:.4f}"],
    )


def _fig8(ctx: ExperimentContext) -> Report:
    series = transit_marginal_growth(
        ctx.borges, ctx.as2org, ctx.universe.asrank
    )
    rows = [
        {
            "window": f"top {window:,}",
            "cumulative_slope": round(slope, 4),
            "mean_marginal_growth": round(series.mean_growth_top(window), 3),
        }
        for window, slope in sorted(series.slopes.items())
    ]
    return Report(
        experiment_id="fig8",
        title="Marginal network growth of organizations along AS-Rank",
        rows=rows,
        series={
            "cumulative_growth": (
                [float(r) for r in series.ranks],
                [float(g) for g in series.cumulative_growth],
            )
        },
        notes=[
            "paper: top 100 gain ≈5 ASNs on average; slope ≈1 through the "
            "top 1,000; flat in the tail",
        ],
    )


def _fig9(ctx: ExperimentContext) -> Report:
    rows = hypergiant_sizes(ctx.as2org, ctx.as2orgplus, ctx.borges)
    return Report(
        experiment_id="fig9",
        title="Hypergiant organization sizes (AS2Org vs as2org+ vs Borges)",
        rows=rows,
        notes=[
            "paper: 5 hypergiants improve; EdgeCast +9 (Limelight), "
            "Google +3, Microsoft +1, Amazon +1",
        ],
    )


EXPERIMENTS: Dict[str, Callable[[ExperimentContext], Report]] = {
    "table3": _table3,
    "table4": _table4,
    "table5": _table5,
    "table6": _table6,
    "table7": _table7,
    "table8": _table8,
    "table9": _table9,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
}


def run_experiment(
    experiment_id: str,
    context: Optional[ExperimentContext] = None,
    universe_config: Optional[UniverseConfig] = None,
) -> Report:
    """Run one experiment by id, building/caching the context as needed."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(EXPERIMENTS)}"
        ) from None
    ctx = context or get_context(universe_config)
    with get_tracer().span(f"experiment.{experiment_id}"):
        report = runner(ctx)
    get_registry().counter(
        "experiments_run_total", "experiment executions", experiment=experiment_id
    ).inc()
    return report
