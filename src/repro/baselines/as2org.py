"""The AS2Org baseline: CAIDA's WHOIS-org-ID clustering.

The long-standing standard (Cai et al. 2010): every delegated ASN joins
the cluster of its WHOIS organization identifier.  This is the θ = 0.3343
baseline of Table 6 and the reference point of every §6 impact analysis.
"""

from __future__ import annotations

from ..core.mapping import OrgMapping
from ..core.org_keys import oid_w_clusters
from ..whois import WhoisDataset


def build_as2org_mapping(whois: WhoisDataset) -> OrgMapping:
    """The AS2Org mapping over a WHOIS dataset."""
    org_names = {asn: whois.org_name_of(asn) for asn in whois.asns()}
    return OrgMapping(
        universe=whois.asns(),
        clusters=oid_w_clusters(whois),
        method="as2org",
        org_names=org_names,
    )
