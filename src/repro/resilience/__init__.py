"""Resilience layer: retries, circuit breakers, seeded fault injection.

Borges leans on two inherently flaky external surfaces — LLM completions
(§4.2) and live scraping of PeeringDB websites (§4.3).  This package
gives the reproduction the machinery a production deployment needs to
survive them, and a deterministic chaos layer to prove that it does:

* :mod:`repro.resilience.policy` — :class:`RetryPolicy`: exponential
  backoff with seeded jitter and retryable-vs-fatal classification.
* :mod:`repro.resilience.breaker` — :class:`CircuitBreaker` and
  :class:`BreakerRegistry`: closed/open/half-open gates per backend and
  per host.
* :mod:`repro.resilience.faults` — :class:`FaultInjector` plus the
  :data:`PROFILES` catalogue and the :class:`FaultyChatBackend` /
  :class:`FaultyWeb` wrappers; chaos runs reproduce exactly from
  ``(seed, profile)``.
* :mod:`repro.resilience.seeding` — the order-independent hash both the
  jitter and the injector draw from.

The pipeline (:class:`repro.core.BorgesPipeline`) composes all three:
retries mask transient faults, breakers fail fast through outages, and
per-feature isolation boundaries turn anything that still escapes into a
recorded, degraded-but-complete run.
"""

from .breaker import BreakerRegistry, CircuitBreaker
from .faults import (
    ENV_FAULT_PROFILE,
    PROFILES,
    SERVE_SURFACE,
    SHARD_SURFACE,
    WATCH_SURFACE,
    FaultInjector,
    FaultProfile,
    FaultyChatBackend,
    FaultyWeb,
    corrupt_snapshot_text,
    resolve_fault_profile,
    shard_fault_decision,
)
from .policy import RetryPolicy, is_retryable
from .seeding import stable_choice_index, stable_unit

__all__ = [
    "BreakerRegistry",
    "CircuitBreaker",
    "ENV_FAULT_PROFILE",
    "PROFILES",
    "FaultInjector",
    "FaultProfile",
    "FaultyChatBackend",
    "FaultyWeb",
    "SERVE_SURFACE",
    "SHARD_SURFACE",
    "WATCH_SURFACE",
    "corrupt_snapshot_text",
    "resolve_fault_profile",
    "shard_fault_decision",
    "RetryPolicy",
    "is_retryable",
    "stable_choice_index",
    "stable_unit",
]
