"""Longitudinal analysis: organizational evolution over time.

§7 of the paper names the missing piece: "there is no longitudinal
archive of websites referenced in PeeringDB, which prevents us from
analyzing how organizational structures evolve over time."  The
synthetic universe *has* a corporate timeline (the M&A events behind the
redirect chains), so this package builds what the paper could not: a
series of historical snapshots — each year's WHOIS/PeeringDB/web state
with only the acquisitions completed by then — runs Borges on every
snapshot, and tracks how organizations merge across years.
"""

from .evolution import (
    EvolutionReport,
    SnapshotSeries,
    build_snapshot_series,
    detect_merges,
    run_longitudinal_study,
)

__all__ = [
    "EvolutionReport",
    "SnapshotSeries",
    "build_snapshot_series",
    "detect_merges",
    "run_longitudinal_study",
]
