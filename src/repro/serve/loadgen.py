"""Seeded Zipfian load generation for the query service.

Real AS-lookup traffic is heavily skewed — a handful of hypergiant and
tier-1 ASNs absorb most queries — so the generator draws ASNs from a
Zipf(s) distribution over a shuffled rank order.  Everything is seeded:
the same ``(seed, universe)`` pair replays the identical request stream,
which is what lets the throughput benchmark compare runs.

Two driving modes:

* :meth:`LoadGenerator.run` — the original single-threaded replay, used
  by the throughput benchmark and ``borges loadgen``.
* :meth:`LoadGenerator.run_overload` — many worker threads hammering the
  service at once (optionally synchronized into thundering-herd waves)
  to exercise the admission gate.  The report classifies every response
  (``2xx`` / ``429`` / ``4xx`` / ``5xx`` / ``deadline``) and records
  latency percentiles for *admitted* requests only, which is the number
  the overload benchmark holds to its p99 bound.
"""

from __future__ import annotations

import bisect
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from ..errors import (
    ConfigError,
    DeadlineExceededError,
    OverloadedError,
    ReproError,
    UnknownASNError,
)
from ..types import ASN
from .service import QueryService

#: Response classes tracked by :class:`LoadReport`.  ``deadline`` is kept
#: distinct from ``5xx``: a deadline rejection is the gate working as
#: designed, a ``5xx`` is the service failing.
RESPONSE_CLASSES = ("2xx", "429", "4xx", "5xx", "deadline")


class ZipfianSampler:
    """Draw items with Zipf(s) rank frequencies via inverse-CDF lookup."""

    def __init__(
        self, items: Sequence[ASN], s: float = 1.1, seed: int = 42
    ) -> None:
        if not items:
            raise ConfigError("cannot sample from an empty item set")
        if s <= 0:
            raise ConfigError(f"zipf exponent must be positive: {s}")
        self._rng = random.Random(seed)
        # Shuffle so "rank 1" is not simply the lowest ASN — which ASNs
        # are hot is itself part of the seeded scenario.
        self._items: List[ASN] = list(items)
        self._rng.shuffle(self._items)
        cdf: List[float] = []
        total = 0.0
        for rank in range(1, len(self._items) + 1):
            total += 1.0 / (rank ** s)
            cdf.append(total)
        self._cdf = [value / total for value in cdf]

    def sample(self) -> ASN:
        u = self._rng.random()
        return self._items[bisect.bisect_left(self._cdf, u)]

    def stream(self, n: int) -> Iterator[ASN]:
        for _ in range(n):
            yield self.sample()


def percentile(samples: Sequence[float], q: float) -> float:
    """The *q*-quantile (0..1) of *samples* by nearest-rank; 0.0 if empty."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
    return ordered[rank]


@dataclass
class LoadReport:
    """What one load run did and how fast the service answered."""

    requests: int
    ok: int
    not_found: int
    elapsed_seconds: float
    mix: Dict[str, int] = field(default_factory=dict)
    #: Response-class counts (``2xx``/``429``/``4xx``/``5xx``/``deadline``).
    #: Empty for legacy single-threaded runs that predate classification.
    classes: Dict[str, int] = field(default_factory=dict)
    #: Latency percentiles over *admitted* (2xx/4xx) requests, seconds.
    admitted_p50: float = 0.0
    admitted_p99: float = 0.0

    @property
    def qps(self) -> float:
        return self.requests / self.elapsed_seconds if self.elapsed_seconds else 0.0

    @property
    def shed(self) -> int:
        return self.classes.get("429", 0)

    @property
    def server_errors(self) -> int:
        return self.classes.get("5xx", 0)

    def to_json(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "requests": self.requests,
            "ok": self.ok,
            "not_found": self.not_found,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "qps": round(self.qps, 1),
            "mix": dict(self.mix),
        }
        if self.classes:
            out["classes"] = dict(self.classes)
            out["admitted_p50_ms"] = round(self.admitted_p50 * 1e3, 3)
            out["admitted_p99_ms"] = round(self.admitted_p99 * 1e3, 3)
        return out


class LoadGenerator:
    """Drive a :class:`QueryService` with a seeded Zipfian request mix."""

    def __init__(
        self,
        service: QueryService,
        asns: Sequence[ASN],
        seed: int = 42,
        zipf_s: float = 1.1,
    ) -> None:
        self.service = service
        self.asns = list(asns)
        self.seed = seed
        self.zipf_s = zipf_s
        self.sampler = ZipfianSampler(asns, s=zipf_s, seed=seed)
        self._rng = random.Random(seed ^ 0x5F5E100)

    def run(
        self,
        requests: int,
        sibling_fraction: float = 0.0,
        unknown_fraction: float = 0.0,
    ) -> LoadReport:
        """Issue *requests* lookups; fractions divert some to other ops.

        ``sibling_fraction`` of requests become pairwise sibling checks;
        ``unknown_fraction`` query an ASN outside the universe (the 404
        path), exercising the service's miss accounting.
        """
        ok = 0
        not_found = 0
        mix = {"asn": 0, "siblings": 0, "unknown": 0}
        service = self.service
        sample = self.sampler.sample
        draw = self._rng.random
        started = time.perf_counter()
        for _ in range(requests):
            r = draw()
            if r < unknown_fraction:
                mix["unknown"] += 1
                try:
                    service.lookup_asn(-1)
                    ok += 1
                except UnknownASNError:
                    not_found += 1
            elif r < unknown_fraction + sibling_fraction:
                mix["siblings"] += 1
                service.siblings(sample(), sample())
                ok += 1
            else:
                mix["asn"] += 1
                service.lookup_asn(sample())
                ok += 1
        elapsed = time.perf_counter() - started
        return LoadReport(
            requests=requests,
            ok=ok,
            not_found=not_found,
            elapsed_seconds=elapsed,
            mix=mix,
        )

    # -- overload mode -----------------------------------------------------

    def run_overload(
        self,
        requests: int,
        workers: int = 16,
        herd_size: int = 0,
        unknown_fraction: float = 0.0,
        backoff_seconds: float = 0.005,
    ) -> LoadReport:
        """Hammer the service from *workers* threads at once.

        Requests are split evenly across workers, each with its own
        seeded sampler (derived from this generator's seed and the
        worker index, so the aggregate stream is reproducible regardless
        of thread interleaving).  With ``herd_size > 0`` the workers
        synchronize on a barrier every ``herd_size`` requests —
        thundering-herd waves that spike instantaneous concurrency far
        above the average rate.

        Every response is classified: success and not-found are ``2xx``
        and ``4xx``; :class:`~repro.errors.OverloadedError` is ``429``;
        :class:`~repro.errors.DeadlineExceededError` is ``deadline``;
        anything else the service raises counts as ``5xx``.  Latency
        percentiles cover admitted requests only — rejected requests are
        fast by design and would flatter the tail.

        A rejected worker sleeps ``backoff_seconds`` (with seeded jitter)
        before its next request, as a well-behaved client honouring
        ``Retry-After`` would.  Without it the shed workers spin on the
        gate and — under the GIL — starve the very requests that *were*
        admitted, so the measured tail reflects scheduler convoying
        rather than queueing.
        """
        if workers < 1:
            raise ConfigError(f"workers must be >= 1: {workers}")
        per_worker = max(1, requests // workers)
        barrier = (
            threading.Barrier(workers) if herd_size > 0 and workers > 1 else None
        )
        lock = threading.Lock()
        classes = {cls: 0 for cls in RESPONSE_CLASSES}
        latencies: List[float] = []
        ok_total = 0
        not_found_total = 0

        def worker(index: int) -> None:
            nonlocal ok_total, not_found_total
            sampler = ZipfianSampler(
                self.asns, s=self.zipf_s, seed=self.seed + 7919 * (index + 1)
            )
            rng = random.Random(self.seed ^ (index << 8))
            local_classes = {cls: 0 for cls in RESPONSE_CLASSES}
            local_latencies: List[float] = []
            ok = 0
            not_found = 0
            for i in range(per_worker):
                if barrier is not None and i % herd_size == 0:
                    try:
                        barrier.wait(timeout=10.0)
                    except threading.BrokenBarrierError:
                        pass  # a worker finished early; keep going solo
                asn = -1 if rng.random() < unknown_fraction else sampler.sample()
                t0 = time.perf_counter()
                try:
                    self.service.lookup_asn(asn)
                    local_latencies.append(time.perf_counter() - t0)
                    local_classes["2xx"] += 1
                    ok += 1
                except UnknownASNError:
                    local_latencies.append(time.perf_counter() - t0)
                    local_classes["4xx"] += 1
                    not_found += 1
                except OverloadedError:
                    local_classes["429"] += 1
                    if backoff_seconds > 0:
                        time.sleep(backoff_seconds * (0.5 + rng.random()))
                except DeadlineExceededError:
                    local_classes["deadline"] += 1
                    if backoff_seconds > 0:
                        time.sleep(backoff_seconds * (0.5 + rng.random()))
                except (ReproError, RuntimeError):
                    # NoSnapshotError or anything unexpected: the client
                    # saw a server failure either way.
                    local_classes["5xx"] += 1
            with lock:
                for cls, count in local_classes.items():
                    classes[cls] += count
                latencies.extend(local_latencies)
                ok_total += ok
                not_found_total += not_found

        threads = [
            threading.Thread(target=worker, args=(i,), name=f"loadgen-{i}")
            for i in range(workers)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started

        issued = per_worker * workers
        return LoadReport(
            requests=issued,
            ok=ok_total,
            not_found=not_found_total,
            elapsed_seconds=elapsed,
            mix={"asn": issued},
            classes=classes,
            admitted_p50=percentile(latencies, 0.50),
            admitted_p99=percentile(latencies, 0.99),
        )
