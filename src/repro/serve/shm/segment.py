"""Blob segments on a shared-memory filesystem + the generation pointer.

A *segment* is one compiled blob written as a file — under ``/dev/shm``
when the platform has one, so N worker processes mapping it share one
physical copy of the page cache.  File-backed ``mmap`` is deliberately
preferred over :mod:`multiprocessing.shared_memory`: POSIX semantics
keep a mapping valid after the file is unlinked, which is exactly the
lifetime the swap fence needs (the supervisor unlinks a replaced
segment once every worker acked the new generation, while workers keep
their old mappings alive for per-worker rollback history), and there is
no resource tracker to fight over who unlinks what.

The *pointer* (``pointer.json``) names the current generation and its
segment file.  It is replaced by atomic rename, so a worker polling it
always reads a complete document — either the old generation or the new
one, never a torn write.  That rename **is** the swap fence: everything
before it (segment write + fsync) is invisible to workers, everything
after it is a complete, digest-verified blob.
"""

from __future__ import annotations

import json
import mmap
import os
import re
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from ...logutil import get_logger
from .blob import BLOB_SUFFIX, read_header
from .reader import BlobIndex

_LOG = get_logger("serve.shm.segment")

#: Segment filename pattern (zero-padded so ``sorted()`` is generation
#: order, mirroring the watch archive's entry naming).
SEGMENT_NAME = "gen-{generation:06d}" + BLOB_SUFFIX

_SEGMENT_RE = re.compile(r"^gen-(\d{6})\.blob$")

#: The atomically-renamed generation pointer file.
POINTER_NAME = "pointer.json"


def default_shm_root() -> Path:
    """``/dev/shm`` when present and writable, else the temp dir."""
    shm = Path("/dev/shm")
    if shm.is_dir() and os.access(shm, os.W_OK):
        return shm
    return Path(tempfile.gettempdir())


def map_blob_file(path: Union[str, Path]) -> BlobIndex:
    """Map and verify a blob file; returns a ready :class:`BlobIndex`.

    The mapping object is parked on the returned index's ``_mapped``
    attribute so the memory stays valid for the index's lifetime; it is
    closed by the garbage collector with the index (or explicitly by a
    :class:`MappedBlob` owner).
    """
    path = Path(path)
    with open(path, "rb") as fh:
        mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
    try:
        index = BlobIndex(mapped, verify=True)
    except Exception:
        mapped.close()
        raise
    index._mapped = mapped
    return index


class MappedBlob:
    """One open segment mapping with an explicit close.

    Workers hold one per generation they can still roll back to; the
    file may be unlinked underneath (the supervisor does, after the
    fence) without invalidating the mapping.
    """

    __slots__ = ("path", "generation", "index")

    def __init__(self, path: Path, generation: int) -> None:
        self.path = path
        self.generation = generation
        self.index = map_blob_file(path)

    def close(self) -> None:
        mapped = self.index._mapped
        self.index._mapped = None
        if mapped is not None:
            mapped.close()


class SegmentStore:
    """A directory of segments plus the generation pointer.

    One supervisor writes (``write_segment`` → ``set_pointer`` →
    ``unlink_segment`` once acked); many workers read (``pointer`` →
    ``map_generation``).  All writes are crash-ordered: segments are
    written to a temp name, fsynced and renamed before the pointer ever
    names them, so a crash can leave an orphan temp file or an unused
    segment but never a pointer at a torn blob.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- naming ------------------------------------------------------------

    def segment_path(self, generation: int) -> Path:
        return self.root / SEGMENT_NAME.format(generation=generation)

    @property
    def pointer_path(self) -> Path:
        return self.root / POINTER_NAME

    def generations(self) -> List[int]:
        """Generation numbers with a segment on disk, ascending."""
        out = []
        for path in self.root.iterdir():
            match = _SEGMENT_RE.match(path.name)
            if match:
                out.append(int(match.group(1)))
        return sorted(out)

    # -- writer side (supervisor) -----------------------------------------

    def _atomic_write(self, target: Path, data: bytes) -> None:
        tmp = target.with_name(f".{target.name}.{os.getpid()}.tmp")
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)

    def write_segment(self, generation: int, blob: bytes) -> Path:
        """Publish *blob* as generation *generation* (not yet pointed at)."""
        path = self.segment_path(generation)
        self._atomic_write(path, blob)
        _LOG.info(
            "segment generation %d written: %s (%d bytes)",
            generation, path, len(blob),
        )
        return path

    def set_pointer(self, generation: int, **extra: object) -> Dict[str, object]:
        """Atomically point readers at *generation* — the swap fence."""
        header = read_header(self.segment_path(generation).read_bytes())
        pointer: Dict[str, object] = {
            "generation": generation,
            "segment": SEGMENT_NAME.format(generation=generation),
            "index_digest": header.index_digest,
            "blob_bytes": header.blob_size,
            "published_unix": round(time.time(), 6),
        }
        pointer.update(extra)
        self._atomic_write(
            self.pointer_path,
            json.dumps(pointer, sort_keys=True).encode("utf-8"),
        )
        return pointer

    def unlink_segment(self, generation: int) -> bool:
        """Remove a replaced segment; existing mappings stay valid."""
        try:
            self.segment_path(generation).unlink()
            return True
        except OSError:
            return False

    def cleanup(self) -> None:
        """Remove every segment, the pointer, orphan temps and the dir."""
        for path in list(self.root.iterdir()):
            if (
                _SEGMENT_RE.match(path.name)
                or path.name == POINTER_NAME
                or path.name.endswith(".tmp")
                or path.name.startswith("worker-")
                or path.name == "pool.json"
            ):
                try:
                    path.unlink()
                except OSError:
                    pass
        try:
            self.root.rmdir()
        except OSError:
            pass  # non-empty (operator files) or already gone

    # -- reader side (workers) --------------------------------------------

    def pointer(self) -> Optional[Dict[str, object]]:
        """The current pointer, or ``None`` before the first publish.

        Tolerant of a concurrently-renaming writer: a missing or
        unreadable pointer is "try again next poll", never an error.
        """
        try:
            raw = self.pointer_path.read_text(encoding="utf-8")
            pointer = json.loads(raw)
        except (OSError, ValueError):
            return None
        if not isinstance(pointer, dict) or "generation" not in pointer:
            return None
        return pointer

    def map_generation(self, generation: int) -> MappedBlob:
        """Map one published generation (verified on open)."""
        return MappedBlob(self.segment_path(generation), generation)
