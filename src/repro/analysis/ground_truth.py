"""Beyond-θ evaluation: scoring mappings against the ground truth.

The paper cannot do this (no ground truth exists for real AS-to-Org
mappings); the synthetic universe knows the truth, so this analysis
reports what θ cannot — whether Borges's extra merges are *correct* —
for AS2Org, as2org+ and every Borges feature subset.
"""

from __future__ import annotations

from typing import Dict, List

from ..config import all_feature_combos, feature_combo_label
from ..core.mapping import OrgMapping
from ..core.pipeline import BorgesPipeline
from ..metrics.partition import PartitionScores, score_partition
from ..universe.entities import GroundTruth


def score_mapping_against_truth(
    mapping: OrgMapping, ground_truth: GroundTruth
) -> PartitionScores:
    """Partition scores of one mapping vs the true organization partition."""
    return score_partition(mapping.clusters(), ground_truth.true_clusters())


def ground_truth_table(
    context,  # ExperimentContext; untyped to avoid a circular import
    include_combos: bool = False,
) -> List[Dict[str, object]]:
    """Rows comparing every method's partition quality against truth.

    With ``include_combos`` the 15 non-empty feature subsets are scored
    too (slower: one pipeline run each, LLM cache shared).
    """
    ground_truth = context.universe.ground_truth
    rows: List[Dict[str, object]] = []

    def add_row(name: str, mapping: OrgMapping) -> None:
        row: Dict[str, object] = {"method": name}
        row.update(score_mapping_against_truth(mapping, ground_truth).as_row())
        rows.append(row)

    add_row("AS2Org", context.as2org)
    add_row("as2org+", context.as2orgplus)
    add_row("Borges", context.borges)

    if include_combos:
        base_config = context.pipeline.config
        for combo in all_feature_combos():
            if not combo or combo == base_config.features:
                continue
            config = base_config.with_features(*combo)
            pipeline = BorgesPipeline(
                context.universe.whois,
                context.universe.pdb,
                context.universe.web,
                config=config,
                client=context.pipeline.client,
            )
            add_row(feature_combo_label(combo), pipeline.run().mapping)
    return rows
