"""Baseline AS-to-Organization systems Borges is compared against.

* :mod:`repro.baselines.as2org` — CAIDA's AS2Org: WHOIS org IDs only.
* :mod:`repro.baselines.as2orgplus` — Arturi et al.'s as2org+: AS2Org
  plus PeeringDB org IDs and regex-based notes/aka extraction.  The
  paper's benchmark uses its "simple setup" (``OID_P`` only, fully
  automated); the full regex machinery is implemented too, for the
  ablations contrasting regex vs LLM extraction.
* :mod:`repro.baselines.chen_mismatch` — Chen et al.'s complementary
  method: flag CAIDA-vs-PeeringDB mismatches and refine them with
  keyword matching (§2.1's third related system).
"""

from .as2org import build_as2org_mapping
from .as2orgplus import As2OrgPlusConfig, build_as2orgplus_mapping
from .chen_mismatch import build_chen_mapping, find_mismatch_candidates
from .regex_extract import regex_extract_asns

__all__ = [
    "build_as2org_mapping",
    "As2OrgPlusConfig",
    "build_as2orgplus_mapping",
    "build_chen_mapping",
    "find_mismatch_candidates",
    "regex_extract_asns",
]
