"""Serve-path benches: lookup throughput, batch reads, and hot swaps.

The acceptance bar for the read path: the in-process
:class:`~repro.serve.QueryService` answers ≥ 50k single-ASN lookups per
second against the default synthetic universe under seeded Zipfian
traffic, and a hot snapshot swap completes with zero failed requests
while reader threads are hammering the service.

The observability bench holds the plane to its budget: the fully
instrumented path (trace propagation + SLO tracking + sampled access
log) must stay within ``MAX_TRACED_OVERHEAD`` of the untraced baseline.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.config import UniverseConfig
from repro.core import BorgesPipeline
from repro.obs import EventLog, MetricsRegistry, SLOTracker
from repro.serve import (
    LoadGenerator,
    MappingIndex,
    QueryService,
    WorkerConfig,
    WorkerPool,
    compile_index,
    run_pipelined,
)
from repro.serve.shm import BlobIndex
from repro.universe import generate_universe

LOOKUPS = 100_000
MIN_QPS = 50_000.0

#: Four workers over one shared snapshot must deliver at least this
#: multiple of the single-worker aggregate (asserted only on machines
#: with ≥ 4 cores — a 1-CPU container can't scale anything).
MIN_SCALING_4X = 2.5

#: Tracing + SLO + sampled access log may cost at most this fraction
#: of the untraced throughput (the PR's acceptance bar is 10%).
MAX_TRACED_OVERHEAD = 0.10


@pytest.fixture(scope="module")
def universe():
    return generate_universe(UniverseConfig())


@pytest.fixture(scope="module")
def mapping(universe):
    return BorgesPipeline(universe.whois, universe.pdb, universe.web).run().mapping


@pytest.fixture()
def service(universe, mapping):
    svc = QueryService(registry=MetricsRegistry())
    svc.store.load_from_mapping(
        mapping, whois=universe.whois, pdb=universe.pdb
    )
    return svc


def test_bench_single_asn_lookup_throughput(benchmark, service):
    """Zipfian single-ASN lookups through the full metered service path."""
    generator = LoadGenerator(
        service, service.store.current().index.asns(), seed=17
    )
    report = benchmark.pedantic(
        lambda: generator.run(LOOKUPS), rounds=1, iterations=1
    )
    print(f"\nserve throughput: {report.qps:,.0f} lookups/sec "
          f"({report.requests:,} requests in {report.elapsed_seconds:.3f}s)")
    benchmark.extra_info["qps"] = round(report.qps, 1)
    assert report.ok == LOOKUPS
    assert report.qps >= MIN_QPS


def test_bench_mixed_workload_throughput(benchmark, service):
    """Lookups + sibling checks + 404s — the realistic request mix."""
    generator = LoadGenerator(
        service, service.store.current().index.asns(), seed=23
    )
    report = benchmark.pedantic(
        lambda: generator.run(
            LOOKUPS // 2, sibling_fraction=0.2, unknown_fraction=0.02
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["qps"] = round(report.qps, 1)
    assert report.requests == LOOKUPS // 2
    assert report.qps >= MIN_QPS / 2


def test_bench_batch_lookup(benchmark, service):
    """Batched reads amortize snapshot pinning across 100-ASN pages."""
    asns = service.store.current().index.asns()
    pages = [asns[i : i + 100] for i in range(0, min(len(asns), 5000), 100)]

    def run():
        return sum(len(service.batch_lookup(page)) for page in pages)

    total = benchmark(run)
    assert total == sum(len(p) for p in pages)


def test_bench_traced_overhead_within_budget(benchmark, universe, mapping):
    """Tracing + sampled access log must cost < 10% of untraced QPS.

    Both configurations run the production ``borges serve`` service
    (SLO tracker on — it is on by default and orthogonal to tracing);
    the instrumented one additionally propagates a per-request trace
    context through the load generator, tracks the slowest trace IDs,
    and samples 1% of requests into the structured access log.

    Measurement design: sequential per-config blocks are confounded by
    machine-level throttling (absolute qps on a shared box can halve
    between one block and the next), so the two configurations run as
    *interleaved pairs* against the same warmed service, with the order
    within each pair alternating round to round (a monotonic slowdown
    would otherwise always tax whichever side runs second).  The verdict
    is the minimum per-pair overhead across rounds: throttling can only
    inflate a pair's ratio, while a genuine regression shows up in every
    pair, so the minimum tracks the true cost.
    """
    registry = MetricsRegistry()
    svc = QueryService(
        registry=registry,
        slo=SLOTracker(registry=registry),
        event_log=EventLog(),
        access_log_sample=0.01,
    )
    svc.store.load_from_mapping(
        mapping, whois=universe.whois, pdb=universe.pdb
    )
    generator = LoadGenerator(
        svc, svc.store.current().index.asns(), seed=29
    )
    generator.run(LOOKUPS // 10)  # warm-up, untimed
    generator.run(LOOKUPS // 10, trace=True)

    best = {False: 0.0, True: 0.0}

    def round_pair(traced_first: bool) -> float:
        """One untraced+traced pair; returns the pair's overhead."""
        elapsed = {}
        for traced in ((True, False) if traced_first else (False, True)):
            report = generator.run(LOOKUPS, trace=traced)
            assert report.ok == LOOKUPS
            elapsed[traced] = report.elapsed_seconds
            best[traced] = max(best[traced], report.qps)
        return elapsed[True] / elapsed[False] - 1.0

    overheads = [
        benchmark.pedantic(lambda: round_pair(False), rounds=1, iterations=1)
    ]
    for i in range(1, 8):  # 8 interleaved rounds total
        overheads.append(round_pair(traced_first=bool(i % 2)))

    overhead = min(overheads)
    print(
        f"\nbest untraced {best[False]:,.0f} qps, "
        f"best traced {best[True]:,.0f} qps, min per-pair overhead "
        f"{overhead:+.1%} (budget {MAX_TRACED_OVERHEAD:.0%})"
    )
    benchmark.extra_info["untraced_qps"] = round(best[False], 1)
    benchmark.extra_info["traced_qps"] = round(best[True], 1)
    benchmark.extra_info["overhead"] = round(overhead, 4)
    assert overhead <= MAX_TRACED_OVERHEAD


def test_bench_hot_swap_zero_failed_requests(benchmark, universe, mapping):
    """Swap generations under reader load; every request must succeed."""
    service = QueryService(registry=MetricsRegistry())
    service.store.load_from_mapping(mapping, whois=universe.whois)
    asns = service.store.current().index.asns()[:256]
    errors: list = []
    stop = threading.Event()

    def reader() -> None:
        i = 0
        while not stop.is_set():
            try:
                service.lookup_asn(asns[i % len(asns)])
            except Exception as exc:  # noqa: BLE001 — bench counts failures
                errors.append(exc)
                return
            i += 1

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for t in threads:
        t.start()
    try:
        benchmark.pedantic(
            lambda: service.store.load_from_mapping(
                mapping, whois=universe.whois
            ),
            rounds=5,
            iterations=1,
        )
    finally:
        stop.set()
        for t in threads:
            t.join(timeout=5.0)
    service.store.drain(timeout=2.0)
    assert errors == []
    # ≥ 2: the initial load plus at least one benchmarked swap (pedantic
    # rounds collapse to a single call under --benchmark-disable)
    assert service.store.current().generation >= 2


# -- multi-worker tier -------------------------------------------------------


@pytest.fixture(scope="module")
def index(universe, mapping):
    return MappingIndex.build(mapping, whois=universe.whois, pdb=universe.pdb)


@pytest.fixture(scope="module")
def blob(index):
    return compile_index(index)


def test_bench_blob_reader_lookup_throughput(benchmark, index, blob):
    """Zero-copy blob lookups must keep pace with the dict-backed index."""
    reader = BlobIndex(blob)
    asns = index.asns()[:4096]

    def run() -> int:
        hits = 0
        for asn in asns:
            hits += reader.lookup_asn(asn).org.size
        return hits

    expected = sum(index.lookup_asn(asn).org.size for asn in asns)
    assert benchmark(run) == expected
    benchmark.extra_info["blob_bytes"] = len(blob)


def _drive_pool(pool: WorkerPool, blob: bytes, paths, seconds: float) -> dict:
    """Pipelined load against *pool* with two hot swaps mid-flight.

    The swaps run from a side thread while the pipelined client is
    saturating the workers, so the measured aggregate includes the cost
    of every worker remapping the segment twice — the zero-failed-
    requests assertion is over the *whole* run, swap windows included.
    """
    totals = {"requests": 0, "ok": 0, "errors": 0}
    deadline = time.perf_counter() + seconds
    swaps: list = []

    def swapper() -> None:
        for _ in range(2):
            time.sleep(seconds / 3.0)
            swaps.append(pool.publish(blob))

    swap_thread = threading.Thread(target=swapper)
    started = time.perf_counter()
    swap_thread.start()
    try:
        while time.perf_counter() < deadline:
            result = run_pipelined(pool.url, paths, repeat=1)
            for key in totals:
                totals[key] += result[key]
    finally:
        swap_thread.join(timeout=30.0)
    elapsed = time.perf_counter() - started
    totals["elapsed_seconds"] = elapsed
    totals["qps"] = totals["requests"] / elapsed if elapsed > 0 else 0.0
    totals["swaps"] = len(swaps)
    return totals


def test_bench_worker_pool_aggregate_throughput(
    benchmark, index, blob, tmp_path
):
    """Aggregate machine throughput: ``--workers 4`` vs ``--workers 1``.

    Each pool serves the same shared blob behind one SO_REUSEPORT
    socket; the pipelined raw-socket client measures the server side.
    Two hot swaps land mid-run in each configuration and every request
    must still succeed.  The ≥ 2.5× scaling bar only applies where
    there are cores to scale onto.
    """
    paths = [f"/v1/asn/{asn}" for asn in index.asns()[:512]]
    seconds = 3.0
    results = {}

    def run_both() -> dict:
        for workers in (1, 4):
            config = WorkerConfig(workers=workers, swap_timeout=60.0)
            pool = WorkerPool(config, state_dir=tmp_path / f"pool-{workers}")
            pool.start(blob)
            try:
                run_pipelined(pool.url, paths[:64], repeat=1)  # warm-up
                results[workers] = _drive_pool(pool, blob, paths, seconds)
            finally:
                pool.stop()
        return results

    benchmark.pedantic(run_both, rounds=1, iterations=1)
    ratio = results[4]["qps"] / max(results[1]["qps"], 1e-9)
    print(
        f"\naggregate throughput: workers=1 {results[1]['qps']:,.0f} req/s, "
        f"workers=4 {results[4]['qps']:,.0f} req/s ({ratio:.2f}x) — "
        f"{results[4]['swaps']} hot swaps per run, zero failures required"
    )
    for workers, totals in results.items():
        benchmark.extra_info[f"qps_workers_{workers}"] = round(totals["qps"], 1)
        assert totals["errors"] == 0, f"workers={workers}: {totals}"
        assert totals["ok"] == totals["requests"]
        assert totals["swaps"] == 2
    benchmark.extra_info["scaling_4x"] = round(ratio, 3)
    cores = os.cpu_count() or 1
    if cores >= 4:
        assert ratio >= MIN_SCALING_4X, (
            f"4-worker aggregate only {ratio:.2f}x the single-worker "
            f"baseline on a {cores}-core machine"
        )


def test_bench_blob_answers_byte_identical(benchmark, index, blob):
    """Every endpoint answer from the blob must equal the index's, byte
    for byte, over the full seeded corpus (the serve tier's correctness
    bar — a worker answering from the mapped blob must be
    indistinguishable from one holding the in-memory index)."""
    reader = BlobIndex(blob)

    def corpus() -> int:
        checked = 0
        for asn in index.asns():
            a = json.dumps(reader.lookup_asn(asn).to_json())
            b = json.dumps(index.lookup_asn(asn).to_json())
            assert a == b
            checked += 1
        for query in ("tele", "net", "global", "as"):
            a = json.dumps([r.to_json() for r in reader.search(query)])
            b = json.dumps([r.to_json() for r in index.search(query)])
            assert a == b
            checked += 1
        return checked

    assert benchmark(corpus) == index.asn_count + 4
