"""Organization-key clustering (§4.1): OID_W and OID_P.

The simplest and broadest of Borges's signals: group ASNs that share a
WHOIS organization identifier, and group ASNs that share a PeeringDB
organization identifier.
"""

from __future__ import annotations

from typing import List

from ..peeringdb import PDBSnapshot
from ..types import Cluster
from ..whois import WhoisDataset


def oid_w_clusters(whois: WhoisDataset) -> List[Cluster]:
    """Clusters induced by WHOIS org IDs — the AS2Org baseline signal.

    Every delegated ASN appears in exactly one cluster (singletons
    included), because WHOIS delegation is compulsory.
    """
    return [
        frozenset(members) for members in whois.members().values()
    ]


def oid_p_clusters(pdb: PDBSnapshot) -> List[Cluster]:
    """Clusters induced by PeeringDB org IDs (OID_P).

    Only ASNs registered in PeeringDB appear; this is the operator-driven
    view that unites Lumen and CenturyLink in Fig. 3.
    """
    return [
        frozenset(members) for members in pdb.org_members().values()
    ]
