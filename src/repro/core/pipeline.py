"""The Borges pipeline: run features, consolidate, emit the mapping.

:class:`BorgesPipeline` wires the four features (§3) over a WHOIS
dataset + PeeringDB snapshot + web driver and produces a
:class:`BorgesResult`: per-feature clusters (Table 3's unit), the final
consolidated :class:`~repro.core.mapping.OrgMapping`, and module-level
diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config import (
    FEATURE_FAVICONS,
    FEATURE_NOTES_AKA,
    FEATURE_OID_P,
    FEATURE_RR,
    BorgesConfig,
)
from ..llm.client import ChatClient
from ..llm.simulated import make_default_client
from ..logutil import get_logger, timed
from ..peeringdb import PDBSnapshot
from ..types import ASN, Cluster
from ..web.favicon import FaviconAPI
from ..web.scraper import HeadlessScraper
from ..web.simweb import SimulatedWeb
from ..whois import WhoisDataset
from .mapping import OrgMapping
from .ner import NERModule, NERRecordResult
from .org_keys import oid_p_clusters, oid_w_clusters
from .web_inference import WebInferenceModule, WebInferenceResult

_LOG = get_logger("core.pipeline")


@dataclass(frozen=True)
class FeatureClusters:
    """One feature's output, plus the Table-3 accounting."""

    feature: str
    clusters: List[Cluster]

    @property
    def asn_count(self) -> int:
        """Number of distinct ASNs the feature says anything about."""
        members = set()
        for cluster in self.clusters:
            members.update(cluster)
        return len(members)

    @property
    def org_count(self) -> int:
        """Number of organizations after consolidating within the feature."""
        from .merge import merge_clusters

        return len(merge_clusters([self.clusters]))


@dataclass
class BorgesResult:
    """Everything one pipeline run produced."""

    mapping: OrgMapping
    features: Dict[str, FeatureClusters] = field(default_factory=dict)
    ner_results: List[NERRecordResult] = field(default_factory=list)
    web_result: Optional[WebInferenceResult] = None

    def feature_table(self) -> List[Dict[str, object]]:
        """Rows shaped like Table 3 (source, #ASes, #orgs)."""
        rows = []
        for name in ("oid_p", "oid_w", "notes_aka", "rr", "favicons"):
            feature = self.features.get(name)
            if feature is None:
                continue
            rows.append(
                {
                    "source": name,
                    "asns": feature.asn_count,
                    "orgs": feature.org_count,
                }
            )
        return rows


class BorgesPipeline:
    """Configured, reusable pipeline front-end.

    ``web`` may be any object accepted by :class:`HeadlessScraper` /
    :class:`FaviconAPI` (the simulated web offline; a real HTTP driver in
    production).  ``client`` defaults to the offline simulated LLM.
    """

    def __init__(
        self,
        whois: WhoisDataset,
        pdb: PDBSnapshot,
        web: SimulatedWeb,
        config: Optional[BorgesConfig] = None,
        client: Optional[ChatClient] = None,
    ) -> None:
        self._whois = whois
        self._pdb = pdb
        self._config = (config or BorgesConfig()).validate()
        self._client = client or make_default_client(self._config.llm)
        self._scraper = HeadlessScraper(web, config=self._config.scraper)
        self._favicon_api = FaviconAPI(web)
        self._ner = NERModule(self._client, self._config)
        self._web_module = WebInferenceModule(
            self._scraper, self._favicon_api, self._client, self._config
        )

    @property
    def config(self) -> BorgesConfig:
        return self._config

    @property
    def client(self) -> ChatClient:
        return self._client

    def run(self) -> BorgesResult:
        """Execute every enabled feature and consolidate."""
        config = self._config
        features: Dict[str, FeatureClusters] = {
            "oid_w": FeatureClusters("oid_w", oid_w_clusters(self._whois)),
        }
        ner_results: List[NERRecordResult] = []
        web_result: Optional[WebInferenceResult] = None

        if config.has(FEATURE_OID_P):
            with timed(_LOG, "oid_p clustering"):
                features[FEATURE_OID_P] = FeatureClusters(
                    FEATURE_OID_P, oid_p_clusters(self._pdb)
                )
        if config.has(FEATURE_NOTES_AKA):
            with timed(_LOG, "notes/aka extraction"):
                ner_results = self._ner.run(self._pdb)
                features[FEATURE_NOTES_AKA] = FeatureClusters(
                    FEATURE_NOTES_AKA, self._ner.clusters(ner_results)
                )
        if config.has(FEATURE_RR) or config.has(FEATURE_FAVICONS):
            with timed(_LOG, "web inference"):
                web_result = self._web_module.run(
                    self._pdb, favicons=config.has(FEATURE_FAVICONS)
                )
            if config.has(FEATURE_RR):
                features[FEATURE_RR] = FeatureClusters(
                    FEATURE_RR, web_result.rr_clusters
                )
            if config.has(FEATURE_FAVICONS):
                features[FEATURE_FAVICONS] = FeatureClusters(
                    FEATURE_FAVICONS, web_result.favicon_clusters
                )

        mapping = self.build_mapping(features)
        return BorgesResult(
            mapping=mapping,
            features=features,
            ner_results=ner_results,
            web_result=web_result,
        )

    def build_mapping(
        self, features: Dict[str, FeatureClusters]
    ) -> OrgMapping:
        """Consolidate feature clusters over the WHOIS universe."""
        all_clusters: List[Cluster] = []
        for feature in features.values():
            all_clusters.extend(feature.clusters)
        org_names = {
            asn: self._whois.org_name_of(asn) for asn in self._whois.asns()
        }
        label = "borges[" + ",".join(sorted(self._config.features)) + "]"
        return OrgMapping(
            universe=self._whois.asns(),
            clusters=all_clusters,
            method=label,
            org_names=org_names,
        )
