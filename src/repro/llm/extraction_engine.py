"""Semantic sibling-ASN extraction from notes/aka free text.

This engine is the simulated GPT-4o-mini's competence at the Listing-2
task.  It is an honest NLP component: it never sees the synthetic
universe's ground truth, only the text — classifying each text segment's
*context* (sibling-reporting vs upstream/peering vs neutral) from
multilingual cue lexicons, then harvesting AS numbers from segments whose
context permits them.  This is exactly the semantic judgement the paper
credits the LLM with (e.g. skipping Maxihost-style upstream listings,
Appendix B).

The regex baseline in :mod:`repro.baselines.regex_extract` shares the
token patterns but none of the context logic — the gap between the two is
the paper's core claim.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..types import ASN, is_valid_asn

#: AS-number token forms: "AS3320", "AS 3320", "ASN: 3320", "AS-3320".
ASN_TOKEN_RE = re.compile(r"\b[Aa][Ss][Nn]?[\s:#-]{0,2}(\d{1,10})\b")

#: Any digit run — used for the input filter and the decoy inventory.
NUMBER_RE = re.compile(r"\d+")

#: Sibling-context cues (lower-cased substring match), multilingual.
SIBLING_CUES: Tuple[str, ...] = (
    # English
    "sibling", "sister", "same organization", "same organisation",
    "part of the", "part of our", "subsidiar", "also operate",
    "our other as", "other asns", "formerly known as", "formerly",
    "merged with", "acquired", "rebrand", "group company",
    "belongs to", "division of", "business unit",
    "we also announce", "we also manage", "our networks",
    # Spanish
    "tambien operamos", "también operamos", "parte del grupo",
    "filial de", "red hermana", "pertenece a", "misma organizacion",
    "misma organización",
    # Portuguese
    "tambem operamos", "também operamos", "parte do grupo",
    "subsidiaria", "subsidiária", "pertence ao grupo",
    # German
    "teil der", "tochtergesellschaft", "betreibt auch",
    "gehort zu", "gehört zu", "unsere schwester",
    # French
    "filiale de", "fait partie du groupe", "exploite egalement",
    "exploite également", "appartient a", "appartient à",
    # Indonesian
    "bagian dari grup", "anak perusahaan",
    # Italian
    "parte del gruppo", "consociata",
)

#: Negative-context cues: numbers here are NOT siblings.
NEGATIVE_CUES: Tuple[str, ...] = (
    # upstream / transit / peering-session language
    "upstream", "transit from", "ip transit", "we connect directly",
    "connect directly with", "connected to", "our providers",
    "carrier", "uplink", "peering with", "peers with", "peer with",
    "route server", "looking glass",
    # BGP plumbing
    "as-in", "as-out", "as-set", "prefix", "prefixes", "bgp community",
    "communities", "max-prefix", "maximum prefixes",
    # contact / administrivia decoys
    "phone", "tel:", "telefono", "teléfono", "fax", "suite", "floor",
    "ticket", "noc hours", "office", "founded in", "established",
    "since", "desde", "seit",
    # Spanish/Portuguese upstream
    "conectado a", "transito de", "tránsito de", "nuestros proveedores",
    "nossos provedores",
)

#: Section-header cues that set context for following bullet lines.
_BULLET_RE = re.compile(r"^\s*(?:[-*•]|\d+[.)])\s+")


@dataclass(frozen=True)
class ExtractedSiblings:
    """Engine output: the sibling ASNs plus a human-readable rationale."""

    asns: Tuple[ASN, ...]
    reasoning: str


def contains_number(text: str) -> bool:
    """The §4.2 input-filter predicate: does the text carry any digits?"""
    return bool(NUMBER_RE.search(text or ""))


def find_asn_tokens(text: str) -> List[ASN]:
    """All AS-prefixed number tokens in *text*, in order of appearance."""
    found: List[ASN] = []
    for match in ASN_TOKEN_RE.finditer(text):
        value = int(match.group(1))
        if is_valid_asn(value):
            found.append(value)
    return found


def find_all_numbers(text: str) -> List[int]:
    """Every digit run in *text* as an int (the output-filter universe)."""
    return [int(m.group(0)) for m in NUMBER_RE.finditer(text or "")]


_SENTENCE_SPLIT_RE = re.compile(r"(?<=[.!?])\s+")


def _segment(text: str) -> List[str]:
    """Split text into context segments: lines, then sentence chunks.

    Sentence-level granularity keeps a decoy clause ("NOC phone: ...")
    from poisoning a sibling report earlier in the same line.
    """
    segments: List[str] = []
    for line in (text or "").splitlines():
        line = line.strip()
        if not line:
            segments.append("")  # blank line: context boundary marker
            continue
        segments.extend(
            chunk for chunk in _SENTENCE_SPLIT_RE.split(line) if chunk.strip()
        )
    return segments


def _context_of(segment: str) -> Optional[bool]:
    """Classify one segment: True=sibling, False=negative, None=neutral."""
    lowered = segment.lower()
    has_negative = any(cue in lowered for cue in NEGATIVE_CUES)
    has_sibling = any(cue in lowered for cue in SIBLING_CUES)
    if has_sibling and not has_negative:
        return True
    if has_negative:
        return False
    return None


def extract_siblings(
    own_asn: ASN,
    notes: str,
    aka: str,
) -> ExtractedSiblings:
    """Run the semantic extraction over one record's notes and aka.

    Rules, mirroring what the few-shot prompt asks of the model:

    * AKA numbers are sibling reports unless the aka text carries negative
      cues (aka is a naming field; operators list alternate ASNs there).
    * In notes, a segment's context decides: sibling-cue segments emit
      their ASN tokens; negative segments emit nothing; a negative *header*
      poisons the bullet list under it (the Maxihost pattern).  A sibling
      header conversely blesses its bullet list.
    * Neutral AS-prefixed mentions are reported (operators rarely
      name unrelated third-party ASNs without upstream language).
    * The record's own ASN is never a sibling of itself.
    """
    siblings: Set[ASN] = set()
    reasons: List[str] = []

    aka_text = aka or ""
    if aka_text.strip():
        aka_context = _context_of(aka_text)
        if aka_context is not False:
            for asn in find_asn_tokens(aka_text):
                siblings.add(asn)
            if find_asn_tokens(aka_text):
                reasons.append("AKA field names alternate ASNs for this network")

    inherited: Optional[bool] = None
    for segment in _segment(notes or ""):
        if not segment:
            inherited = None  # blank line ends any header's scope
            continue
        own_context = _context_of(segment)
        is_bullet = bool(_BULLET_RE.match(segment))
        context = own_context
        if context is None and is_bullet and inherited is not None:
            context = inherited
        if own_context is not None and not is_bullet:
            inherited = own_context  # header line sets list context
        tokens = find_asn_tokens(segment)
        if not tokens:
            continue
        if context is True:
            siblings.update(tokens)
            reasons.append(
                f"segment {segment[:60]!r} reports same-organization ASNs"
            )
        elif context is False:
            reasons.append(
                f"segment {segment[:60]!r} lists upstream/peering ASNs; skipped"
            )
        else:
            # Neutral AS-prefixed mention: reported (see docstring).
            siblings.update(tokens)
            reasons.append(
                f"segment {segment[:60]!r} mentions ASNs without provider language"
            )

    siblings.discard(own_asn)
    reasoning = "; ".join(reasons) if reasons else "no sibling ASNs reported"
    return ExtractedSiblings(asns=tuple(sorted(siblings)), reasoning=reasoning)
