"""Table 3 — ASes and organizations obtained from each Borges feature.

Paper (117k-ASN snapshot): OID_P 30,955/27,712 · OID_W 117,431/95,300 ·
notes&aka 1,436/847 · R&R 22,523/20,065 · Favicons 1,297/319.
At the default ≈1:10 scale the shape to reproduce is the ordering:
OID_W covers everything, OID_P and R&R cover the PDB slice, notes&aka
and favicons are small but densely grouping (low orgs/ASNs ratio).
"""

from conftest import run_and_render


def test_table3_feature_contributions(benchmark, ctx):
    report = run_and_render(benchmark, ctx, "table3")
    rows = {row["source"]: row for row in report.rows}

    # OID_W is the compulsory database: it covers every delegated ASN.
    assert rows["OID_W"]["asns"] == len(ctx.universe.whois)
    # The web features only see PDB-registered networks.
    assert rows["R&R"]["asns"] < rows["OID_P"]["asns"] <= len(ctx.universe.pdb)
    # Favicons and notes&aka are the small, high-density features:
    # far fewer orgs than ASNs (they exist to group, not to cover).
    for dense in ("Favicons", "notes and aka"):
        assert rows[dense]["orgs"] < rows[dense]["asns"]
    # Favicons group much more densely than R&R (paper: 1297/319 vs
    # 22523/20065).
    favicon_density = rows["Favicons"]["orgs"] / rows["Favicons"]["asns"]
    rr_density = rows["R&R"]["orgs"] / rows["R&R"]["asns"]
    assert favicon_density < rr_density
