"""The versioned snapshot archive: every published mapping, forever-ish.

CAIDA ships AS2Org as dated, immutable releases; the archive is that
discipline on disk.  Each published generation is one JSON file::

    archive/
      gen-000001.json        {"archive_generation": 1, "created": ...,
      gen-000002.json         "label": ..., "dataset_digest": ...,
      ...                     "mapping": <OrgMapping payload>,
                              "digest": <digest over everything else>}

Three invariants, each enforced mechanically rather than by convention:

* **Never overwritten.**  Entries are created with ``open(path, "x")``
  (exclusive create) — a second write to the same generation raises
  :class:`~repro.errors.ArchiveImmutabilityError` before a byte lands.
  Generation numbers are never reused either: the next number is one
  past the highest ever seen, *including* quarantined entries.
* **Digest-verified on read.**  Every read recomputes the entry digest
  and the embedded mapping digest; a mismatch quarantines the file
  (renamed aside, same pattern as the serve store) and raises
  :class:`~repro.errors.SnapshotIntegrityError` — a corrupt archive
  entry can fail a time-travel query, never poison the serving path.
* **Bounded.**  Retention keeps at most ``max_entries`` / ``max_bytes``
  of history, pruning oldest-first but never the newest entry; a
  free-disk floor turns a full disk into a typed, retryable
  :class:`~repro.errors.DiskPressureError` instead of a half-written
  file.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..core.mapping import OrgMapping, verify_mapping_payload
from ..digest import stable_digest
from ..errors import (
    ArchiveImmutabilityError,
    DiskPressureError,
    SnapshotIntegrityError,
    UnknownGenerationError,
)
from ..logutil import get_logger
from ..obs import get_registry
from ..obs.log import get_event_log

_LOG = get_logger("watch.archive")

#: Archive entry filename pattern; the zero-padding keeps ``sorted()``
#: equal to generation order up to 999999 generations.
ENTRY_NAME = "gen-{generation:06d}.json"

_ENTRY_RE = re.compile(r"^gen-(\d{6})\.json$")

#: Suffix for quarantined (digest-mismatched) entries.
QUARANTINE_SUFFIX = ".quarantined"

#: Default retention: entries kept before oldest-first pruning.
DEFAULT_MAX_ENTRIES = 64


class SnapshotArchive:
    """Immutable, digest-verified, bounded on-disk generation history."""

    def __init__(
        self,
        root: Union[str, Path],
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_bytes: int = 0,
        free_bytes_floor: int = 0,
        registry=None,
        injector=None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_entries = max(1, max_entries)
        self.max_bytes = max(0, max_bytes)
        self.free_bytes_floor = max(0, free_bytes_floor)
        self._registry = registry or get_registry()
        self._injector = injector

    # -- enumeration -------------------------------------------------------

    def _entry_path(self, generation: int) -> Path:
        return self.root / ENTRY_NAME.format(generation=generation)

    def generations(self) -> List[int]:
        """Readable generation numbers, ascending (quarantined excluded)."""
        out = []
        for path in self.root.iterdir():
            match = _ENTRY_RE.match(path.name)
            if match:
                out.append(int(match.group(1)))
        return sorted(out)

    def _highest_ever(self) -> int:
        """Highest generation number ever assigned, quarantined included."""
        highest = 0
        for path in self.root.iterdir():
            match = re.match(r"^gen-(\d{6})\.json", path.name)
            if match:
                highest = max(highest, int(match.group(1)))
        return highest

    def next_generation(self) -> int:
        return self._highest_ever() + 1

    def __len__(self) -> int:
        return len(self.generations())

    def total_bytes(self) -> int:
        return sum(
            self._entry_path(g).stat().st_size for g in self.generations()
        )

    # -- writing -----------------------------------------------------------

    def _free_bytes(self) -> int:
        free = shutil.disk_usage(self.root).free
        if self._injector is not None:
            from ..resilience.faults import WATCH_SURFACE

            kind = self._injector.next_fault(WATCH_SURFACE, "archive:disk")
            if kind == "disk_pressure":
                return 0  # a full disk, as far as the guardrail can tell
        return free

    def publish(
        self,
        mapping: OrgMapping,
        label: str = "",
        dataset_digest: str = "",
        meta: Optional[Dict[str, object]] = None,
        index=None,
    ) -> Dict[str, object]:
        """Write *mapping* as the next generation; returns the entry header.

        The write path is crash-ordered: prune first (so retention can
        free the space this entry needs), check the disk floor, then
        exclusive-create the file and fsync it.  A crash mid-write
        leaves a partial file whose digest check fails on read — it is
        quarantined there, and its generation number is burned, never
        reassigned.

        With *index* (the already-built
        :class:`~repro.serve.index.MappingIndex` for this mapping) a
        compiled-blob sidecar (``gen-NNNNNN.blob``) is written **after**
        the JSON entry is durable, so a multi-worker serve tier can map
        the generation without re-building the index.  The sidecar is
        strictly derived data: a crash between entry and sidecar leaves
        a valid generation whose blob is simply absent (``read_blob``
        says so), never the reverse — the same crash-ordering the watch
        journal relies on.
        """
        self.prune()
        if self.free_bytes_floor:
            free = self._free_bytes()
            if free < self.free_bytes_floor:
                # Emergency pruning: drop history (never the newest) to
                # get under the floor before giving up.
                self.prune(aggressive=True)
                free = self._free_bytes()
                if free < self.free_bytes_floor:
                    self._registry.counter(
                        "watch_archive_disk_pressure_total",
                        "Publishes refused by the free-disk floor",
                    ).inc()
                    raise DiskPressureError(free, self.free_bytes_floor)
        generation = self.next_generation()
        path = self._entry_path(generation)
        payload = mapping.to_json()
        payload["digest"] = stable_digest(
            {k: v for k, v in payload.items() if k != "digest"}
        )
        entry: Dict[str, object] = {
            "archive_generation": generation,
            "created": round(time.time(), 6),
            "label": label,
            "dataset_digest": dataset_digest,
            "meta": dict(meta or {}),
            "mapping": payload,
        }
        entry["digest"] = stable_digest(
            {k: v for k, v in entry.items() if k != "digest"}
        )
        try:
            with open(path, "x", encoding="utf-8") as fh:
                fh.write(json.dumps(entry, sort_keys=True))
                fh.flush()
                os.fsync(fh.fileno())
        except FileExistsError:
            raise ArchiveImmutabilityError(generation, str(path)) from None
        if index is not None:
            self._write_blob(generation, index)
        self._registry.counter(
            "watch_archive_publishes_total", "Generations written to the archive"
        ).inc()
        self._registry.gauge(
            "watch_archive_entries", "Readable archive generations on disk"
        ).set(len(self))
        get_event_log().emit(
            "watch.archive_publish",
            archive_generation=generation,
            label=label,
            dataset_digest=dataset_digest,
            bytes=path.stat().st_size,
        )
        _LOG.info("archived generation %d (%s)", generation, label)
        return {k: v for k, v in entry.items() if k != "mapping"}

    # -- compiled-blob sidecars --------------------------------------------

    def blob_path(self, generation: int) -> Path:
        return self.root / f"gen-{generation:06d}.blob"

    def has_blob(self, generation: int) -> bool:
        return self.blob_path(generation).exists()

    def _write_blob(self, generation: int, index) -> None:
        from ..serve.shm.blob import compile_index

        path = self.blob_path(generation)
        blob = compile_index(index)
        try:
            with open(path, "xb") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
        except FileExistsError:
            raise ArchiveImmutabilityError(generation, str(path)) from None
        self._registry.counter(
            "watch_archive_blob_publishes_total",
            "Compiled-blob sidecars written to the archive",
        ).inc()
        _LOG.info(
            "archived blob sidecar for generation %d (%d bytes)",
            generation, len(blob),
        )

    def read_blob(self, generation: int) -> bytes:
        """One generation's verified compiled blob.

        Raises :class:`~repro.errors.UnknownGenerationError` when the
        generation has no sidecar (pre-sidecar entries, or a crash
        between entry and sidecar) and
        :class:`~repro.errors.SnapshotIntegrityError` — after
        quarantining the file — when the blob fails verification.
        Sidecars are derived data, so a missing or corrupt one never
        invalidates the JSON entry it rides along with.
        """
        from ..serve.shm.blob import BlobFormatError, verify_blob

        path = self.blob_path(generation)
        if not path.exists():
            raise UnknownGenerationError(
                generation, "no compiled blob in archive"
            )
        blob = path.read_bytes()
        try:
            verify_blob(blob)
        except BlobFormatError as exc:
            quarantined = self._quarantine(path, f"blob sidecar: {exc}")
            raise SnapshotIntegrityError(
                source="archive-blob",
                reason=f"blob sidecar for generation {generation}: {exc}",
                path=str(path),
                quarantined_to=quarantined,
            ) from exc
        return blob

    # -- reading -----------------------------------------------------------

    def _quarantine(self, path: Path, reason: str) -> str:
        target = path.with_name(path.name + QUARANTINE_SUFFIX)
        quarantined_to = ""
        try:
            path.replace(target)
            quarantined_to = str(target)
        except OSError as exc:  # best-effort, like the serve store
            _LOG.warning("cannot quarantine %s: %s", path, exc)
        self._registry.counter(
            "watch_archive_corrupt_total",
            "Archive entries that failed digest verification",
        ).inc()
        get_event_log().emit(
            "watch.archive_corrupt",
            severity="error",
            path=str(path),
            reason=reason,
            quarantined_to=quarantined_to,
        )
        return quarantined_to

    def read(self, generation: int) -> Dict[str, object]:
        """Load and verify one entry; returns the full entry dict.

        Raises :class:`~repro.errors.UnknownGenerationError` when the
        entry does not exist and
        :class:`~repro.errors.SnapshotIntegrityError` (after
        quarantining the file) when it fails verification.
        """
        path = self._entry_path(generation)
        if not path.exists():
            raise UnknownGenerationError(generation, "not in archive")
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except ValueError as exc:
            quarantined = self._quarantine(path, f"not valid JSON: {exc}")
            raise SnapshotIntegrityError(
                source="archive",
                reason=f"entry {generation} is not valid JSON: {exc}",
                path=str(path),
                quarantined_to=quarantined,
            ) from exc
        expected = str(entry.get("digest", "")) if isinstance(entry, dict) else ""
        actual = (
            stable_digest({k: v for k, v in entry.items() if k != "digest"})
            if isinstance(entry, dict)
            else ""
        )
        if not isinstance(entry, dict) or actual != expected:
            quarantined = self._quarantine(path, "entry digest mismatch")
            raise SnapshotIntegrityError(
                source="archive",
                reason=f"entry {generation} digest mismatch",
                path=str(path),
                expected_digest=expected,
                actual_digest=actual,
                quarantined_to=quarantined,
            )
        verify_mapping_payload(
            entry.get("mapping"), origin=f"archive gen {generation}"
        )
        return entry

    def read_mapping(self, generation: int) -> OrgMapping:
        return OrgMapping.from_json(self.read(generation)["mapping"])

    def header(self, generation: int) -> Dict[str, object]:
        """The entry minus its mapping payload (verified like a read)."""
        return {
            k: v for k, v in self.read(generation).items() if k != "mapping"
        }

    # -- retention ---------------------------------------------------------

    def prune(self, aggressive: bool = False) -> List[int]:
        """Oldest-first cleanup; returns the generations removed.

        Normal mode enforces ``max_entries`` and ``max_bytes``.
        Aggressive mode (disk pressure) keeps only the newest entry.
        The newest entry is never removed — the active generation's
        provenance must survive any cleanup.
        """
        generations = self.generations()
        removed: List[int] = []
        if not generations:
            return removed
        keep_floor = 1  # the newest entry is sacred
        budget = 1 if aggressive else self.max_entries
        while len(generations) > max(keep_floor, budget):
            removed.append(generations.pop(0))
        if self.max_bytes and not aggressive:
            total = sum(
                self._entry_path(g).stat().st_size for g in generations
            )
            while total > self.max_bytes and len(generations) > keep_floor:
                oldest = generations.pop(0)
                total -= self._entry_path(oldest).stat().st_size
                removed.append(oldest)
        for generation in removed:
            try:
                self._entry_path(generation).unlink()
            except OSError as exc:
                _LOG.warning(
                    "cannot prune archive generation %d: %s", generation, exc
                )
            # The blob sidecar is derived from the entry; it never
            # outlives it.
            try:
                self.blob_path(generation).unlink()
            except OSError:
                pass
        if removed:
            self._registry.counter(
                "watch_archive_pruned_total",
                "Archive generations removed by retention",
            ).inc(len(removed))
            get_event_log().emit(
                "watch.archive_prune",
                removed=removed,
                aggressive=aggressive,
            )
        return removed

    # -- accounting --------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        generations = self.generations()
        return {
            "root": str(self.root),
            "entries": len(generations),
            "blob_sidecars": sum(
                1 for g in generations if self.has_blob(g)
            ),
            "oldest_generation": generations[0] if generations else 0,
            "newest_generation": generations[-1] if generations else 0,
            "total_bytes": self.total_bytes(),
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
            "free_bytes_floor": self.free_bytes_floor,
        }
