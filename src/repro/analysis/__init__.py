"""Evaluation analyses: one module per table/figure family of the paper.

* :mod:`repro.analysis.features_table` — Table 3 (per-feature ASes/orgs)
* :mod:`repro.analysis.validation` — Tables 4–5 (LLM-stage accuracy)
* :mod:`repro.analysis.factor_table` — Table 6 (θ for all combos) + Fig. 7
* :mod:`repro.analysis.access` — Tables 7–8 (population changes)
* :mod:`repro.analysis.transit` — Fig. 8 (marginal growth vs AS-Rank)
* :mod:`repro.analysis.hypergiants` — Fig. 9 (hypergiant org sizes)
* :mod:`repro.analysis.footprint` — Table 9 (country footprints)
"""

from .access import population_change_summary, top_population_growth
from .factor_table import factor_combination_table, theta_curves
from .features_table import feature_contribution_table
from .footprint import footprint_growth, footprint_summary
from .ground_truth import ground_truth_table, score_mapping_against_truth
from .hypergiants import hypergiant_sizes
from .model_comparison import model_comparison_table
from .transit import transit_marginal_growth
from .validation import validate_classifier, validate_extraction

__all__ = [
    "ground_truth_table",
    "score_mapping_against_truth",
    "model_comparison_table",
    "population_change_summary",
    "top_population_growth",
    "factor_combination_table",
    "theta_curves",
    "feature_contribution_table",
    "footprint_growth",
    "footprint_summary",
    "hypergiant_sizes",
    "transit_marginal_growth",
    "validate_classifier",
    "validate_extraction",
]
