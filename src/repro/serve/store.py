"""Snapshot lifecycle: load mapping generations and hot-swap atomically.

The store holds at most one *active* :class:`Snapshot` — an immutable
:class:`~repro.serve.index.MappingIndex` plus its generation number and
provenance.  Swapping installs a fully-built replacement with a single
reference assignment, so a reader either sees the old generation or the
new one, never a half-loaded index.  Replaced generations are parked on a
retiring list until every reader lease against them is released
(:meth:`SnapshotStore.drain`), mirroring how a production serving tier
drains connections before dropping a shard.

Generations can come from four sources: an in-memory pipeline result, an
``OrgMapping`` JSON file, a CAIDA-format release file (the round-trip
``borges release`` → ``borges serve``), or a merge-stage artifact in the
content-addressed :class:`~repro.core.artifacts.ArtifactStore`.

**Integrity before swap.**  Every source is verified before it can
become the active generation: release files check the digest header
``borges release`` writes, mapping files check their embedded digest and
schema, artifacts recompute their content digest, and in-memory mappings
pass basic sanity checks.  A failed check raises a structured
:class:`~repro.errors.SnapshotIntegrityError`; corrupt *files* are
additionally quarantined (renamed aside) so a crash-looping supervisor
cannot keep re-feeding the same bad bytes.  The store also keeps a
bounded history of last-known-good generations, so an operator can
:meth:`rollback` past a bad-but-well-formed release (``borges serve
--rollback`` / ``POST /v1/admin/rollback``).
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from ..core.artifacts import ArtifactStore
from ..core.mapping import OrgMapping, verify_mapping_payload
from ..digest import stable_digest
from ..errors import (
    DataError,
    NoSnapshotError,
    ReproError,
    RollbackUnavailableError,
    SnapshotIntegrityError,
)
from ..logutil import get_logger
from ..obs import get_registry
from ..obs.log import get_event_log
from .index import MappingIndex

_LOG = get_logger("serve.store")

#: Suffix appended to a corrupt input file when it is quarantined.
QUARANTINE_SUFFIX = ".quarantined"

#: Last-known-good generations retained for :meth:`SnapshotStore.rollback`.
DEFAULT_HISTORY_LIMIT = 3

#: Historical archive generations kept decoded in memory for time-travel
#: queries (each one is a full MappingIndex — keep this small).
DEFAULT_ARCHIVE_CACHE = 4


@dataclass
class Snapshot:
    """One loaded generation of the mapping, with reader accounting."""

    index: MappingIndex
    generation: int
    source: str
    label: str
    #: The immutable archive entry this generation was published as by
    #: the watch daemon (0 when the generation never touched the
    #: archive — CLI one-shots, direct file loads).
    archive_generation: int = 0
    _readers: int = field(default=0, repr=False)
    _drained: threading.Event = field(
        default_factory=threading.Event, repr=False
    )

    def describe(self) -> Dict[str, object]:
        return {
            "generation": self.generation,
            "archive_generation": self.archive_generation,
            "source": self.source,
            "label": self.label,
            **self.index.stats(),
        }


class SnapshotStore:
    """Atomic holder of the active mapping generation.

    Readers call :meth:`current` (one attribute read — atomic under the
    GIL) or take a lease with :meth:`acquire` when they need the same
    generation across several lookups.  Writers call one of the
    ``load_from_*`` methods; each verifies its input, builds the index
    *outside* the lock and installs it with :meth:`swap`.

    *quarantine* controls whether corrupt input files are renamed aside
    (default on); *history_limit* bounds the rollback stack; *injector*
    optionally threads a :class:`~repro.resilience.faults.FaultInjector`
    through the file loaders so chaos runs can corrupt snapshots
    deterministically.
    """

    def __init__(
        self,
        registry=None,
        quarantine: bool = True,
        history_limit: int = DEFAULT_HISTORY_LIMIT,
        injector=None,
    ) -> None:
        self._registry = registry or get_registry()
        self._lock = threading.Lock()
        self._active: Optional[Snapshot] = None
        self._retiring: List[Snapshot] = []
        self._history: List[Snapshot] = []
        self._history_limit = max(0, history_limit)
        self._next_generation = 1
        self._quarantine = quarantine
        self._injector = injector
        #: True when the last swap attempt failed and an older generation
        #: is still being served (the degraded/stale read path).
        self.stale = False
        #: Degradation accounting an operator reads off /healthz and
        #: ``borges top``: how many swaps failed, what the last failure
        #: said, and how many rollbacks this process has performed.
        self.swap_failures = 0
        self.last_swap_error = ""
        self.rollback_count = 0
        #: Optional time-travel source: an attached SnapshotArchive plus
        #: a small LRU of lazily-loaded historical generations.
        self._archive = None
        self._archive_cache: "OrderedDict[int, MappingIndex]" = OrderedDict()
        self._archive_cache_limit = DEFAULT_ARCHIVE_CACHE

    # -- reader side -------------------------------------------------------

    def current(self) -> Snapshot:
        snapshot = self._active
        if snapshot is None:
            raise NoSnapshotError()
        return snapshot

    def current_or_none(self) -> Optional[Snapshot]:
        return self._active

    def acquire(self) -> "_Lease":
        """A context-managed reader lease on the active generation."""
        with self._lock:
            snapshot = self._active
            if snapshot is None:
                raise NoSnapshotError()
            snapshot._readers += 1
        return _Lease(self, snapshot)

    def _release(self, snapshot: Snapshot) -> None:
        with self._lock:
            snapshot._readers -= 1
            if snapshot._readers <= 0 and snapshot is not self._active:
                snapshot._drained.set()

    # -- writer side -------------------------------------------------------

    def swap(
        self,
        index: MappingIndex,
        source: str,
        label: str,
        archive_generation: int = 0,
    ) -> Snapshot:
        """Install *index* as the active generation; returns the snapshot."""
        return self._install(
            index,
            source,
            label,
            remember_previous=True,
            archive_generation=archive_generation,
        )

    def _install(
        self,
        index: MappingIndex,
        source: str,
        label: str,
        remember_previous: bool,
        archive_generation: int = 0,
    ) -> Snapshot:
        with self._lock:
            snapshot = Snapshot(
                index=index,
                generation=self._next_generation,
                source=source,
                label=label,
                archive_generation=archive_generation,
            )
            self._next_generation += 1
            previous = self._active
            self._active = snapshot
            if previous is not None:
                if previous._readers <= 0:
                    previous._drained.set()
                else:
                    self._retiring.append(previous)
                if remember_previous and self._history_limit:
                    self._history.append(previous)
                    del self._history[: -self._history_limit]
            self.stale = False
        self._registry.counter(
            "serve_snapshot_swaps_total", "Snapshot generations installed"
        ).inc()
        self._registry.gauge(
            "serve_snapshot_generation", "Active snapshot generation"
        ).set(snapshot.generation)
        self._registry.gauge(
            "serve_snapshot_history_depth",
            "Last-known-good generations available for rollback",
        ).set(len(self._history))
        _LOG.info(
            "snapshot generation %d installed from %s (%s)",
            snapshot.generation, source, label,
        )
        get_event_log().emit(
            "snapshot.swap",
            generation=snapshot.generation,
            source=source,
            label=label,
        )
        return snapshot

    def rollback(self) -> Snapshot:
        """Reinstall the most recent last-known-good generation.

        The restored index gets a *new* generation number (readers always
        see generations move forward); the generation being replaced is
        deliberately **not** pushed back onto the history stack, so
        repeated rollbacks walk further into the past instead of
        ping-ponging between two generations.
        """
        with self._lock:
            if not self._history:
                raise RollbackUnavailableError()
            restored = self._history.pop()
        snapshot = self._install(
            restored.index,
            source="rollback",
            label=(
                f"generation {restored.generation} "
                f"({restored.source}: {restored.label})"
            ),
            remember_previous=False,
            archive_generation=restored.archive_generation,
        )
        with self._lock:
            self.rollback_count += 1
        self._registry.counter(
            "serve_snapshot_rollbacks_total",
            "Generations restored from last-known-good history",
        ).inc()
        _LOG.warning(
            "rolled back to generation %d content (now generation %d)",
            restored.generation, snapshot.generation,
        )
        get_event_log().emit(
            "snapshot.rollback",
            severity="warning",
            restored_generation=restored.generation,
            new_generation=snapshot.generation,
        )
        return snapshot

    def try_swap(
        self, loader: Callable[[], Snapshot], label: str = ""
    ) -> Optional[Snapshot]:
        """Attempt a swap; on failure keep serving the old generation.

        This is the resilience boundary of the read path: a corrupt
        release file or unreadable artifact must not take down a serving
        process that already holds a good generation.  The failure is
        counted, the store is marked ``stale``, and ``None`` is returned.
        """
        try:
            return loader()
        except (ReproError, OSError, ValueError, KeyError) as exc:
            with self._lock:
                self.stale = self._active is not None
                self.swap_failures += 1
                self.last_swap_error = f"{type(exc).__name__}: {exc}"
            self._registry.counter(
                "serve_snapshot_swap_failures_total",
                "Snapshot loads that failed (old generation kept)",
            ).inc()
            _LOG.warning("snapshot swap failed (%s): %s", label, exc)
            get_event_log().emit(
                "snapshot.swap_failed",
                severity="warning",
                label=label,
                error=f"{type(exc).__name__}: {exc}",
                stale=self.stale,
            )
            return None

    def drain(self, timeout: float = 5.0) -> int:
        """Wait for retired generations to lose their last reader.

        Returns the number of generations actually retired; generations
        still held past *timeout* stay on the retiring list.
        """
        with self._lock:
            pending = list(self._retiring)
        deadline = time.monotonic() + timeout
        retired = 0
        for snapshot in pending:
            remaining = max(0.0, deadline - time.monotonic())
            if snapshot._drained.wait(remaining):
                retired += 1
                with self._lock:
                    if snapshot in self._retiring:
                        self._retiring.remove(snapshot)
        if retired:
            self._registry.counter(
                "serve_snapshots_retired_total",
                "Replaced generations fully drained of readers",
            ).inc(retired)
        return retired

    # -- integrity ---------------------------------------------------------

    def _integrity_failure(
        self,
        source: str,
        reason: str,
        path: Optional[Path] = None,
        expected_digest: str = "",
        actual_digest: str = "",
    ) -> SnapshotIntegrityError:
        """Count, quarantine (file sources) and build the structured error."""
        quarantined_to = ""
        if path is not None and self._quarantine and path.exists():
            candidate = path.with_name(path.name + QUARANTINE_SUFFIX)
            try:
                path.replace(candidate)
                quarantined_to = str(candidate)
                self._registry.counter(
                    "serve_snapshots_quarantined_total",
                    "Corrupt snapshot files renamed aside",
                ).inc()
            except OSError as exc:  # quarantine is best-effort
                _LOG.warning("cannot quarantine %s: %s", path, exc)
        self._registry.counter(
            "serve_snapshot_integrity_failures_total",
            "Snapshot inputs rejected before swap",
            source=source,
        ).inc()
        error = SnapshotIntegrityError(
            source=source,
            reason=reason,
            path=str(path) if path is not None else "",
            expected_digest=expected_digest,
            actual_digest=actual_digest,
            quarantined_to=quarantined_to,
        )
        _LOG.error("%s", error)
        get_event_log().emit(
            "snapshot.integrity_failure",
            severity="error",
            source=source,
            reason=reason,
            path=str(path) if path is not None else "",
            quarantined_to=quarantined_to,
        )
        return error

    def _chaos_corrupt(self, text: str, key: str) -> str:
        """Let an attached fault injector corrupt snapshot bytes."""
        if self._injector is None:
            return text
        from ..resilience.faults import SERVE_SURFACE, corrupt_snapshot_text

        kind = self._injector.next_fault(SERVE_SURFACE, f"snapshot:{key}")
        if kind == "corrupt_snapshot":
            return corrupt_snapshot_text(text, seed=self._injector.seed)
        return text

    # -- loaders -----------------------------------------------------------

    def load_from_mapping(
        self,
        mapping: OrgMapping,
        whois=None,
        pdb=None,
        label: str = "in-memory",
    ) -> Snapshot:
        if len(mapping) == 0 or mapping.universe_size == 0:
            raise self._integrity_failure(
                "mapping", "refusing to serve an empty mapping"
            )
        index = MappingIndex.build(mapping, whois=whois, pdb=pdb)
        return self.swap(index, source="mapping", label=label)

    def load_from_mapping_file(self, path: Union[str, Path]) -> Snapshot:
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise DataError(f"cannot read mapping file {path}: {exc}") from exc
        text = self._chaos_corrupt(text, path.name)
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise self._integrity_failure(
                "mapping-file", f"not valid JSON: {exc}", path
            ) from exc
        try:
            verify_mapping_payload(payload, origin=str(path))
        except SnapshotIntegrityError as exc:
            raise self._integrity_failure(
                "mapping-file",
                exc.reason,
                path,
                expected_digest=exc.expected_digest,
                actual_digest=exc.actual_digest,
            ) from exc
        index = MappingIndex.build(OrgMapping.from_json(payload))
        return self.swap(index, source="mapping-file", label=str(path))

    def load_from_release_file(self, path: Union[str, Path]) -> Snapshot:
        """Load a CAIDA-format as2org release file as a generation.

        This closes the publish/serve round trip: the file written by
        ``borges release`` (or CAIDA's own AS2Org file) groups ASNs by
        ``organizationId``; each group becomes one served organization.
        The digest header ``borges release`` writes is verified first;
        headerless files (CAIDA's own) skip straight to schema checks.
        """
        from ..whois.as2org_file import (
            load_as2org_text,
            parse_release_header,
            read_as2org_file_text,
            record_lines,
            release_digest,
        )
        from ..errors import SnapshotError

        path = Path(path)
        text = self._chaos_corrupt(read_as2org_file_text(path), path.name)
        try:
            header = parse_release_header(text)
        except SnapshotError as exc:
            raise self._integrity_failure("release-file", str(exc), path) from exc
        if header is not None:
            actual = release_digest(record_lines(text))
            expected = str(header.get("digest", ""))
            if actual != expected:
                raise self._integrity_failure(
                    "release-file",
                    "release digest mismatch (truncated or tampered file)",
                    path,
                    expected_digest=expected,
                    actual_digest=actual,
                )
        try:
            whois = load_as2org_text(text, origin=str(path))
        except (SnapshotError, DataError, ValueError) as exc:
            raise self._integrity_failure("release-file", str(exc), path) from exc
        if not whois.asns():
            raise self._integrity_failure(
                "release-file", "release file contains no ASN records", path
            )
        mapping = OrgMapping(
            universe=whois.asns(),
            clusters=[
                frozenset(members) for members in whois.members().values()
            ],
            method="release",
            org_names={asn: whois.org_name_of(asn) for asn in whois.asns()},
        )
        index = MappingIndex.build(mapping, whois=whois)
        return self.swap(index, source="release-file", label=str(path))

    def load_from_blob_file(self, path: Union[str, Path]) -> Snapshot:
        """Load a compiled snapshot blob as the active generation.

        The blob is mapped read-only and served *as the index* — a
        :class:`~repro.serve.shm.reader.BlobIndex` duck-types the full
        ``MappingIndex`` read API with byte-identical responses, so every
        endpoint works unchanged.  Verification (magic, layout, payload
        SHA-256) happens on map; a corrupt blob is quarantined exactly
        like a corrupt release or mapping file.
        """
        from .shm.blob import BlobFormatError
        from .shm.segment import map_blob_file

        path = Path(path)
        try:
            index = map_blob_file(path)
        except OSError as exc:
            raise DataError(f"cannot read blob file {path}: {exc}") from exc
        except BlobFormatError as exc:
            raise self._integrity_failure("blob", str(exc), path) from exc
        return self.swap(index, source="blob", label=str(path))

    def advance_generation(self, minimum: int) -> None:
        """Ensure the next installed generation is numbered ≥ *minimum*.

        Pool workers use this so their response ``generation`` matches
        the pool-wide pointer generation: a worker respawned mid-stream
        (or started late) jumps its counter forward instead of replaying
        1, 2, 3 while its siblings serve generation N.
        """
        with self._lock:
            self._next_generation = max(self._next_generation, minimum)

    def load_from_artifact_store(
        self, store: ArtifactStore, fingerprint: str
    ) -> Snapshot:
        """Load a merge-stage artifact (an encoded ``OrgMapping``)."""
        artifact = store.get("merge", fingerprint)
        if artifact is None:
            raise DataError(f"no merge artifact with fingerprint {fingerprint}")
        actual = stable_digest(artifact.payload)
        if actual != artifact.content_digest:
            raise self._integrity_failure(
                "artifact",
                f"artifact payload digest mismatch for merge:{fingerprint[:12]}",
                expected_digest=artifact.content_digest,
                actual_digest=actual,
            )
        try:
            verify_mapping_payload(
                artifact.payload, origin=f"merge:{fingerprint[:12]}"
            )
        except SnapshotIntegrityError as exc:
            raise self._integrity_failure(
                "artifact", exc.reason
            ) from exc
        mapping = OrgMapping.from_json(artifact.payload)  # type: ignore[arg-type]
        index = MappingIndex.build(mapping)
        return self.swap(
            index, source="artifact", label=f"merge:{fingerprint[:12]}"
        )

    # -- time-travel -------------------------------------------------------

    def attach_archive(self, archive) -> None:
        """Attach a :class:`~repro.watch.archive.SnapshotArchive`.

        Enables :meth:`generation_index` — answering queries from
        historical generations (``/v1/asn?gen=N``) and generation diffs
        (``/v1/diff``).  The archive is read lazily; at most
        ``DEFAULT_ARCHIVE_CACHE`` decoded historical indexes stay in
        memory, LRU-evicted.
        """
        self._archive = archive

    @property
    def archive(self):
        return self._archive

    def generation_index(self, archive_generation: int) -> MappingIndex:
        """The index for one archive generation (active or historical).

        The active snapshot answers its own archive generation without
        touching disk; anything else is loaded from the attached
        archive — digest-verified — and cached in a bounded LRU.
        Raises :class:`~repro.errors.UnknownGenerationError` when no
        archive is attached or the generation is not in it.
        """
        from ..errors import UnknownGenerationError

        active = self._active
        if (
            active is not None
            and active.archive_generation == archive_generation
            and archive_generation > 0
        ):
            return active.index
        if self._archive is None:
            raise UnknownGenerationError(
                archive_generation, "no snapshot archive attached"
            )
        with self._lock:
            cached = self._archive_cache.get(archive_generation)
            if cached is not None:
                self._archive_cache.move_to_end(archive_generation)
                return cached
        # Decode outside the lock — archive reads are milliseconds-scale
        # and must not stall the swap path.
        mapping = self._archive.read_mapping(archive_generation)
        index = MappingIndex.build(mapping)
        with self._lock:
            self._archive_cache[archive_generation] = index
            while len(self._archive_cache) > self._archive_cache_limit:
                self._archive_cache.popitem(last=False)
        self._registry.counter(
            "serve_timetravel_loads_total",
            "Historical generations decoded from the archive",
        ).inc()
        return index

    # -- accounting --------------------------------------------------------

    def history(self) -> List[Dict[str, object]]:
        """Rollback candidates, oldest first (never the active snapshot)."""
        with self._lock:
            return [snapshot.describe() for snapshot in self._history]

    def stats(self) -> Dict[str, object]:
        with self._lock:
            active = self._active
            retiring = len(self._retiring)
            history = len(self._history)
            archive_cached = len(self._archive_cache)
        out: Dict[str, object] = {
            "stale": self.stale,
            "swap_failures": self.swap_failures,
            "last_swap_error": self.last_swap_error,
            "rollback_count": self.rollback_count,
            "retiring_generations": retiring,
            "history_depth": history,
            "timetravel_cached": archive_cached,
        }
        if active is not None:
            out["active"] = active.describe()
        return out


class _Lease:
    """Context manager pinning one snapshot for a reader."""

    __slots__ = ("_store", "snapshot")

    def __init__(self, store: SnapshotStore, snapshot: Snapshot) -> None:
        self._store = store
        self.snapshot = snapshot

    def __enter__(self) -> Snapshot:
        return self.snapshot

    def __exit__(self, *exc_info: object) -> None:
        self._store._release(self.snapshot)
