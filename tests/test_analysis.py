"""Unit/integration tests for the analysis modules (Tables 3–9, Figs 7–9)."""

import pytest

from repro.analysis import (
    feature_contribution_table,
    footprint_growth,
    footprint_summary,
    hypergiant_sizes,
    population_change_summary,
    theta_curves,
    top_population_growth,
    transit_marginal_growth,
    validate_classifier,
    validate_extraction,
)
from repro.analysis.access import changed_orgs
from repro.analysis.validation import score_extraction_record
from repro.core.ner import NERRecordResult
from repro.web.favicon import FaviconAPI


class TestFeatureTable:
    def test_rows_for_all_features(self, borges_result):
        rows = feature_contribution_table(borges_result)
        sources = [row["source"] for row in rows]
        assert sources == ["OID_P", "OID_W", "notes and aka", "R&R", "Favicons"]

    def test_counts_positive(self, borges_result):
        for row in feature_contribution_table(borges_result):
            assert row["asns"] > 0
            assert row["orgs"] > 0

    def test_oid_w_covers_whole_universe(self, borges_result, universe):
        rows = feature_contribution_table(borges_result)
        oid_w = next(r for r in rows if r["source"] == "OID_W")
        assert oid_w["asns"] == len(universe.whois)

    def test_orgs_never_exceed_asns(self, borges_result):
        for row in feature_contribution_table(borges_result):
            assert row["orgs"] <= row["asns"]


class TestExtractionScoring:
    def make_result(self, asn, siblings):
        return NERRecordResult(
            asn=asn, raw_extracted=tuple(siblings),
            siblings=tuple(siblings), filtered_out=(),
        )

    def test_tp(self):
        assert score_extraction_record(self.make_result(1, [2, 3]), [2, 3]) == "tp"

    def test_tn(self):
        assert score_extraction_record(self.make_result(1, []), []) == "tn"

    def test_fn_missed_sibling(self):
        assert score_extraction_record(self.make_result(1, [2]), [2, 3]) == "fn"

    def test_fp_extra_number(self):
        assert score_extraction_record(self.make_result(1, [2, 99]), [2]) == "fp"

    def test_fp_takes_priority_over_fn(self):
        assert score_extraction_record(self.make_result(1, [99]), [2]) == "fp"


class TestValidation:
    def test_extraction_validation(self, pipeline, universe):
        validation = validate_extraction(
            pipeline._ner, universe.pdb, universe.annotations, sample_size=100
        )
        counts = validation.counts
        assert counts.total == validation.sample_size
        assert counts.accuracy > 0.85
        assert len(validation.errors) == counts.fp + counts.fn

    def test_classifier_validation(self, borges_result, universe):
        validation = validate_classifier(
            borges_result.web_result,
            FaviconAPI(universe.web),
            universe.annotations,
        )
        assert validation.groups_reviewed > 0
        assert validation.overall.accuracy > 0.9
        # Step 2 only sees step-1 false negatives.
        assert validation.step2.total <= validation.step1.fn + validation.step1.tn


class TestAccessAnalysis:
    def test_changed_orgs_have_components(self, borges_mapping, as2org_mapping, universe):
        changed = changed_orgs(borges_mapping, as2org_mapping, universe.apnic)
        assert changed
        for org in changed:
            assert org.users_borges >= org.users_largest_prior
            assert org.marginal_growth == (
                org.users_borges - org.users_largest_prior
            )

    def test_summary_counts_partition(self, borges_mapping, as2org_mapping, universe):
        summary = population_change_summary(
            borges_mapping, as2org_mapping, universe.apnic
        )
        assert summary.changed_count + summary.unchanged_count == len(
            borges_mapping
        )
        assert 0 < summary.marginal_growth_pct_of_internet < 100

    def test_top_growth_sorted(self, borges_mapping, as2org_mapping, universe):
        rows = top_population_growth(
            borges_mapping, as2org_mapping, universe.apnic, top_n=10
        )
        diffs = [row["difference"] for row in rows]
        assert diffs == sorted(diffs, reverse=True)
        assert len(rows) <= 10

    def test_growth_consistent_in_rows(self, borges_mapping, as2org_mapping, universe):
        for row in top_population_growth(
            borges_mapping, as2org_mapping, universe.apnic
        ):
            assert row["difference"] == row["borges_users"] - row["as2org_users"]


class TestTransitAnalysis:
    def test_series_shape(self, borges_mapping, as2org_mapping, universe):
        series = transit_marginal_growth(
            borges_mapping, as2org_mapping, universe.asrank
        )
        assert len(series.ranks) == len(series.marginal_growth)
        assert len(series.cumulative_growth) == len(series.ranks)
        # Cumulative series is monotone non-decreasing.
        assert all(
            b >= a for a, b in zip(series.cumulative_growth, series.cumulative_growth[1:])
        )

    def test_one_entry_per_org(self, borges_mapping, as2org_mapping, universe):
        series = transit_marginal_growth(
            borges_mapping, as2org_mapping, universe.asrank
        )
        assert len(series.ranks) == len(borges_mapping)

    def test_top_ranks_gain_more(self, borges_mapping, as2org_mapping, universe):
        series = transit_marginal_growth(
            borges_mapping, as2org_mapping, universe.asrank
        )
        n = len(universe.whois)
        assert series.mean_growth_top(100) >= series.mean_growth_top(n)

    def test_slopes_computed(self, borges_mapping, as2org_mapping, universe):
        series = transit_marginal_growth(
            borges_mapping, as2org_mapping, universe.asrank
        )
        assert set(series.slopes) == {100, 1_000, 10_000}


class TestHypergiantAnalysis:
    def test_rows_sorted_by_gain(self, as2org_mapping, as2orgplus_mapping, borges_mapping):
        rows = hypergiant_sizes(as2org_mapping, as2orgplus_mapping, borges_mapping)
        gains = [row["gain_vs_as2org"] for row in rows]
        assert gains == sorted(gains, reverse=True)

    def test_borges_never_smaller(self, as2org_mapping, as2orgplus_mapping, borges_mapping):
        for row in hypergiant_sizes(
            as2org_mapping, as2orgplus_mapping, borges_mapping
        ):
            assert row["borges"] >= row["as2org"]
            assert row["borges"] >= row["as2org_plus"]

    def test_all_sixteen_rows(self, as2org_mapping, as2orgplus_mapping, borges_mapping):
        rows = hypergiant_sizes(as2org_mapping, as2orgplus_mapping, borges_mapping)
        assert len(rows) == 16


class TestFootprintAnalysis:
    def test_rows_sorted(self, borges_mapping, as2org_mapping, universe):
        rows = footprint_growth(borges_mapping, as2org_mapping, universe.apnic)
        diffs = [row["difference"] for row in rows]
        assert diffs == sorted(diffs, reverse=True)

    def test_digicel_leads(self, borges_mapping, as2org_mapping, universe):
        rows = footprint_growth(borges_mapping, as2org_mapping, universe.apnic)
        assert rows
        assert "Digicel" in str(rows[0]["company"])

    def test_summary_consistent(self, borges_mapping, as2org_mapping, universe):
        summary = footprint_summary(borges_mapping, as2org_mapping, universe.apnic)
        assert summary.expanded_count >= 1
        assert summary.mean_marginal_countries >= 1.0


class TestThetaCurves:
    def test_two_series(self, universe, as2org_mapping):
        curves = theta_curves(universe.whois, as2org_mapping)
        assert set(curves) == {"singletons", "as2org"}

    def test_as2org_curve_dominates_diagonal(self, universe, as2org_mapping):
        curves = theta_curves(universe.whois, as2org_mapping)
        xs, singles = curves["singletons"]
        _, cumulative = curves["as2org"]
        assert all(c >= s for c, s in zip(cumulative, singles))
        assert cumulative[-1] == singles[-1]  # both end at n
