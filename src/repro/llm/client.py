"""Provider-agnostic chat-completions client.

Models the subset of the OpenAI-style chat API Borges uses: messages with
text and image content blocks, temperature/top_p sampling parameters, and
token-usage accounting.  Backends implement :class:`ChatBackend`; the
offline default is :class:`repro.llm.simulated.SimulatedChatBackend`, and
a thin adapter over a real OpenAI-compatible endpoint would satisfy the
same protocol.
"""

from __future__ import annotations

import base64
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from ..config import LLMConfig
from ..errors import CircuitOpenError, LLMBackendError
from ..logutil import get_logger
from ..obs.registry import MetricsRegistry, get_registry
from ..resilience.breaker import CircuitBreaker
from ..resilience.policy import RetryPolicy
from .cache import ResponseCache
from .usage import TokenUsage, estimate_tokens

_LOG = get_logger("llm.client")


@dataclass(frozen=True)
class TextContent:
    """A text content block."""

    text: str

    def to_json(self) -> Dict[str, object]:
        return {"type": "text", "text": self.text}


@dataclass(frozen=True)
class ImageContent:
    """An image content block carried as a base64 data URL (Listing 3)."""

    data: bytes
    media_type: str = "image/jpeg"

    @property
    def data_url(self) -> str:
        encoded = base64.b64encode(self.data).decode("ascii")
        return f"data:{self.media_type};base64,{encoded}"

    def to_json(self) -> Dict[str, object]:
        return {"type": "image_url", "image_url": {"url": self.data_url}}

    @classmethod
    def from_data_url(cls, url: str) -> "ImageContent":
        header, _, payload = url.partition(",")
        media_type = "image/jpeg"
        if header.startswith("data:"):
            media_type = header[len("data:"):].split(";")[0] or media_type
        return cls(data=base64.b64decode(payload), media_type=media_type)


ContentBlock = Union[TextContent, ImageContent]


@dataclass(frozen=True)
class ChatMessage:
    """One chat message: a role plus text or mixed content blocks."""

    role: str  # "system" | "user" | "assistant"
    content: Union[str, Sequence[ContentBlock]]

    @property
    def text(self) -> str:
        """All text content concatenated."""
        if isinstance(self.content, str):
            return self.content
        return "\n".join(
            block.text for block in self.content if isinstance(block, TextContent)
        )

    @property
    def images(self) -> List[ImageContent]:
        if isinstance(self.content, str):
            return []
        return [b for b in self.content if isinstance(b, ImageContent)]

    def cache_key(self) -> str:
        parts = [self.role, self.text]
        parts.extend(img.data_url for img in self.images)
        return "\x1e".join(parts)


@dataclass(frozen=True)
class ChatResponse:
    """A completed chat turn."""

    content: str
    model: str
    usage: TokenUsage
    cached: bool = False


class ChatBackend:
    """Protocol for model drivers.  Subclass and implement ``complete``."""

    name = "abstract"

    def complete(
        self, messages: Sequence[ChatMessage], config: LLMConfig
    ) -> str:
        raise NotImplementedError


class ChatClient:
    """Front-end with deterministic caching, retries and usage accounting.

    At temperature 0 / top_p 1 the paper's setup is reproducible, so
    identical requests are served from cache — exactly the behaviour a
    production pipeline wants when re-running over an unchanged snapshot.

    Completion attempts run under a :class:`RetryPolicy` (exponential
    backoff + jitter on retryable backend errors) behind a
    :class:`CircuitBreaker`: once the backend fails
    ``failure_threshold`` consecutive times, further requests fail fast
    with :class:`~repro.errors.CircuitOpenError` instead of burning the
    retry budget against a dead service.
    """

    def __init__(
        self,
        backend: ChatBackend,
        config: Optional[LLMConfig] = None,
        cache: Optional[ResponseCache] = None,
        max_retries: int = 3,
        registry: Optional[MetricsRegistry] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self._backend = backend
        self._config = (config or LLMConfig()).validate()
        self._cache = cache if cache is not None else ResponseCache()
        self._policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(attempts=max(1, max_retries))
        ).validate()
        self._max_retries = self._policy.attempts
        self._breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker(name=f"llm:{backend.name}", registry=registry)
        )
        self._registry = registry
        self.total_usage = TokenUsage()
        self.request_count = 0

    @property
    def _metrics(self) -> MetricsRegistry:
        # Resolved per call so tests swapping the global registry see
        # clients constructed earlier report into their registry.
        return self._registry if self._registry is not None else get_registry()

    def cache_stats(self) -> Dict[str, int]:
        """The response cache's hits/misses/entries accounting."""
        return self._cache.stats()

    @property
    def config(self) -> LLMConfig:
        return self._config

    @property
    def backend_name(self) -> str:
        return self._backend.name

    def chat(self, messages: Sequence[ChatMessage]) -> ChatResponse:
        """Complete a conversation, consulting the cache first."""
        metrics = self._metrics
        key = self._request_key(messages)
        deterministic = self._config.temperature == 0.0
        if deterministic:
            cached = self._cache.get(key)
            if cached is not None:
                metrics.counter(
                    "llm_cache_events_total", "response-cache lookups",
                    result="hit",
                ).inc()
                return ChatResponse(
                    content=cached,
                    model=self._config.model,
                    usage=TokenUsage(),
                    cached=True,
                )
            metrics.counter(
                "llm_cache_events_total", "response-cache lookups",
                result="miss",
            ).inc()
        start = time.perf_counter()
        content = self._complete_with_retries(messages)
        metrics.histogram(
            "llm_request_seconds", "backend completion latency",
            backend=self._backend.name,
        ).observe(time.perf_counter() - start)
        if deterministic:
            self._cache.put(key, content)
        prompt_tokens = sum(estimate_tokens(m.text) for m in messages)
        usage = TokenUsage(
            prompt_tokens=prompt_tokens,
            completion_tokens=estimate_tokens(content),
        )
        self.total_usage = self.total_usage + usage
        self.request_count += 1
        metrics.counter(
            "llm_requests_total", "completed (non-cached) chat requests",
            backend=self._backend.name,
        ).inc()
        metrics.counter(
            "llm_tokens_total", "tokens spent", kind="prompt"
        ).inc(usage.prompt_tokens)
        metrics.counter(
            "llm_tokens_total", "tokens spent", kind="completion"
        ).inc(usage.completion_tokens)
        return ChatResponse(content=content, model=self._config.model, usage=usage)

    def ask(self, prompt: str) -> str:
        """Single-user-message convenience wrapper."""
        return self.chat([ChatMessage(role="user", content=prompt)]).content

    @property
    def breaker(self) -> CircuitBreaker:
        return self._breaker

    @property
    def retry_policy(self) -> RetryPolicy:
        return self._policy

    def _complete_with_retries(self, messages: Sequence[ChatMessage]) -> str:
        backend, metrics = self._backend, self._metrics
        key = messages[-1].cache_key() if messages else ""

        def attempt() -> str:
            if not self._breaker.allow():
                raise CircuitOpenError(self._breaker.name)
            try:
                content = backend.complete(messages, self._config)
            except LLMBackendError as exc:
                metrics.counter(
                    "llm_retries_total", "failed completion attempts",
                    backend=backend.name,
                ).inc()
                if exc.retryable:
                    self._breaker.record_failure()
                raise
            self._breaker.record_success()
            return content

        def on_retry(attempt_no: int, exc: BaseException, delay: float) -> None:
            metrics.histogram(
                "llm_backoff_seconds", "backoff slept before a retry",
                backend=backend.name,
            ).observe(delay)
            _LOG.warning(
                "backend %s failed (attempt %d/%d, retrying in %.3fs): %s",
                backend.name, attempt_no, self._policy.attempts, delay, exc,
            )

        try:
            return self._policy.execute(attempt, key=key, on_retry=on_retry)
        except CircuitOpenError:
            raise
        except LLMBackendError as exc:
            if not exc.retryable:
                raise
            raise LLMBackendError(
                f"backend {backend.name} failed after "
                f"{self._policy.attempts} attempts: {exc}"
            ) from exc

    def _request_key(self, messages: Sequence[ChatMessage]) -> str:
        head = f"{self._config.model}|{self._config.temperature}|{self._config.top_p}"
        return head + "\x1d" + "\x1d".join(m.cache_key() for m in messages)
