"""Invariant tests for the versioned snapshot archive.

Three mechanical guarantees under test: entries are never overwritten
and generation numbers never reused (immutability), every read is
digest-verified with corrupt entries quarantined aside (integrity), and
retention prunes oldest-first but never the newest entry, with disk
pressure surfacing as a typed retryable error (boundedness).
"""

from __future__ import annotations

import pytest

from repro.core.mapping import OrgMapping
from repro.errors import (
    ArchiveImmutabilityError,
    DiskPressureError,
    SnapshotIntegrityError,
    UnknownGenerationError,
)
from repro.obs import use_registry
from repro.resilience import PROFILES, FaultInjector
from repro.watch import SnapshotArchive
from repro.watch.archive import QUARANTINE_SUFFIX


def make_mapping(groups, method="archive-test"):
    universe = sorted(asn for group in groups for asn in group)
    return OrgMapping(
        universe=universe,
        clusters=[frozenset(group) for group in groups],
        method=method,
    )


@pytest.fixture()
def registry():
    with use_registry() as reg:
        yield reg


@pytest.fixture()
def archive(tmp_path, registry):
    return SnapshotArchive(tmp_path / "archive", registry=registry)


class TestPublishRead:
    def test_generations_are_sequential_and_round_trip(self, archive):
        entry = archive.publish(
            make_mapping([{1, 2}, {3}]), label="first", dataset_digest="d1"
        )
        assert entry["archive_generation"] == 1
        archive.publish(make_mapping([{1, 2, 3}]), label="second")
        assert archive.generations() == [1, 2]
        assert len(archive) == 2
        restored = archive.read_mapping(1)
        assert {frozenset(c) for c in restored.clusters()} == {
            frozenset({1, 2}), frozenset({3}),
        }

    def test_header_carries_provenance_without_the_payload(self, archive):
        archive.publish(
            make_mapping([{1, 2}]),
            label="nightly",
            dataset_digest="abc",
            meta={"gate": {"churn_fraction": 0.0}},
        )
        header = archive.header(1)
        assert header["label"] == "nightly"
        assert header["dataset_digest"] == "abc"
        assert header["meta"] == {"gate": {"churn_fraction": 0.0}}
        assert "mapping" not in header

    def test_unknown_generation_is_a_typed_error(self, archive):
        with pytest.raises(UnknownGenerationError):
            archive.read(42)


class TestImmutability:
    def test_existing_entry_is_never_overwritten(self, archive, monkeypatch):
        archive.publish(make_mapping([{1, 2}]), label="first")
        before = archive._entry_path(1).read_bytes()
        monkeypatch.setattr(archive, "next_generation", lambda: 1)
        with pytest.raises(ArchiveImmutabilityError):
            archive.publish(make_mapping([{9, 10}]), label="imposter")
        assert archive._entry_path(1).read_bytes() == before

    def test_quarantined_generation_numbers_are_burned(self, archive):
        archive.publish(make_mapping([{1, 2}]), label="gen1")
        archive.publish(make_mapping([{1, 2}, {3}]), label="gen2")
        path = archive._entry_path(2)
        path.write_text(path.read_text(encoding="utf-8")[:-20], "utf-8")
        with pytest.raises(SnapshotIntegrityError):
            archive.read(2)
        # The number stays burned: the next publish skips over it.
        entry = archive.publish(make_mapping([{1}, {2}, {3}]), label="gen3")
        assert entry["archive_generation"] == 3
        assert archive.generations() == [1, 3]


class TestReadIntegrity:
    def test_corrupt_entry_is_quarantined_and_typed(self, archive):
        archive.publish(make_mapping([{1, 2}]), label="gen1", dataset_digest="d")
        path = archive._entry_path(1)
        text = path.read_text(encoding="utf-8")
        path.write_text(text.replace('"label"', '"lebal"', 1), "utf-8")
        with pytest.raises(SnapshotIntegrityError) as excinfo:
            archive.read(1)
        assert excinfo.value.source == "archive"
        assert path.with_name(path.name + QUARANTINE_SUFFIX).exists()
        assert not path.exists()
        with pytest.raises(UnknownGenerationError):
            archive.read(1)

    def test_non_json_entry_is_quarantined(self, archive):
        archive.publish(make_mapping([{1, 2}]), label="gen1")
        path = archive._entry_path(1)
        path.write_text("]]]garbage", encoding="utf-8")
        with pytest.raises(SnapshotIntegrityError):
            archive.read(1)
        assert path.with_name(path.name + QUARANTINE_SUFFIX).exists()


class TestRetention:
    def test_prunes_oldest_first_past_max_entries(self, tmp_path, registry):
        archive = SnapshotArchive(
            tmp_path / "archive", max_entries=2, registry=registry
        )
        for n in range(4):
            archive.publish(make_mapping([{1, 2}, {n + 10}]), label=f"g{n}")
        # Pruning runs before each write, so the freshly published entry
        # may sit one past the budget until the next cycle's prune.
        assert archive.generations() == [2, 3, 4]
        assert archive.prune() == [2]
        assert archive.generations() == [3, 4]

    def test_aggressive_prune_keeps_only_the_newest(self, archive):
        for n in range(3):
            archive.publish(make_mapping([{1, 2}, {n + 10}]), label=f"g{n}")
        removed = archive.prune(aggressive=True)
        assert removed == [1, 2]
        assert archive.generations() == [3]

    def test_max_bytes_prunes_but_spares_the_newest(self, tmp_path, registry):
        archive = SnapshotArchive(
            tmp_path / "archive", max_bytes=1, registry=registry
        )
        for n in range(3):
            archive.publish(make_mapping([{1, 2}, {n + 10}]), label=f"g{n}")
        # Every entry is far over 1 byte; pruning-before-publish removes
        # history but the newest entry is sacred, so exactly the last
        # publish plus its predecessor-at-write-time survive each round.
        assert archive.generations() == [2, 3]

    def test_disk_pressure_is_typed_and_retryable(self, tmp_path, registry):
        injector = FaultInjector(PROFILES["disk-pressure"], seed=7)
        archive = SnapshotArchive(
            tmp_path / "archive",
            free_bytes_floor=1,
            registry=registry,
            injector=injector,
        )
        with pytest.raises(DiskPressureError) as excinfo:
            archive.publish(make_mapping([{1, 2}]), label="g0")
        assert excinfo.value.retryable
        assert len(archive) == 0  # nothing half-written

    def test_floor_without_injector_uses_real_free_space(self, tmp_path, registry):
        huge_floor = 1 << 62  # no filesystem has this much headroom
        archive = SnapshotArchive(
            tmp_path / "archive", free_bytes_floor=huge_floor, registry=registry
        )
        with pytest.raises(DiskPressureError):
            archive.publish(make_mapping([{1, 2}]), label="g0")

    def test_stats_report_bounds_and_extent(self, archive):
        archive.publish(make_mapping([{1, 2}]), label="g0")
        archive.publish(make_mapping([{1}, {2}]), label="g1")
        stats = archive.stats()
        assert stats["entries"] == 2
        assert stats["oldest_generation"] == 1
        assert stats["newest_generation"] == 2
        assert stats["total_bytes"] == archive.total_bytes() > 0
