"""Tests for BGP route propagation and AS-relationship inference."""

import random

import pytest

from repro.asrank import ASTopology, Relationship
from repro.asrank.bgp import (
    RouteAnnouncement,
    collect_paths,
    is_valley_free,
    propagate_routes,
)
from repro.asrank.relationship_inference import (
    InferredEdge,
    infer_relationships,
    observed_degrees,
    score_inference,
)


def diamond():
    """1 → {2, 3} → 4, stub 5 under 2, peers 2–3."""
    topology = ASTopology()
    topology.add_p2c(1, 2)
    topology.add_p2c(1, 3)
    topology.add_p2c(2, 4)
    topology.add_p2c(3, 4)
    topology.add_p2c(2, 5)
    topology.add_p2p(2, 3)
    return topology


class TestPropagation:
    def test_every_connected_as_gets_a_route(self):
        table = propagate_routes(diamond(), 4)
        assert set(table) == {1, 2, 3, 5}

    def test_paths_end_at_origin(self):
        table = propagate_routes(diamond(), 4)
        for asn, (path, _rel) in table.items():
            assert path[0] == asn
            assert path[-1] == 4

    def test_customer_route_preferred_over_peer(self):
        # AS2 reaches 4 via its customer edge directly, not via peer 3.
        table = propagate_routes(diamond(), 4)
        assert table[2][0] == (2, 4)

    def test_peer_route_not_exported_to_peer(self):
        # 3 learns 5's route only via provider 1 (2 won't export its
        # customer route to... it will: 5 is 2's customer so 2 exports to
        # everyone, including peer 3 → (3, 2, 5).
        table = propagate_routes(diamond(), 5)
        assert table[3][0] == (3, 2, 5)

    def test_provider_learned_routes_stay_downhill(self):
        # 5 learns everything through its provider 2; those routes are
        # never re-exported upward (5 has no customers, so moot) — but 1's
        # route to 5 must not transit peer links after the descent.
        table = propagate_routes(diamond(), 5)
        assert table[1][0] == (1, 2, 5)

    def test_no_route_across_partition(self):
        topology = diamond()
        topology.add_asn(99)  # isolated AS
        table = propagate_routes(topology, 4)
        assert 99 not in table

    def test_loop_free_paths(self):
        table = propagate_routes(diamond(), 4)
        for path, _rel in table.values():
            assert len(path) == len(set(path))


class TestValleyFree:
    def test_all_propagated_paths_valley_free(self):
        topology = diamond()
        for origin in topology.asns():
            for path, _rel in propagate_routes(topology, origin).values():
                assert is_valley_free(topology, path), path

    def test_valley_path_rejected(self):
        # 4 → 2 → 5 read as announcement (5, 2, 4): origin 4 climbs to 2
        # then descends to 5 — fine.  A true valley: (1, 4, ...) is not
        # even an edge; craft down-then-up: origin 5, up to 2, down to 4,
        # then up to 3 — path (3, 4, 2, 5) read origin 5 → 2 (up) → 4
        # (down) → 3 (up): invalid.
        assert not is_valley_free(diamond(), (3, 4, 2, 5))

    def test_two_peer_hops_rejected(self):
        topology = ASTopology()
        topology.add_p2p(1, 2)
        topology.add_p2p(2, 3)
        assert not is_valley_free(topology, (3, 2, 1))

    def test_non_edge_rejected(self):
        assert not is_valley_free(diamond(), (1, 5))


class TestCollectors:
    def test_one_announcement_per_collector_origin(self):
        announcements = collect_paths(diamond(), collectors=[1, 5], origins=[4])
        assert len(announcements) == 2
        assert {a.collector_peer for a in announcements} == {1, 5}
        assert all(a.origin == 4 for a in announcements)

    def test_default_origins_cover_topology(self):
        announcements = collect_paths(diamond(), collectors=[1])
        origins = {a.origin for a in announcements}
        assert origins == {2, 3, 4, 5}  # everything except the collector


class TestInference:
    def test_observed_degrees(self):
        announcements = [RouteAnnouncement(path=(1, 2, 4))]
        degrees = observed_degrees(announcements)
        assert degrees == {1: 1, 2: 2, 4: 1}

    def test_realistic_topology_accuracy(self, universe):
        rng = random.Random(5)
        topology = universe.topology
        origins = rng.sample(topology.asns(), 120)
        collectors = topology.tier1s()[:3] + rng.sample(topology.asns(), 3)
        announcements = collect_paths(
            topology, collectors=collectors, origins=origins
        )
        assert announcements
        assert all(is_valley_free(topology, a.path) for a in announcements)
        edges = infer_relationships(announcements)
        score = score_inference(topology, edges)
        # Degree-based Gao is accurate on the synthetic topology, with
        # its textbook failure mode (peer/provider kind confusion) and
        # no invented adjacencies.
        assert score.accuracy > 0.75
        assert score.nonexistent == 0
        assert score.wrong_kind >= score.wrong_orientation

    def test_scoring_vocabulary(self):
        topology = diamond()
        edges = [
            InferredEdge(a=1, b=2, relationship=Relationship.P2C),   # correct
            InferredEdge(a=2, b=1, relationship=Relationship.P2C),   # flipped
            InferredEdge(a=2, b=3, relationship=Relationship.P2P),   # correct
            InferredEdge(a=2, b=4, relationship=Relationship.P2P),   # wrong kind
            InferredEdge(a=1, b=5, relationship=Relationship.P2C),   # not an edge
        ]
        score = score_inference(topology, edges)
        assert score.total == 5
        assert score.correct == 2
        assert score.wrong_orientation == 1
        assert score.wrong_kind == 1
        assert score.nonexistent == 1
        assert score.accuracy == pytest.approx(0.4)
