"""The stage executor: topological, cached, concurrent, isolated.

:class:`StageExecutor` takes a resolved stage graph (see
:mod:`repro.core.stages`) and drives it to completion:

* **Topological order** — Kahn's algorithm with a sorted ready set, so
  scheduling is deterministic run-to-run.
* **Incrementality** — each stage's fingerprint is computed *before* it
  runs (fingerprints are input-addressed: config slice + dataset digests
  + upstream fingerprints), so a cache hit skips the work entirely and
  :meth:`plan` can predict hits without executing anything.
* **Concurrency** — independent ready stages run on a thread pool;
  stages declaring a shared resource (the LLM client, the web driver)
  are serialised by per-resource locks.
* **Isolation** — an optional stage's failure marks it ``failed`` and
  skips its dependents; backbone failures abort the run.  The old
  hand-written rr-salvage logic falls out of the DAG shape: rr depends
  only on scrape, so a favicon failure can't touch it.

Every stage execution is wrapped in a ``stage.<name>`` tracer span and
counted in ``pipeline_stage_runs_total{stage,outcome}``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..logutil import get_logger
from ..obs.context import (
    current_trace_context,
    new_trace_context,
    use_trace_context,
)
from ..obs.log import get_event_log
from ..obs.registry import MetricsRegistry, get_registry
from ..obs.tracer import Span, Tracer, get_tracer
from .artifacts import ArtifactStore, compute_fingerprint, make_artifact
from .stages import StageContext, StageSpec

_LOG = get_logger("core.executor")


@dataclass
class StageRecord:
    """What happened to one stage in one run."""

    stage: str
    status: str = "pending"  # "ok" | "cached" | "failed" | "skipped"
    #: Where the value came from: "computed" | "memory" | "disk" | "".
    source: str = ""
    fingerprint: str = ""
    duration: float = 0.0
    error: str = ""
    feature: Optional[str] = None
    backbone: bool = False

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "stage": self.stage,
            "status": self.status,
            "source": self.source,
            "fingerprint": self.fingerprint,
            "duration_seconds": round(self.duration, 6),
        }
        if self.feature:
            out["feature"] = self.feature
        if self.error:
            out["error"] = self.error
        return out


@dataclass
class ExecutionOutcome:
    """Decoded stage values plus the per-stage execution records."""

    values: Dict[str, object] = field(default_factory=dict)
    records: "OrderedDict[str, StageRecord]" = field(default_factory=OrderedDict)

    @property
    def failures(self) -> Dict[str, str]:
        return {
            name: record.error
            for name, record in self.records.items()
            if record.status == "failed"
        }

    @property
    def cached_count(self) -> int:
        return sum(1 for r in self.records.values() if r.status == "cached")


class StageExecutor:
    """Runs one stage graph against one context and artifact store."""

    def __init__(
        self,
        graph: "OrderedDict[str, StageSpec]",
        store: ArtifactStore,
        ctx: StageContext,
        max_workers: int = 4,
        salt: Optional[object] = None,
        extra_labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.graph = graph
        self.store = store
        self.ctx = ctx
        self.max_workers = max(1, int(max_workers))
        self.salt = salt
        #: Extra metric labels / span attributes stamped on every stage
        #: this executor runs (a sharded run passes ``{"shard": "3"}``,
        #: so per-shard stage counters stay distinguishable in one
        #: registry).  Labels never enter fingerprints: the same work is
        #: the same artifact no matter which shard computed it.
        self.extra_labels: Dict[str, str] = {
            str(k): str(v) for k, v in (extra_labels or {}).items()
        }
        self._resource_locks: Dict[str, threading.Lock] = {}
        for spec in graph.values():
            for resource in spec.resources:
                self._resource_locks.setdefault(resource, threading.Lock())

    @property
    def _tracer(self) -> Tracer:
        return self.ctx.tracer if self.ctx.tracer is not None else get_tracer()

    @property
    def _metrics(self) -> MetricsRegistry:
        return (
            self.ctx.registry
            if self.ctx.registry is not None
            else get_registry()
        )

    # -- fingerprints ------------------------------------------------------

    def _fingerprint_for(
        self, spec: StageSpec, upstream: Dict[str, str]
    ) -> str:
        datasets = {
            name: self.ctx.dataset_digests.get(name, "missing:" + name)
            for name in spec.datasets
        }
        return compute_fingerprint(
            spec.name,
            spec.config_slice(self.ctx.config),
            datasets,
            upstream,
            salt=self.salt,
        )

    def _static_fingerprints(self) -> Dict[str, str]:
        """Every stage's fingerprint, assuming all dependencies succeed.

        Fingerprints are input-addressed, so this needs no execution —
        it is what ``plan`` (and the CLI's ``--explain-plan``) reports.
        """
        fingerprints: Dict[str, str] = {}
        for name, spec in self.graph.items():
            upstream = {dep: fingerprints[dep] for dep in spec.deps}
            fingerprints[name] = self._fingerprint_for(spec, upstream)
        return fingerprints

    # -- planning ----------------------------------------------------------

    def plan(self) -> List[Dict[str, object]]:
        """The would-be execution, stage by stage, without running it."""
        fingerprints = self._static_fingerprints()
        rows: List[Dict[str, object]] = []
        for name, spec in self.graph.items():
            fingerprint = fingerprints[name]
            rows.append(
                {
                    "stage": name,
                    "deps": list(spec.deps),
                    "feature": spec.feature,
                    "backbone": spec.backbone,
                    "fingerprint": fingerprint,
                    "cached": self.store.peek(name, fingerprint),
                }
            )
        return rows

    # -- execution ---------------------------------------------------------

    def execute(self) -> ExecutionOutcome:
        """Run the graph; returns decoded values and per-stage records."""
        outcome = ExecutionOutcome()
        for name, spec in self.graph.items():
            outcome.records[name] = StageRecord(
                stage=name, feature=spec.feature, backbone=spec.backbone
            )

        indegree = {name: len(spec.deps) for name, spec in self.graph.items()}
        dependents: Dict[str, List[str]] = {name: [] for name in self.graph}
        for name, spec in self.graph.items():
            for dep in spec.deps:
                dependents[dep].append(name)

        ready = sorted(n for n, d in indegree.items() if d == 0)
        fingerprints: Dict[str, str] = {}
        done: set = set()
        backbone_error: Optional[BaseException] = None
        parent_span: Optional[Span] = self._tracer.current
        # Capture the run's trace context here, on the scheduling thread:
        # contextvars do not cross into pool workers, so run_stage
        # re-installs it explicitly and every stage's spans and events
        # share the run's trace ID.
        run_context = current_trace_context() or new_trace_context()

        def resolve_skips(name: str) -> Optional[str]:
            """Why *name* cannot run, or None if it can."""
            spec = self.graph[name]
            lost = [
                dep
                for dep in spec.deps
                if outcome.records[dep].status in ("failed", "skipped")
            ]
            if lost and spec.require_all_deps:
                return "dependency failed: " + ", ".join(sorted(lost))
            return None

        def finish(name: str) -> None:
            """Mark *name* finished and promote newly-ready dependents."""
            done.add(name)
            for dependent in dependents[name]:
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    ready.append(dependent)
            ready.sort()

        def run_stage(name: str) -> Tuple[str, Optional[BaseException]]:
            spec = self.graph[name]
            record = outcome.records[name]
            start = time.perf_counter()
            try:
                with use_trace_context(run_context):
                    with self._tracer.attach(parent_span):
                        with self._tracer.span("stage." + name) as span:
                            for key, value in self.extra_labels.items():
                                span.set_attribute(key, value)
                            self._run_one(spec, record, fingerprints, outcome)
                            span.set_attribute("status", record.status)
                            span.set_attribute("source", record.source)
                            if record.fingerprint:
                                span.set_attribute(
                                    "fingerprint", record.fingerprint[:16]
                                )
                error: Optional[BaseException] = None
            except BaseException as exc:  # noqa: BLE001 - isolation boundary
                record.status = "failed"
                record.error = f"{type(exc).__name__}: {exc}"
                error = exc
            record.duration = time.perf_counter() - start
            self._metrics.counter(
                "pipeline_stage_runs_total",
                "stage executions by outcome",
                **dict(self.extra_labels, stage=name, outcome=record.status),
            ).inc()
            with use_trace_context(run_context):
                get_event_log().emit(
                    "stage.finish",
                    severity="warning" if record.status == "failed" else "info",
                    stage=name,
                    status=record.status,
                    source=record.source,
                    duration_ms=round(record.duration * 1e3, 3),
                    fingerprint=record.fingerprint[:16],
                    error=record.error,
                )
            if record.status == "failed" and not spec.backbone:
                self._metrics.counter(
                    "pipeline_feature_failures_total",
                    "features lost to errors (run degraded)",
                    **dict(self.extra_labels, feature=spec.feature or name),
                ).inc()
                _LOG.warning(
                    "stage %s failed, continuing degraded: %s",
                    name,
                    record.error,
                )
            return name, error

        pool: Optional[ThreadPoolExecutor] = None
        if self.max_workers > 1:
            pool = ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="borges-stage",
            )
        try:
            running: Dict[object, str] = {}
            while (ready or running) and backbone_error is None:
                while ready:
                    name = ready.pop(0)
                    skip_reason = resolve_skips(name)
                    if skip_reason is not None:
                        record = outcome.records[name]
                        record.status = "skipped"
                        record.error = skip_reason
                        self._metrics.counter(
                            "pipeline_stage_runs_total",
                            "stage executions by outcome",
                            **dict(
                                self.extra_labels,
                                stage=name,
                                outcome="skipped",
                            ),
                        ).inc()
                        finish(name)
                        continue
                    if pool is None:
                        finished, error = run_stage(name)
                        if error is not None and self.graph[name].backbone:
                            backbone_error = error
                        finish(finished)
                        if backbone_error is not None:
                            break
                    else:
                        running[pool.submit(run_stage, name)] = name
                if pool is not None and running:
                    completed, _pending = wait(
                        set(running), return_when=FIRST_COMPLETED
                    )
                    for future in sorted(
                        completed, key=lambda f: running[f]
                    ):
                        running.pop(future)
                        finished, error = future.result()
                        if error is not None and self.graph[finished].backbone:
                            backbone_error = error
                        finish(finished)
            if pool is not None and running:
                # A backbone stage failed: let in-flight stages drain, but
                # schedule nothing new.
                for future in wait(set(running)).done:
                    name = running.get(future)
                    if name is not None:
                        finished, error = future.result()
                        finish(finished)
                running.clear()
        finally:
            if pool is not None:
                pool.shutdown(wait=True)

        for name, record in outcome.records.items():
            if record.status == "pending":
                record.status = "skipped"
                record.error = record.error or "not reached (run aborted)"

        if backbone_error is not None:
            raise backbone_error
        return outcome

    def _run_one(
        self,
        spec: StageSpec,
        record: StageRecord,
        fingerprints: Dict[str, str],
        outcome: ExecutionOutcome,
    ) -> None:
        """Resolve one runnable stage: cache hit or compute + store."""
        surviving = [
            dep for dep in spec.deps if outcome.records[dep].status in ("ok", "cached")
        ]
        upstream = {dep: fingerprints[dep] for dep in surviving}
        fingerprint = self._fingerprint_for(spec, upstream)
        record.fingerprint = fingerprint
        fingerprints[spec.name] = fingerprint

        source = self.store.peek(spec.name, fingerprint)
        artifact = self.store.get(spec.name, fingerprint)
        if artifact is not None:
            record.status = "cached"
            record.source = source or "memory"
            outcome.values[spec.name] = spec.decode(artifact.payload, self.ctx)
            return

        inputs = {dep: outcome.values[dep] for dep in surviving}
        with ExitStack() as locks:
            for resource in sorted(spec.resources):
                locks.enter_context(self._resource_locks[resource])
            value = spec.produce(self.ctx, inputs)
        payload = spec.encode(value)
        self.store.put(make_artifact(spec.name, fingerprint, payload))
        record.status = "ok"
        record.source = "computed"
        # Round-trip through the codec so cold and warm runs hand
        # downstream stages the identical value (the artifact is the
        # interface, not the in-memory object).
        outcome.values[spec.name] = spec.decode(payload, self.ctx)
