"""Tests for publishing mappings in CAIDA's as2org format."""

import pytest

from repro.core.release import mapping_to_whois_dataset, save_mapping_as2org
from repro.whois import load_as2org_file


class TestMappingExport:
    def test_one_org_per_cluster(self, borges_mapping, universe):
        dataset = mapping_to_whois_dataset(borges_mapping, universe.whois)
        assert len(dataset.orgs) == len(borges_mapping)
        assert len(dataset) == borges_mapping.universe_size

    def test_cluster_members_share_the_released_org(
        self, borges_mapping, universe
    ):
        dataset = mapping_to_whois_dataset(borges_mapping, universe.whois)
        for cluster in borges_mapping.multi_asn_clusters()[:50]:
            members = sorted(cluster)
            org_ids = {dataset.org_id_of(asn) for asn in members}
            assert len(org_ids) == 1
            assert org_ids.pop() == f"BORGES-{members[0]}"

    def test_names_carried_from_mapping(self, borges_mapping, universe):
        dataset = mapping_to_whois_dataset(borges_mapping, universe.whois)
        from repro.universe.canonical import AS_LUMEN

        released = dataset.org_name_of(AS_LUMEN)
        assert released == borges_mapping.org_name_of(AS_LUMEN)

    def test_round_trip_through_caida_file(
        self, tmp_path, borges_mapping, universe
    ):
        path = tmp_path / "borges_as2org.jsonl.gz"
        save_mapping_as2org(borges_mapping, universe.whois, path)
        loaded = load_as2org_file(path)
        assert loaded.asns() == universe.whois.asns()
        # The reloaded file reproduces exactly the mapping's clustering.
        for cluster in borges_mapping.multi_asn_clusters()[:25]:
            members = sorted(cluster)
            assert loaded.siblings_of(members[0]) == set(members)

    def test_reloaded_theta_matches(self, tmp_path, borges_mapping, universe):
        from repro.baselines import build_as2org_mapping
        from repro.metrics import org_factor_from_mapping

        path = tmp_path / "release.jsonl"
        save_mapping_as2org(borges_mapping, universe.whois, path)
        reloaded_mapping = build_as2org_mapping(load_as2org_file(path))
        assert org_factor_from_mapping(reloaded_mapping) == pytest.approx(
            org_factor_from_mapping(borges_mapping)
        )
