"""Robustness properties: hostile inputs must never crash the pipeline.

Operators write anything into PeeringDB fields; the NER round trip (render
prompt → simulated completion → parse → output filter) and the scraper
must stay total functions over arbitrary text/URLs.
"""

import dataclasses
import functools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import BorgesConfig, ResilienceConfig, UniverseConfig
from repro.core import BorgesPipeline
from repro.core.ner import NERModule
from repro.llm.extraction_engine import find_all_numbers
from repro.llm.simulated import make_default_client
from repro.obs.registry import MetricsRegistry
from repro.peeringdb import Network
from repro.universe import generate_universe
from repro.web.scraper import HeadlessScraper
from repro.web.simweb import SimulatedWeb

# Exclude the template sentinels the prompt embeds fields between — an
# operator cannot break the backend's field recovery without them.
freeform_text = st.text(max_size=400).filter(
    lambda s: "\n\nAKA:" not in s and "\n\nThe output should be" not in s
)


@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
@given(freeform_text, freeform_text)
def test_ner_round_trip_total_over_arbitrary_text(notes, aka):
    """extract_record never raises and never hallucinates numbers."""
    client = make_default_client()
    ner = NERModule(client, BorgesConfig())
    net = Network(asn=65552, name="fuzz", org_id=1, notes=notes, aka=aka)
    result = ner.extract_record(net)
    literal = set(find_all_numbers(net.freeform_text))
    for sibling in result.siblings:
        assert sibling in literal
        assert sibling != net.asn


@settings(max_examples=60)
@given(st.text(max_size=120))
def test_scraper_total_over_arbitrary_urls(url):
    """resolve() never raises; failures surface in the result object."""
    scraper = HeadlessScraper(SimulatedWeb())
    result = scraper.resolve(url)
    assert result.ok is False  # empty web: nothing resolves
    assert result.error


@settings(max_examples=40)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c", "d", "e"]),
            st.sampled_from(["a", "b", "c", "d", "e"]),
        ),
        max_size=8,
    )
)
def test_scraper_terminates_on_arbitrary_redirect_graphs(edges):
    """Any redirect topology (chains, loops, diamonds) terminates."""
    web = SimulatedWeb()
    targets = {}
    for src, dst in edges:
        if src != dst:
            targets.setdefault(src, dst)
    hosts = {h for pair in edges for h in pair}
    for host in sorted(hosts):
        full = f"www.{host}.example.com"
        if host in targets:
            web.add_redirect(
                f"https://{full}/",
                f"https://www.{targets[host]}.example.com/",
            )
        else:
            web.add_page(f"https://{full}/")
    scraper = HeadlessScraper(web)
    for host in sorted(hosts):
        result = scraper.resolve(f"https://www.{host}.example.com/")
        # Terminates with either a final URL or a classified failure.
        assert result.ok or result.error


@functools.lru_cache(maxsize=1)
def _chaos_universe():
    """A tiny universe shared by every seeded-chaos example."""
    return generate_universe(UniverseConfig(seed=11, n_organizations=60))


def _chaos_run(profile: str, fault_seed: int):
    universe = _chaos_universe()
    resilience = ResilienceConfig(
        llm_base_delay=0.0, llm_max_delay=0.0,
        web_base_delay=0.0, web_max_delay=0.0,
        fault_profile=profile, fault_seed=fault_seed,
    )
    config = dataclasses.replace(BorgesConfig(), resilience=resilience)
    pipeline = BorgesPipeline(
        universe.whois, universe.pdb, universe.web, config,
        registry=MetricsRegistry(),
    )
    return pipeline.run()


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.sampled_from(["flaky", "burst", "storm"]),
    st.integers(min_value=0, max_value=2**16),
)
def test_seeded_chaos_is_reproducible(profile, fault_seed):
    """Same (profile, seed) ⇒ byte-identical BorgesResult, never a crash."""
    first = _chaos_run(profile, fault_seed)
    second = _chaos_run(profile, fault_seed)
    assert first.mapping.clusters() == second.mapping.clusters()
    assert first.degraded == second.degraded
    assert first.feature_errors == second.feature_errors
    assert sorted(first.features) == sorted(second.features)
    diag_1 = first.diagnostics["resilience"]
    diag_2 = second.diagnostics["resilience"]
    assert diag_1.get("faults_injected") == diag_2.get("faults_injected")
    # Degradation is the only sanctioned failure mode: whatever the chaos
    # did, the run completed and the universe is still fully mapped.
    assert len(first.mapping) > 0
