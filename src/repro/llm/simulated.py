"""The deterministic offline chat backend (GPT-4o-mini stand-in).

:class:`SimulatedChatBackend` receives *rendered prompts* — the exact
strings a real API call would carry — recognizes which of the paper's two
tasks they encode, recovers the embedded fields, runs the corresponding
NLP engine, passes the result through the calibrated error model, and
renders a plausible completion string.  The pipeline then parses that
string with :mod:`repro.llm.parsing`, so the full prompt→completion→parse
round trip is exercised end to end.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple

from ..config import LLMConfig
from ..errors import LLMInvalidRequestError
from ..logutil import get_logger
from .cache import ResponseCache
from .classifier_engine import classify_group, decode_brand
from .client import ChatBackend, ChatClient, ChatMessage
from .errors_model import ErrorInjector
from .extraction_engine import (
    extract_siblings,
    find_all_numbers,
    find_asn_tokens,
)
from .parsing import render_extraction_reply
from .prompts import CLASSIFIER_PROMPT_MARKER, EXTRACTION_PROMPT_MARKER

_LOG = get_logger("llm.simulated")

_EXTRACTION_FIELDS_RE = re.compile(
    r"The PeeringDB information for the ASN (?P<asn>\d+) is:\s*\n\n"
    r"Notes: (?P<notes>.*?)\n\nAKA: (?P<aka>.*?)\n\nThe output should be",
    re.DOTALL,
)
_CLASSIFIER_URLS_RE = re.compile(
    r"Accessing these URLs (?P<urls>\[.*?\]) returned the attached favicon",
    re.DOTALL,
)
_URL_TOKEN_RE = re.compile(r"'([^']*)'|\"([^\"]*)\"")


def _parse_url_list(text: str) -> List[str]:
    """Parse the prompt's ``str(list_of_urls)`` rendering.

    Deliberately not ``ast.literal_eval``: the AST constructor's
    recursion bookkeeping is not reliable under heavy thread
    concurrency on CPython 3.11 (``SystemError: AST constructor
    recursion depth mismatch``, seen when many sharded favicon stages
    classify at once), and the input is only ever a flat list of
    quoted URL strings.
    """
    inner = text.strip()
    if not (inner.startswith("[") and inner.endswith("]")):
        raise LLMInvalidRequestError(f"unparsable URL list: {text[:80]!r}")
    return [
        match.group(1) if match.group(1) is not None else match.group(2)
        for match in _URL_TOKEN_RE.finditer(inner)
    ]


class SimulatedChatBackend(ChatBackend):
    """Deterministic task-routing backend with calibrated errors."""

    name = "simulated"

    def __init__(self, config: Optional[LLMConfig] = None) -> None:
        self._config = (config or LLMConfig()).validate()
        self._injector = ErrorInjector(
            seed=self._config.seed,
            rates={
                # Extraction slips (Table 4): missing a reported sibling
                # (FN), misreading a decoy number as an ASN (FP case 1),
                # and misreading an upstream's real ASN as a sibling (FP
                # case 2 — the kind that produces wrong merges downstream).
                "extract_drop": self._config.extraction_error_rate,
                "extract_decoy": self._config.extraction_error_rate * 0.3,
                "extract_upstream": self._config.extraction_error_rate * 0.2,
                # Classifier slips (Table 5): rejecting a real company
                # (FN) and blessing a framework icon as a company (FP).
                "classify_reject": self._config.classifier_error_rate,
                "classify_accept": self._config.classifier_error_rate * 0.25,
            },
        )

    def complete(
        self, messages: Sequence[ChatMessage], config: LLMConfig
    ) -> str:
        prompt_text = "\n".join(m.text for m in messages if m.role != "assistant")
        if EXTRACTION_PROMPT_MARKER in prompt_text:
            return self._complete_extraction(prompt_text)
        if CLASSIFIER_PROMPT_MARKER in prompt_text:
            return self._complete_classification(prompt_text, messages)
        raise LLMInvalidRequestError(
            "simulated backend received a prompt it does not recognize; "
            "only the Borges extraction and classifier prompts are modelled"
        )

    # -- extraction task ------------------------------------------------

    def _complete_extraction(self, prompt_text: str) -> str:
        match = _EXTRACTION_FIELDS_RE.search(prompt_text)
        if not match:
            raise LLMInvalidRequestError("extraction prompt missing embedded fields")
        own_asn = int(match.group("asn"))
        notes = _unplaceholder(match.group("notes"))
        aka = _unplaceholder(match.group("aka"))

        result = extract_siblings(own_asn, notes, aka)
        asns: List[int] = list(result.asns)
        reasoning = result.reasoning
        asns, reasoning = self._inject_extraction_errors(
            own_asn, notes, aka, asns, reasoning
        )
        return render_extraction_reply(asns, reasoning)

    def _inject_extraction_errors(
        self,
        own_asn: int,
        notes: str,
        aka: str,
        asns: List[int],
        reasoning: str,
    ) -> Tuple[List[int], str]:
        text = f"{notes}\n{aka}"
        if asns and self._injector.should("extract_drop", own_asn):
            dropped = self._injector.pick("extract_drop", tuple(sorted(asns)), own_asn)
            asns = [a for a in asns if a != dropped]
            reasoning += "; one reported AS appeared ambiguous and was omitted"
        asn_tokens = set(find_asn_tokens(text))
        decoys = [
            n for n in find_all_numbers(text)
            if n not in asn_tokens and n != own_asn and 1 <= n <= 4_000_000_000
        ]
        if decoys and self._injector.should("extract_decoy", own_asn):
            decoy = self._injector.pick("extract_decoy", tuple(decoys), own_asn)
            if decoy not in asns:
                asns = asns + [decoy]
                reasoning += (
                    f"; the number {decoy} in the text appears to be an AS number"
                )
        # FP case 2: a real AS token the engine correctly excluded (an
        # upstream/peer) is misread as a sibling.
        excluded_tokens = sorted(
            asn_tokens - set(asns) - {own_asn}
        )
        if excluded_tokens and self._injector.should("extract_upstream", own_asn):
            upstream = self._injector.pick(
                "extract_upstream", tuple(excluded_tokens), own_asn
            )
            asns = asns + [upstream]
            reasoning += (
                f"; AS{upstream} appears to belong to the same organization"
            )
        return asns, reasoning

    # -- classification task -----------------------------------------------

    def _complete_classification(
        self, prompt_text: str, messages: Sequence[ChatMessage]
    ) -> str:
        match = _CLASSIFIER_URLS_RE.search(prompt_text)
        if not match:
            raise LLMInvalidRequestError("classifier prompt missing URL list")
        urls = _parse_url_list(match.group("urls"))
        favicon = b""
        for message in messages:
            images = message.images
            if images:
                favicon = images[0].data
                break
        if not favicon:
            raise LLMInvalidRequestError("classifier prompt carried no favicon image")

        answer = classify_group(favicon, list(urls))
        brand = decode_brand(favicon)
        identity = (brand, tuple(sorted(map(str, urls))))
        if answer.is_company and self._injector.should("classify_reject", *identity):
            return "I don't know"
        if not answer.is_company and self._injector.should(
            "classify_accept", *identity
        ):
            # The model over-trusts a shared default icon: invents a company.
            return _invented_company_name(urls)
        return answer.reply


def _unplaceholder(field_text: str) -> str:
    """Undo the ``(empty)`` placeholder the prompt renderer inserts."""
    return "" if field_text.strip() == "(empty)" else field_text


def _invented_company_name(urls: Sequence[str]) -> str:
    """A plausible-but-wrong company name for an FP classifier slip."""
    from ..web.url import brand_label

    for url in urls:
        try:
            return brand_label(str(url)).capitalize() + " Telecom"
        except Exception:
            continue
    return "Acme Telecom"


def make_default_client(
    config: Optional[LLMConfig] = None,
    cache: Optional[ResponseCache] = None,
    resilience: Optional["ResilienceConfig"] = None,
    registry=None,
    injector=None,
) -> ChatClient:
    """Build the standard offline client: simulated backend + cache.

    *resilience* configures the retry policy and circuit breaker, and —
    when its fault profile (or ``$BORGES_FAULT_PROFILE``) is active —
    wraps the backend in a seeded :class:`FaultyChatBackend` so chaos
    runs are reproducible.  Pass *injector* to share one
    :class:`FaultInjector` (and its tallies) with other surfaces.
    """
    from ..config import ResilienceConfig
    from ..resilience.breaker import CircuitBreaker
    from ..resilience.faults import (
        FaultInjector,
        FaultyChatBackend,
        resolve_fault_profile,
    )
    from ..resilience.policy import RetryPolicy

    cfg = (config or LLMConfig()).validate()
    res = (resilience or ResilienceConfig()).validate()
    backend: ChatBackend = SimulatedChatBackend(cfg)
    profile = resolve_fault_profile(res.fault_profile)
    if profile.active:
        if injector is None:
            injector = FaultInjector(
                profile, seed=res.fault_seed, registry=registry
            )
        backend = FaultyChatBackend(backend, injector)
    policy = RetryPolicy(
        attempts=res.llm_attempts,
        base_delay=res.llm_base_delay,
        max_delay=res.llm_max_delay,
        multiplier=res.backoff_multiplier,
        jitter=res.backoff_jitter,
    )
    breaker = CircuitBreaker(
        name=f"llm:{backend.name}",
        failure_threshold=res.breaker_failure_threshold,
        recovery_seconds=res.breaker_recovery_seconds,
        half_open_max_calls=res.breaker_half_open_max_calls,
        registry=registry,
    )
    return ChatClient(
        backend, config=cfg, cache=cache, registry=registry,
        retry_policy=policy, breaker=breaker,
    )
