"""Historical snapshots and cross-snapshot organization tracking.

The final universe is generated once; an *as-of-year* view rewinds every
acquisition whose event year lies in the future:

* the acquired brand becomes its own ground-truth organization again;
* if its WHOIS/PeeringDB records were consolidated under the acquirer,
  they split back into a dedicated organization;
* its website stops redirecting to the acquirer and serves its own
  landing page (with its own favicon);
* notes/aka mentions of its ASNs in other orgs' records are scrubbed
  (the sibling report had not been written yet).

Borges then runs per snapshot; :func:`detect_merges` diffs consecutive
mappings to recover the merger timeline — the analysis Fig. 1 motivates.
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.mapping import OrgMapping
from ..core.pipeline import BorgesPipeline
from ..logutil import get_logger
from ..metrics.org_factor import org_factor_from_mapping
from ..peeringdb import Network, Organization, PDBSnapshot
from ..types import ASN, Cluster
from ..universe.entities import Brand, GroundTruth, Org
from ..universe.events import EventKind
from ..universe.generator import Universe
from ..web.http import RedirectKind
from ..web.simweb import SimulatedWeb, Site, make_favicon
from ..whois import ASNDelegation, WhoisDataset, WhoisOrg

_LOG = get_logger("longitudinal.evolution")


@dataclass
class YearSnapshot:
    """One historical year's view of the world."""

    year: int
    whois: WhoisDataset
    pdb: PDBSnapshot
    web: SimulatedWeb
    ground_truth: GroundTruth
    #: Brands whose acquisition had not yet happened as of this year.
    pending_brand_ids: Tuple[str, ...] = ()


@dataclass
class SnapshotSeries:
    """A chronological sequence of snapshots from one universe."""

    universe: Universe
    snapshots: List[YearSnapshot] = field(default_factory=list)

    @property
    def years(self) -> List[int]:
        return [s.year for s in self.snapshots]

    def final(self) -> YearSnapshot:
        return self.snapshots[-1]


def _acquisition_years(universe: Universe) -> Dict[str, int]:
    """brand_id → year it joined its current org (from the timeline).

    Random orgs' events name brand ids directly; canonical events name
    legacy org ids (e.g. ``gt-sprint-legacy``), so acquired canonical
    brands fall back to their org's earliest acquisition year.  Only
    valid brand ids appear in the result.
    """
    valid_brand_ids = {
        brand.brand_id for brand in universe.ground_truth.all_brands()
    }
    years: Dict[str, int] = {}
    for event in universe.timeline:
        if (
            event.kind in (EventKind.ACQUISITION, EventKind.MERGER)
            and event.object_id in valid_brand_ids
        ):
            years[event.object_id] = event.year
    for org in universe.ground_truth.all_orgs():
        for brand in org.brands:
            if brand.acquired and brand.brand_id not in years:
                matching = [
                    e.year for e in universe.timeline.involving(org.org_id)
                    if e.kind in (EventKind.ACQUISITION, EventKind.MERGER)
                ]
                years[brand.brand_id] = min(matching) if matching else 2015
    return years


def build_snapshot_series(
    universe: Universe,
    years: Optional[Sequence[int]] = None,
) -> SnapshotSeries:
    """Materialize as-of-year views of *universe*.

    Default years span the timeline from just before the first event to
    just after the last, in 4 steps, plus the present (all events done).
    """
    acquisition_years = _acquisition_years(universe)
    if years is None:
        event_years = sorted(set(acquisition_years.values())) or [2015]
        first, last = event_years[0] - 1, event_years[-1] + 1
        span = max(1, last - first)
        years = sorted(
            {first, first + span // 3, first + 2 * span // 3, last}
        )
    series = SnapshotSeries(universe=universe)
    for year in years:
        series.snapshots.append(
            _as_of_year(universe, year, acquisition_years)
        )
    return series


def _as_of_year(
    universe: Universe, year: int, acquisition_years: Dict[str, int]
) -> YearSnapshot:
    pending = {
        brand_id
        for brand_id, event_year in acquisition_years.items()
        if event_year > year
    }
    pending_brands: List[Brand] = [
        brand
        for brand in universe.ground_truth.all_brands()
        if brand.brand_id in pending
    ]
    pending_asns: Set[ASN] = set()
    for brand in pending_brands:
        pending_asns.update(brand.asns)

    ground_truth = _split_ground_truth(universe.ground_truth, pending)
    whois = _split_whois(universe, pending_brands)
    pdb = _split_pdb(universe, pending_brands, pending_asns)
    web = _rewind_web(universe, pending_brands)
    return YearSnapshot(
        year=year,
        whois=whois,
        pdb=pdb,
        web=web,
        ground_truth=ground_truth,
        pending_brand_ids=tuple(sorted(pending)),
    )


def _split_ground_truth(
    ground_truth: GroundTruth, pending: Set[str]
) -> GroundTruth:
    """Clone the truth with not-yet-acquired brands as their own orgs."""
    result = GroundTruth()
    for org in ground_truth.all_orgs():
        kept = [b for b in org.brands if b.brand_id not in pending]
        split = [b for b in org.brands if b.brand_id in pending]
        if kept:
            clone = dataclasses.replace(org)
            clone.brands = kept
            result.add(clone)
        for brand in split:
            independent = Org(
                org_id=f"{org.org_id}::pre::{brand.brand_id.split('/')[-1]}",
                name=brand.name,
                category=org.category,
                region=org.region,
                brand_token=brand.name.split()[0].lower(),
            )
            standalone = dataclasses.replace(brand, acquired=False)
            standalone.org_id = independent.org_id
            independent.brands = [standalone]
            result.add(independent)
    return result


def _split_whois(
    universe: Universe, pending_brands: List[Brand]
) -> WhoisDataset:
    """Give each pending brand its own WHOIS org where it shared one."""
    whois = universe.whois
    orgs: Dict[str, WhoisOrg] = dict(whois.orgs)
    delegations: Dict[ASN, ASNDelegation] = dict(whois.delegations)
    for brand in pending_brands:
        member_orgs = {delegations[a].org_id for a in brand.asns}
        org_asns = universe.ground_truth.orgs[brand.org_id].asns
        shared = any(
            delegations[other].org_id in member_orgs
            for other in org_asns
            if other not in brand.asns
        )
        if not shared:
            continue
        handle = f"WO-PRE-{brand.brand_id.replace('/', '-').upper()}"
        source = delegations[brand.primary_asn].source
        orgs[handle] = WhoisOrg(
            org_id=handle, name=brand.name,
            country=brand.country, source=source,
        )
        for asn in brand.asns:
            delegations[asn] = dataclasses.replace(
                delegations[asn], org_id=handle
            )
    return WhoisDataset.build(orgs.values(), delegations.values())


_ASN_TOKEN_TEMPLATE = r"(?:,?\s*(?:and\s+)?)?\bAS[N]?[\s:#-]{{0,2}}{asn}\b"


def _scrub_asn_mentions(text: str, asns: Set[ASN]) -> str:
    """Remove mentions of *asns* from free text (future siblings)."""
    for asn in asns:
        text = re.sub(_ASN_TOKEN_TEMPLATE.format(asn=asn), "", text)
    return text


def _split_pdb(
    universe: Universe, pending_brands: List[Brand], pending_asns: Set[ASN]
) -> PDBSnapshot:
    """Split pending brands into their own PDB orgs; scrub stale notes."""
    pdb = universe.pdb
    orgs: Dict[int, Organization] = {
        o.org_id: o for o in pdb.organizations()
    }
    next_org_id = max(orgs) + 1 if orgs else 1
    org_of_brand: Dict[str, int] = {}
    nets: List[Network] = []
    for net in pdb.networks():
        record = net
        if net.asn in pending_asns:
            brand = universe.ground_truth.brand_of_asn(net.asn)
            members = pdb.org_members().get(net.org_id, [])
            outside = [a for a in members if a not in set(brand.asns)]
            if outside:
                if brand.brand_id not in org_of_brand:
                    orgs[next_org_id] = Organization(
                        org_id=next_org_id,
                        name=brand.name,
                        country=brand.country,
                    )
                    org_of_brand[brand.brand_id] = next_org_id
                    next_org_id += 1
                record = dataclasses.replace(
                    record, org_id=org_of_brand[brand.brand_id]
                )
        scrub = pending_asns - {record.asn}
        if net.asn in pending_asns:
            # The pending brand itself had not written sibling reports
            # about its future parent either: scrub the parent org's
            # other ASNs from its own record.
            brand = universe.ground_truth.brand_of_asn(net.asn)
            org_asns = set(universe.ground_truth.orgs[brand.org_id].asns)
            scrub |= org_asns - set(brand.asns)
        if record.freeform_text and any(
            str(a) in record.freeform_text for a in scrub
        ):
            record = dataclasses.replace(
                record,
                notes=_scrub_asn_mentions(record.notes, scrub),
                aka=_scrub_asn_mentions(record.aka, scrub),
            )
        nets.append(record)
    meta = dict(pdb.meta)
    return PDBSnapshot.build(orgs.values(), nets, meta=meta)


def _rewind_web(
    universe: Universe, pending_brands: List[Brand]
) -> SimulatedWeb:
    """Clone the web; pending brands' sites serve their own pages again."""
    web = SimulatedWeb()
    rewound_hosts = {
        b.website_host: b for b in pending_brands if b.website_host
    }
    for site in universe.web.sites():
        clone = Site(
            host=site.host,
            title=site.title,
            redirect_kind=site.redirect_kind,
            redirect_target=site.redirect_target,
            favicon=site.favicon,
            alive=site.alive,
        )
        brand = rewound_hosts.get(site.host)
        if brand is not None:
            clone.redirect_kind = RedirectKind.NONE
            clone.redirect_target = ""
            token = brand.name.split()[0].lower() or "brand"
            clone.favicon = make_favicon(f"{token}-pre-acquisition")
            clone.alive = True
        web.add_site(clone)
    return web


# -- study runner -------------------------------------------------------------


@dataclass
class YearResult:
    """Borges's output for one historical year."""

    year: int
    mapping: OrgMapping
    theta: float
    org_count: int


@dataclass
class MergeEvent:
    """Organizations of year t that united into one by year t+1."""

    year_from: int
    year_to: int
    merged_cluster: Cluster
    prior_components: Tuple[Cluster, ...]


@dataclass
class EvolutionReport:
    """The longitudinal study's full output."""

    results: List[YearResult] = field(default_factory=list)
    merges: List[MergeEvent] = field(default_factory=list)

    def theta_series(self) -> Tuple[List[int], List[float]]:
        return (
            [r.year for r in self.results],
            [r.theta for r in self.results],
        )

    def org_count_series(self) -> Tuple[List[int], List[int]]:
        return (
            [r.year for r in self.results],
            [r.org_count for r in self.results],
        )


def detect_merges(
    earlier: OrgMapping, later: OrgMapping, year_from: int, year_to: int
) -> List[MergeEvent]:
    """Clusters of *later* composed of several *earlier* clusters.

    Only ASNs present in both snapshots participate (new allocations are
    not merges).
    """
    events: List[MergeEvent] = []
    for cluster in later.multi_asn_clusters():
        shared = [a for a in cluster if a in earlier]
        if len(shared) < 2:
            continue
        components: Set[Cluster] = set()
        for asn in shared:
            components.add(earlier.cluster_of(asn))
        if len(components) > 1:
            events.append(
                MergeEvent(
                    year_from=year_from,
                    year_to=year_to,
                    merged_cluster=cluster,
                    prior_components=tuple(
                        sorted(components, key=lambda c: (-len(c), min(c)))
                    ),
                )
            )
    events.sort(key=lambda e: (-len(e.merged_cluster), min(e.merged_cluster)))
    return events


def run_longitudinal_study(
    series: SnapshotSeries,
) -> EvolutionReport:
    """Run Borges on every snapshot and diff consecutive mappings."""
    report = EvolutionReport()
    previous: Optional[YearResult] = None
    for snapshot in series.snapshots:
        pipeline = BorgesPipeline(snapshot.whois, snapshot.pdb, snapshot.web)
        mapping = pipeline.run().mapping
        result = YearResult(
            year=snapshot.year,
            mapping=mapping,
            theta=org_factor_from_mapping(mapping),
            org_count=len(mapping),
        )
        _LOG.info(
            "year %d: theta=%.4f orgs=%d", result.year, result.theta,
            result.org_count,
        )
        if previous is not None:
            report.merges.extend(
                detect_merges(
                    previous.mapping, mapping, previous.year, result.year
                )
            )
        report.results.append(result)
        previous = result
    return report
