"""Model-comparison bench: mapping quality across the simulated LLM zoo.

Extension of the paper's conclusion ("alternative models ... such as
Meta's Llama and DeepSeek's R1").  Asserts the expected dose-response:
better model tier → better extraction accuracy → equal-or-better mapping
precision, with the paper's GPT-4o-mini anchor sitting mid-pack.
"""

from repro.analysis.model_comparison import model_comparison_table
from repro.experiments.report import render_table


def test_model_comparison(benchmark, ctx):
    rows = benchmark.pedantic(
        lambda: model_comparison_table(ctx), rounds=1, iterations=1
    )
    print()
    print(render_table(rows))

    by_model = {str(row["model"]): row for row in rows}
    anchor = by_model["gpt-4o-mini-sim"]
    frontier = by_model["gpt-4o-sim"]
    reasoning = by_model["deepseek-r1-sim"]
    small = by_model["llama-3-8b-sim"]

    # Extraction accuracy tracks the model tier.
    assert reasoning["extract_accuracy"] >= anchor["extract_accuracy"]
    assert frontier["extract_accuracy"] >= anchor["extract_accuracy"]
    assert small["extract_accuracy"] < anchor["extract_accuracy"]

    # Noisier models pay in mapping precision.
    assert small["pair_precision"] <= anchor["pair_precision"] + 1e-9

    # Every tier still beats the AS2Org baseline on theta.
    from repro.metrics import org_factor_from_mapping

    baseline = org_factor_from_mapping(ctx.as2org)
    for row in rows:
        assert row["theta"] > baseline

    # Dose-response across the whole zoo: measured extraction accuracy
    # anti-correlates with the profiles' error rates (Spearman).
    from scipy.stats import spearmanr

    from repro.llm.model_zoo import MODEL_ZOO

    error_rates = [
        MODEL_ZOO[str(row["model"])].extraction_error_rate for row in rows
    ]
    accuracies = [float(row["extract_accuracy"]) for row in rows]
    rho, _p = spearmanr(error_rates, accuracies)
    print(f"\nspearman(profile error rate, measured accuracy) = {rho:.3f}")
    assert rho < -0.6
