"""Headless-browser analogue: resolve final URLs through R&R chains.

This is the reproduction of §4.3.1's Selenium component.  Given a URL,
:class:`HeadlessScraper` follows HTTP 30x redirects and — because a real
headless browser renders pages — meta-refresh and JavaScript redirects,
until it reaches a stable final URL.  A plain HTTP client (``browser
=False``) follows only the 30x hops, which is what the R&R ablation
compares against.

Fetches run under a :class:`~repro.resilience.policy.RetryPolicy`
(transient failures — timeouts, resets, 5xx — are retried with backoff)
behind per-host circuit breakers, and only *permanent* failures enter the
negative cache: a URL that failed transiently is re-attemptable on the
next ``resolve`` call instead of being remembered as dead forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..config import ResilienceConfig, ScraperConfig
from ..errors import CircuitOpenError, FetchError, URLError
from ..logutil import get_logger
from ..obs.registry import (
    DEFAULT_COUNT_BUCKETS,
    MetricsRegistry,
    get_registry,
)
from ..resilience.breaker import BreakerRegistry
from ..resilience.policy import RetryPolicy
from .http import HTTPResponse
from .simweb import SimulatedWeb
from .url import normalize_url, parse_url

_LOG = get_logger("web.scraper")


@dataclass(frozen=True)
class ScrapeResult:
    """Outcome of resolving one PeeringDB website URL."""

    requested_url: str
    final_url: Optional[str]
    chain: Tuple[str, ...]
    ok: bool
    error: str = ""
    #: Failed resolutions marked transient (timeouts, 5xx, open breaker)
    #: may succeed if re-attempted; permanent ones (NXDOMAIN, loops,
    #: HTTP 4xx final pages) will not.
    transient: bool = False

    @property
    def hops(self) -> int:
        """Number of redirect hops taken (0 = landed directly)."""
        return max(0, len(self.chain) - 1)

    @property
    def redirected(self) -> bool:
        return self.hops > 0


class HeadlessScraper:
    """Resolves URLs against a :class:`SimulatedWeb` (or compatible driver).

    The driver only needs a ``fetch(url) -> HTTPResponse`` method, so a
    real HTTP client can be substituted without touching Borges.
    """

    def __init__(
        self,
        web: SimulatedWeb,
        config: Optional[ScraperConfig] = None,
        browser: bool = True,
        registry: Optional[MetricsRegistry] = None,
        resilience: Optional[ResilienceConfig] = None,
    ) -> None:
        self._web = web
        self._config = (config or ScraperConfig()).validate()
        self._browser = browser
        self._registry = registry
        self._resilience = (resilience or ResilienceConfig()).validate()
        self._retry = RetryPolicy(
            attempts=self._resilience.web_attempts,
            base_delay=self._resilience.web_base_delay,
            max_delay=self._resilience.web_max_delay,
            multiplier=self._resilience.backoff_multiplier,
            jitter=self._resilience.backoff_jitter,
        )
        self._breakers = BreakerRegistry(
            failure_threshold=self._resilience.breaker_failure_threshold,
            recovery_seconds=self._resilience.breaker_recovery_seconds,
            half_open_max_calls=self._resilience.breaker_half_open_max_calls,
            registry=registry,
            prefix="web",
        )
        self._cache: Dict[str, ScrapeResult] = {}
        #: Transient failures live here, not in the permanent cache:
        #: resolving the same URL again re-attempts it.
        self._transient: Dict[str, ScrapeResult] = {}
        self.reattempts = 0

    @property
    def _metrics(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    @property
    def browser_mode(self) -> bool:
        return self._browser

    def breaker_states(self) -> Dict[str, str]:
        """Current per-host circuit states (only hosts that failed vary)."""
        return self._breakers.states()

    def resolve(self, url: str) -> ScrapeResult:
        """Follow *url* to its final destination.

        Never raises for web-level failures; the result's ``ok`` flag and
        ``error`` string report dead hosts, loops, bad URLs and non-2xx
        final pages — matching the paper's accounting of unreachable PDB
        websites.
        """
        try:
            start = normalize_url(url)
        except URLError as exc:
            return ScrapeResult(
                requested_url=url, final_url=None, chain=(), ok=False,
                error=f"bad url: {exc.reason}",
            )
        if start in self._cache:
            self._metrics.counter(
                "web_resolve_total", "URL resolutions", outcome="cached"
            ).inc()
            return self._cache[start]
        if start in self._transient:
            self.reattempts += 1
            self._metrics.counter(
                "web_resolve_total", "URL resolutions", outcome="reattempt"
            ).inc()
        result = self._resolve_chain(start)
        if result.ok or not result.transient:
            self._cache[start] = result
            self._transient.pop(start, None)
        else:
            self._transient[start] = result
        metrics = self._metrics
        metrics.counter(
            "web_resolve_total", "URL resolutions",
            outcome="ok" if result.ok else "error",
        ).inc()
        if result.ok:
            metrics.histogram(
                "web_redirect_hops", "redirect-chain depth per resolved URL",
                buckets=DEFAULT_COUNT_BUCKETS,
            ).observe(result.hops)
        return result

    def _resolve_chain(self, start: str) -> ScrapeResult:
        chain: List[str] = [start]
        seen = {start}
        current = start
        for _hop in range(self._config.max_redirect_hops):
            try:
                response = self._fetch_with_retry(current)
            except CircuitOpenError as exc:
                return ScrapeResult(
                    requested_url=start, final_url=None,
                    chain=tuple(chain), ok=False, error=str(exc),
                    transient=True,
                )
            except FetchError as exc:
                return ScrapeResult(
                    requested_url=start, final_url=None,
                    chain=tuple(chain), ok=False, error=exc.reason,
                    transient=exc.transient,
                )
            target = self._next_target(response)
            if target is None:
                if response.is_redirect:
                    return ScrapeResult(
                        requested_url=start, final_url=None,
                        chain=tuple(chain), ok=False,
                        error="redirect without location",
                    )
                if not response.ok:
                    # A 404/4xx landing page is a *failed* resolution, not
                    # a final website (the paper counts these unreachable).
                    return ScrapeResult(
                        requested_url=start, final_url=None,
                        chain=tuple(chain), ok=False,
                        error=f"http {response.status}",
                    )
                return ScrapeResult(
                    requested_url=start, final_url=current,
                    chain=tuple(chain), ok=True,
                )
            try:
                target = self._absolutize(current, target)
            except URLError as exc:
                return ScrapeResult(
                    requested_url=start, final_url=None,
                    chain=tuple(chain), ok=False,
                    error=f"bad redirect target: {exc.reason}",
                )
            if target in seen:
                return ScrapeResult(
                    requested_url=start, final_url=None,
                    chain=tuple(chain) + (target,), ok=False,
                    error="redirect loop",
                )
            seen.add(target)
            chain.append(target)
            current = target
        return ScrapeResult(
            requested_url=start, final_url=None, chain=tuple(chain),
            ok=False,
            error=f"redirect chain exceeded {self._config.max_redirect_hops} hops",
        )

    def _fetch_with_retry(self, url: str) -> HTTPResponse:
        """One page fetch under the retry policy and the host's breaker.

        5xx responses are treated as transient fetch failures (retried,
        counted against the breaker); an open breaker fails fast with
        :class:`~repro.errors.CircuitOpenError`.
        """
        try:
            host = parse_url(url).host
        except URLError:
            host = url
        breaker = self._breakers.breaker(host)
        metrics = self._metrics

        def attempt() -> HTTPResponse:
            if not breaker.allow():
                raise CircuitOpenError(breaker.name)
            metrics.counter(
                "web_fetch_total", "page fetches issued by the scraper"
            ).inc()
            try:
                response = self._web.fetch(url)
            except FetchError as exc:
                if exc.transient:
                    breaker.record_failure()
                raise
            if response.status >= 500:
                breaker.record_failure()
                raise FetchError(
                    url, f"server error {response.status}", transient=True
                )
            breaker.record_success()
            return response

        def on_retry(attempt_no: int, exc: BaseException, delay: float) -> None:
            metrics.counter(
                "web_fetch_retries_total", "transient fetch failures retried"
            ).inc()
            metrics.histogram(
                "web_backoff_seconds", "backoff slept before a fetch retry"
            ).observe(delay)
            _LOG.debug(
                "fetch %s failed (attempt %d/%d, retrying in %.3fs): %s",
                url, attempt_no, self._retry.attempts, delay, exc,
            )

        return self._retry.execute(attempt, key=host, on_retry=on_retry)

    def _next_target(self, response: HTTPResponse) -> Optional[str]:
        """Where the browser goes next, or ``None`` if the page is final."""
        if response.is_redirect:
            return response.location
        if not response.ok:
            return None
        if not self._browser:
            return None
        if self._config.follow_meta_refresh:
            target = response.meta_refresh_target()
            if target:
                return target
        if self._config.execute_javascript:
            target = response.javascript_target()
            if target:
                return target
        return None

    @staticmethod
    def _absolutize(base: str, target: str) -> str:
        """Resolve a possibly-relative redirect target against *base*."""
        if "://" in target:
            return normalize_url(target)
        if target.startswith("/"):
            parsed = parse_url(base)
            return normalize_url(f"{parsed.scheme}://{parsed.host}{target}")
        # Bare-host targets ("www.example.com") occur in sloppy headers.
        return normalize_url(target)

    # -- bulk helpers -------------------------------------------------------

    def resolve_many(self, urls: Iterable[str]) -> Dict[str, ScrapeResult]:
        """Resolve many URLs; keyed by the *raw* input string."""
        results: Dict[str, ScrapeResult] = {}
        for raw in urls:
            results[raw] = self.resolve(raw)
        return results

    def stats(self) -> Dict[str, int]:
        resolved = list(self._cache.values()) + list(self._transient.values())
        return {
            "resolved": len(resolved),
            "reachable": sum(1 for r in resolved if r.ok),
            "redirected": sum(1 for r in resolved if r.ok and r.redirected),
            "unique_final_urls": len(
                {r.final_url for r in resolved if r.final_url}
            ),
            "transient_failures": len(self._transient),
            "reattempts": self.reattempts,
            "breakers_tripped": self._breakers.open_count(),
        }
