"""Prometheus text-exposition rendering for a :class:`MetricsRegistry`.

Implements the subset of the format the registry's model needs: HELP/TYPE
headers, label escaping, and cumulative ``_bucket``/``_sum``/``_count``
series for histograms — enough for a scrape endpoint or a textfile
collector to ingest pipeline metrics verbatim.
"""

from __future__ import annotations

from typing import List, Mapping, Optional

from .registry import Histogram, MetricsRegistry, get_registry


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(labels: Mapping[str, str], extra: Optional[Mapping[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{name}="{_escape(str(value))}"' for name, value in sorted(merged.items())
    )
    return "{" + inner + "}"


def _format_number(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def render_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """Render *registry* (default: the global one) as Prometheus text."""
    registry = registry or get_registry()
    lines: List[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {_escape(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for key, child in sorted(family.children.items()):
            labels = dict(key)
            if isinstance(child, Histogram):
                bounds = [_format_number(b) for b in child.buckets] + ["+Inf"]
                for bound, count in zip(bounds, child.cumulative_counts()):
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_labels_text(labels, {'le': bound})} {count}"
                    )
                lines.append(
                    f"{family.name}_sum{_labels_text(labels)} "
                    f"{_format_number(child.sum)}"
                )
                lines.append(
                    f"{family.name}_count{_labels_text(labels)} {child.count}"
                )
            else:
                lines.append(
                    f"{family.name}{_labels_text(labels)} "
                    f"{_format_number(child.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")
