"""The Borges pipeline: a thin facade over the stage DAG.

:class:`BorgesPipeline` wires the four features (§3) over a WHOIS
dataset + PeeringDB snapshot + web driver, then delegates execution to
the declarative stage graph (:mod:`repro.core.stages`) driven by the
:class:`~repro.core.executor.StageExecutor`: topological order, cached
artifacts, concurrent independent stages, per-stage isolation.  The
result is a :class:`BorgesResult`: per-feature clusters (Table 3's
unit), the final consolidated :class:`~repro.core.mapping.OrgMapping`,
per-stage execution records, and module-level diagnostics.
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Mapping, Optional, Sequence

from ..config import (
    TABLE_FEATURE_ORDER,
    BorgesConfig,
    ExecutorConfig,
    ResilienceConfig,
)
from ..digest import dataset_digest, stable_digest
from ..errors import DataError
from ..llm.client import ChatClient
from ..llm.simulated import make_default_client
from ..logutil import get_logger
from ..obs.process import record_peak_rss
from ..obs.registry import DEFAULT_COUNT_BUCKETS, MetricsRegistry, get_registry
from ..obs.tracer import Tracer, get_tracer
from ..peeringdb import PDBSnapshot
from ..resilience.faults import (
    FaultInjector,
    FaultyWeb,
    resolve_fault_profile,
    shard_fault_decision,
)
from ..resilience.policy import RetryPolicy
from ..types import Cluster
from ..web.favicon import FaviconAPI
from ..web.scraper import HeadlessScraper
from ..web.simweb import SimulatedWeb
from ..whois import WhoisDataset
from .artifacts import ArtifactStore
from .executor import ExecutionOutcome, StageExecutor
from .mapping import OrgMapping
from .merge import merge_clusters, reduce_shard_clusters
from .ner import NERModule, NERRecordResult
from .partition import PartitionPlan, partition_universe
from .org_keys import oid_p_clusters, oid_w_clusters  # noqa: F401 - re-export
from .stages import (
    STAGE_FAVICONS,
    STAGE_MERGE,
    STAGE_NER_EXTRACT,
    STAGE_RR,
    STAGE_SCRAPE,
    StageContext,
    build_stage_graph,
    stage_clusters,
)
from .web_inference import (
    _FAVICON_STAT_FIELDS,
    WebInferenceModule,
    WebInferenceResult,
)

_LOG = get_logger("core.pipeline")


@dataclass(frozen=True)
class FeatureClusters:
    """One feature's output, plus the Table-3 accounting."""

    feature: str
    clusters: List[Cluster]

    @cached_property
    def asn_count(self) -> int:
        """Number of distinct ASNs the feature says anything about.

        Cached like :attr:`org_count`: the set union is O(total cluster
        size), and Table 3, the CLI summary and the manifest each read
        it — at 10^6 ASNs the repeated unions dominated profile time.
        """
        members = set()
        for cluster in self.clusters:
            members.update(cluster)
        return len(members)

    @cached_property
    def org_count(self) -> int:
        """Number of organizations after consolidating within the feature.

        Cached: the union-find pass is O(total cluster size) and callers
        (Table 3, the CLI summary, the manifest) read it repeatedly.
        """
        return len(merge_clusters([self.clusters]))


@dataclass
class BorgesResult:
    """Everything one pipeline run produced."""

    mapping: OrgMapping
    features: Dict[str, FeatureClusters] = field(default_factory=dict)
    ner_results: List[NERRecordResult] = field(default_factory=list)
    web_result: Optional[WebInferenceResult] = None
    #: Run-level accounting (LLM cache hits, scraper stats, NER counters)
    #: for the CLI summary and the telemetry manifest.
    diagnostics: Dict[str, object] = field(default_factory=dict)
    #: True when at least one enabled feature failed and the mapping was
    #: consolidated from the survivors only.
    degraded: bool = False
    #: feature name → one-line error, for every feature that failed.
    feature_errors: Dict[str, str] = field(default_factory=dict)
    #: Per-stage execution records (status, cache source, fingerprint,
    #: duration) in graph order — the DAG's own accounting.
    stage_records: List[Dict[str, object]] = field(default_factory=list)

    def feature_table(self) -> List[Dict[str, object]]:
        """Rows shaped like Table 3 (source, #ASes, #orgs).

        Row order comes from the canonical feature order in
        :data:`repro.config.TABLE_FEATURE_ORDER` — the same order that
        drives combo labels — not a second hard-coded list.
        """
        rows = []
        for name in TABLE_FEATURE_ORDER:
            feature = self.features.get(name)
            if feature is None:
                continue
            rows.append(
                {
                    "source": name,
                    "asns": feature.asn_count,
                    "orgs": feature.org_count,
                }
            )
        return rows


class BorgesPipeline:
    """Configured, reusable pipeline front-end.

    ``web`` may be any object accepted by :class:`HeadlessScraper` /
    :class:`FaviconAPI` (the simulated web offline; a real HTTP driver in
    production).  ``client`` defaults to the offline simulated LLM.

    ``artifact_store`` optionally shares one content-addressed cache
    across runs (and across pipelines — the Table-6 sweep reuses the
    scrape and NER artifacts across all 16 feature combinations).  When
    omitted, every :meth:`run` gets a fresh store — or a disk-backed one
    when ``config.executor.artifact_cache_dir`` is set.
    """

    def __init__(
        self,
        whois: WhoisDataset,
        pdb: PDBSnapshot,
        web: SimulatedWeb,
        config: Optional[BorgesConfig] = None,
        client: Optional[ChatClient] = None,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
        artifact_store: Optional[ArtifactStore] = None,
        metric_labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        self._whois = whois
        self._pdb = pdb
        self._config = (config or BorgesConfig()).validate()
        # Extra labels stamped on every stage counter/gauge and span
        # this pipeline emits (the sharded runner passes {"shard": i}).
        self._metric_labels: Dict[str, str] = {
            str(k): str(v) for k, v in (metric_labels or {}).items()
        }
        # Digests anchor artifact fingerprints; the web digest is taken
        # before any fault wrapper so chaos cannot silently change the
        # address of a clean artifact (the fault salt does that, loudly).
        self._dataset_digests = {
            "whois": dataset_digest(whois),
            "pdb": dataset_digest(pdb),
            "web": dataset_digest(web),
        }
        resilience = self._config.resilience
        self._fault_profile = resolve_fault_profile(resilience.fault_profile)
        self._fault_injector: Optional[FaultInjector] = None
        self._fingerprint_salt: Optional[Dict[str, object]] = None
        if self._fault_profile.active:
            # One shared injector across both flaky surfaces, so the
            # run's chaos is a pure function of (profile, fault_seed) and
            # the diagnostics see every injected fault in one tally.
            self._fault_injector = FaultInjector(
                self._fault_profile,
                seed=resilience.fault_seed,
                registry=registry,
            )
            web = FaultyWeb(web, self._fault_injector)
            # Artifacts computed amid injected faults must not collide
            # with clean ones: mix the chaos identity into every address.
            self._fingerprint_salt = {
                "fault_profile": self._fault_profile.name,
                "fault_seed": resilience.fault_seed,
            }
        self._client = client or make_default_client(
            self._config.llm,
            resilience=resilience,
            registry=registry,
            injector=self._fault_injector,
        )
        self._tracer = tracer
        self._registry = registry
        self._artifact_store = artifact_store
        self._scraper = HeadlessScraper(
            web, config=self._config.scraper, registry=registry,
            resilience=resilience,
        )
        self._favicon_api = FaviconAPI(web, registry=registry)
        self._ner = NERModule(self._client, self._config)
        self._web_module = WebInferenceModule(
            self._scraper, self._favicon_api, self._client, self._config,
            tracer=tracer, registry=registry,
        )

    @property
    def config(self) -> BorgesConfig:
        return self._config

    @property
    def client(self) -> ChatClient:
        return self._client

    @property
    def _spans(self) -> Tracer:
        return self._tracer if self._tracer is not None else get_tracer()

    @property
    def _metrics(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    # -- DAG plumbing ------------------------------------------------------

    def _stage_context(self) -> StageContext:
        return StageContext(
            whois=self._whois,
            pdb=self._pdb,
            config=self._config,
            client=self._client,
            ner=self._ner,
            web_module=self._web_module,
            tracer=self._tracer,
            registry=self._registry,
            dataset_digests=dict(self._dataset_digests),
        )

    def _run_store(self) -> ArtifactStore:
        if self._artifact_store is not None:
            return self._artifact_store
        cache_dir = self._config.executor.artifact_cache_dir
        if cache_dir:
            return ArtifactStore(root=cache_dir)
        return ArtifactStore()

    def _make_executor(
        self,
        store: ArtifactStore,
        stages: Optional[Sequence[str]] = None,
    ) -> StageExecutor:
        graph = build_stage_graph(self._config, targets=stages)
        # The fault injector's burst state depends on call order, so
        # chaos runs are forced sequential to stay a pure function of
        # (profile, seed).
        max_workers = (
            1
            if self._fault_injector is not None
            else self._config.executor.max_workers
        )
        return StageExecutor(
            graph,
            store,
            self._stage_context(),
            max_workers=max_workers,
            salt=self._fingerprint_salt,
            extra_labels=self._metric_labels,
        )

    def plan(
        self, stages: Optional[Sequence[str]] = None
    ) -> List[Dict[str, object]]:
        """The stage plan — order, dependencies, cache status — without
        executing anything (fingerprints are input-addressed)."""
        return self._make_executor(self._run_store(), stages).plan()

    def explain_plan(self, stages: Optional[Sequence[str]] = None) -> str:
        """Human-readable :meth:`plan`, for the CLI's ``--explain-plan``."""
        rows = self.plan(stages)
        width = max(len(r["stage"]) for r in rows)
        lines = ["stage".ljust(width) + "  cache   deps"]
        for row in rows:
            cached = row["cached"] or "miss"
            deps = ", ".join(row["deps"]) or "-"
            marker = "*" if row["backbone"] else " "
            lines.append(
                f"{row['stage'].ljust(width)}{marker} {cached:<7} {deps}"
                f"  [{row['fingerprint'][:12]}]"
            )
        lines.append("(* = backbone stage; failure aborts the run)")
        return "\n".join(lines)

    # -- execution ---------------------------------------------------------

    def run(self, stages: Optional[Sequence[str]] = None) -> BorgesResult:
        """Execute the stage DAG and consolidate the surviving features.

        *stages* optionally restricts the run to a stage subset plus its
        transitive dependencies and the backbone (the CLI's ``--stages``).
        """
        store = self._run_store()
        executor = self._make_executor(store, stages)
        with self._spans.span(
            "pipeline.run", features=sorted(self._config.features)
        ):
            outcome = executor.execute()
        return self._assemble_result(executor, outcome, store)

    def _assemble_result(
        self,
        executor: StageExecutor,
        outcome: ExecutionOutcome,
        store: ArtifactStore,
    ) -> BorgesResult:
        graph = executor.graph
        features: Dict[str, FeatureClusters] = {}
        failures: Dict[str, str] = {}
        for name, spec in graph.items():
            record = outcome.records[name]
            if spec.feature is None:
                continue
            if record.status in ("ok", "cached"):
                features[spec.feature] = FeatureClusters(
                    spec.feature, stage_clusters(outcome.values[name])
                )
            else:
                failures[spec.feature] = record.error

        ner_value = outcome.values.get(STAGE_NER_EXTRACT)
        ner_results: List[NERRecordResult] = (
            list(ner_value["records"]) if ner_value else []
        )
        web_result = self._assemble_web_result(outcome)
        mapping: OrgMapping = outcome.values[STAGE_MERGE]

        for name, feature in features.items():
            self._metrics.gauge(
                "pipeline_feature_clusters", "clusters emitted per feature",
                **dict(self._metric_labels, feature=name),
            ).set(len(feature.clusters))
        self._metrics.gauge(
            "pipeline_orgs", "organizations after consolidation",
            **self._metric_labels,
        ).set(len(mapping))
        self._metrics.gauge(
            "pipeline_degraded", "1 when the last run lost features",
            **self._metric_labels,
        ).set(1 if failures else 0)

        diagnostics = self._diagnostics(web_result, failures)
        diagnostics["artifact_cache"] = store.stats()
        diagnostics["peak_rss_bytes"] = record_peak_rss(self._metrics)
        return BorgesResult(
            mapping=mapping,
            features=features,
            ner_results=ner_results,
            web_result=web_result,
            diagnostics=diagnostics,
            degraded=bool(failures),
            feature_errors=dict(failures),
            stage_records=[r.to_dict() for r in outcome.records.values()],
        )

    def _assemble_web_result(
        self, outcome: ExecutionOutcome
    ) -> Optional[WebInferenceResult]:
        """Rebuild the legacy :class:`WebInferenceResult` view from the
        scrape/rr/favicons artifacts (diagnostics and evidence consumers
        still read it)."""
        scrape_value = outcome.values.get(STAGE_SCRAPE)
        if scrape_value is None:
            return None
        web_result = WebInferenceResult()
        web_result.final_url_of_asn = dict(scrape_value["final_url_of_asn"])
        for name, value in scrape_value["stats"].items():
            if hasattr(web_result.stats, name):
                setattr(web_result.stats, name, value)
        rr_value = outcome.values.get(STAGE_RR)
        if rr_value is not None:
            web_result.rr_clusters = list(rr_value["clusters"])
            web_result.stats.blocked_final_urls = rr_value["blocked_final_urls"]
        favicon_value = outcome.values.get(STAGE_FAVICONS)
        if favicon_value is not None:
            web_result.favicon_clusters = list(favicon_value["clusters"])
            web_result.decisions = list(favicon_value["decisions"])
            for name in _FAVICON_STAT_FIELDS:
                setattr(
                    web_result.stats, name, getattr(favicon_value["stats"], name)
                )
        return web_result

    def _diagnostics(
        self,
        web_result: Optional[WebInferenceResult],
        failures: Optional[Dict[str, str]] = None,
    ) -> Dict[str, object]:
        diagnostics: Dict[str, object] = {
            "llm_cache": self._client.cache_stats(),
            "llm_requests": self._client.request_count,
            "scraper": self._scraper.stats(),
            "ner": dict(vars(self._ner.stats)),
        }
        if web_result is not None:
            diagnostics["web"] = dict(vars(web_result.stats))
        failures = failures or {}
        resilience: Dict[str, object] = {
            "fault_profile": self._fault_profile.name,
            "llm_breaker": self._client.breaker.state,
            "web_breakers": self._scraper.breaker_states(),
            "degraded": bool(failures),
            "feature_errors": dict(failures),
        }
        if self._fault_injector is not None:
            resilience["faults_injected"] = self._fault_injector.stats()
        diagnostics["resilience"] = resilience
        return diagnostics

    def build_mapping(
        self, features: Dict[str, FeatureClusters]
    ) -> OrgMapping:
        """Consolidate feature clusters over the WHOIS universe."""
        all_clusters: List[Cluster] = []
        for feature in features.values():
            all_clusters.extend(feature.clusters)
        org_names = {
            asn: self._whois.org_name_of(asn) for asn in self._whois.asns()
        }
        label = "borges[" + ",".join(sorted(self._config.features)) + "]"
        return OrgMapping(
            universe=self._whois.asns(),
            clusters=all_clusters,
            method=label,
            org_names=org_names,
        )


# -- sharded execution ---------------------------------------------------------


#: Per-attempt watchdog deadline applied when a hang-injecting fault
#: profile is active and the caller did not pick one — without it a
#: sleep-forever shard would block the run for ``shard_hang_seconds``.
DEFAULT_HANG_DEADLINE = 15.0


@dataclass
class ShardedBorgesResult(BorgesResult):
    """A sharded run's combined result.

    Quacks like :class:`BorgesResult` (mapping, features, Table-3 rows,
    diagnostics, stage records — the latter carrying a ``shard`` key per
    record) and additionally exposes the partition plan and every
    shard's own :class:`BorgesResult`, plus the fault posture of the
    run: which shards were quarantined, which were answered from the
    run checkpoint, and what every executed shard's attempts looked
    like.
    """

    partition: Optional[PartitionPlan] = None
    shard_results: List[BorgesResult] = field(default_factory=list)
    #: Shard indices quarantined after exhausting their retry budget;
    #: their ASNs are absent from the (degraded) mapping.
    failed_shards: List[int] = field(default_factory=list)
    #: One record per *executed* shard (ok or quarantined, not resumed):
    #: attempts, retries, exit reason, duration, heartbeats.
    shard_attempts: List[Dict[str, object]] = field(default_factory=list)
    #: Shard indices answered from the run checkpoint instead of executed.
    resumed_shards: List[int] = field(default_factory=list)

    def shard_posture(self) -> Dict[str, object]:
        """Compact fault posture for ``/healthz`` and ``borges top``."""
        total = len(self.partition.shards) if self.partition else 0
        return {
            "shards": total,
            "ok": total - len(self.failed_shards),
            "failed": list(self.failed_shards),
            "resumed": list(self.resumed_shards),
            "retries": sum(
                int(record.get("retries", 0)) for record in self.shard_attempts
            ),
            "degraded": self.degraded,
        }


def run_sharded(
    whois: WhoisDataset,
    pdb: PDBSnapshot,
    web: SimulatedWeb,
    config: Optional[BorgesConfig] = None,
    n_shards: int = 2,
    *,
    stages: Optional[Sequence[str]] = None,
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
    artifact_store: Optional[ArtifactStore] = None,
    shard_workers: str = "thread",
    shard_retries: int = 1,
    shard_deadline: Optional[float] = None,
    heartbeat_interval: float = 0.2,
    checkpoint_path: Optional[object] = None,
    resume: bool = False,
) -> ShardedBorgesResult:
    """Run the pipeline sharded: partition → N stage DAGs → reduce.

    The dataset is split into closed, balanced shards (see
    :mod:`repro.core.partition`); one :class:`BorgesPipeline` per shard
    runs the ordinary stage DAG over ``whois``/``pdb`` restricted to the
    shard's ASNs (the full web stays shared — it is read-only), all
    shards feeding one :class:`ArtifactStore`.  Restricted-dataset
    digests give every shard its own stage fingerprints, so warm re-runs
    stay incremental per shard.  The final reduce unions the per-shard
    cluster lists (:func:`~repro.core.merge.reduce_shard_clusters` —
    associative, hence exact) into one mapping over the full universe;
    because the partition is closed, that mapping is byte-identical to
    the unsharded one *when every shard succeeded*.

    **Fault tolerance.**  Shards run under the supervised fan-out
    (:func:`~repro.serve.shm.pool.run_supervised`): an attempt that
    raises, crashes its forked child, or outlives *shard_deadline*
    seconds (process mode: SIGKILL; thread mode: the watchdog abandons
    the attempt) is retried up to *shard_retries* more times with
    seeded-jitter backoff.  A shard that exhausts its budget is
    *quarantined*: the run completes ``degraded`` over the survivors,
    whose union is the salvaged mapping — restricted to the surviving
    shards' ASNs, because the run knows nothing about the dead ones.
    Only a run that loses *every* shard raises.

    **Crash-safe resume.**  With *checkpoint_path*, every completed
    shard's cluster lists are journaled as they land (digest-chained,
    fsynced — see :mod:`repro.core.checkpoint`); with *resume* also
    set, shards already journaled for the same run identity are
    answered from the checkpoint instead of executed, so a crashed or
    degraded run converges to the clean byte-identical mapping by
    re-running only what's missing.

    Shards run concurrently, bounded by ``config.executor.max_workers``,
    except under an active fault profile, where shards run sequentially
    (each shard's pipeline is already sequential under chaos) so
    injected faults remain a pure function of the profile and seed.
    Shard-surface chaos (``shard-crash``/``shard-hang``/``shard-flaky``)
    is drawn in the parent via
    :func:`~repro.resilience.faults.shard_fault_decision` and acted out
    inside the shard attempt, identically across both worker modes.

    *shard_workers* selects the concurrency substrate: ``"thread"``
    (default) shares one process; ``"process"`` forks one child per
    shard, escaping the GIL for CPU-bound stages.  The reduce is
    associative and the partition closed, so the combined mapping is
    byte-identical across modes; process mode trades away shard spans
    in the parent tracer and in-memory artifact-cache sharing (a
    disk-backed cache dir is shared fine).
    """
    if shard_workers not in ("thread", "process"):
        raise ValueError(
            "shard_workers must be 'thread' or 'process', "
            f"got {shard_workers!r}"
        )
    if shard_retries < 0:
        raise ValueError(f"shard_retries must be >= 0, got {shard_retries}")
    config = (config or BorgesConfig()).validate()
    spans = tracer if tracer is not None else get_tracer()
    metrics = registry if registry is not None else get_registry()
    store = artifact_store
    if store is None:
        cache_dir = config.executor.artifact_cache_dir
        store = ArtifactStore(root=cache_dir) if cache_dir else ArtifactStore()

    from ..serve.shm.pool import run_supervised
    from .checkpoint import RunCheckpoint, run_identity

    profile = resolve_fault_profile(config.resilience.fault_profile)
    fault_active = profile.active
    seed = config.resilience.fault_seed
    if shard_deadline is None and profile.shard_hang > 0.0:
        shard_deadline = DEFAULT_HANG_DEADLINE

    with spans.span("pipeline.sharded", shards=n_shards):
        with spans.span("pipeline.partition"):
            plan = partition_universe(whois, pdb, web, n_shards)
        metrics.gauge(
            "pipeline_shards", "shards in the last sharded run"
        ).set(len(plan.shards))

        # -- checkpoint / resume -------------------------------------------
        checkpoint: Optional[RunCheckpoint] = None
        completed: Dict[int, Dict[str, object]] = {}
        if checkpoint_path is not None:
            # The identity normalises resilience/executor config away:
            # chaos profiles and worker counts change how a run executes,
            # never what it computes, so a checkpoint written under
            # faults is resumable by the clean re-run.
            identity = run_identity(
                {
                    "whois": dataset_digest(whois),
                    "pdb": dataset_digest(pdb),
                    "web": dataset_digest(web),
                },
                stable_digest(
                    dataclasses.replace(
                        config,
                        resilience=ResilienceConfig(),
                        executor=ExecutorConfig(),
                    )
                ),
                len(plan.shards),
                stages or (),
            )
            checkpoint = RunCheckpoint(checkpoint_path)
            if not resume:
                checkpoint.reset()
            completed = {
                index: fields
                for index, fields in checkpoint.begin(
                    identity, len(plan.shards)
                ).items()
                if 0 <= index < len(plan.shards)
            }
        resumed = sorted(completed)
        to_run = [s.index for s in plan.shards if s.index not in completed]

        pipelines: Dict[int, BorgesPipeline] = {}
        for shard in plan.shards:
            if shard.index not in to_run:
                continue
            with spans.span("pipeline.shard_datasets", shard=shard.index):
                shard_whois = whois.restricted_to(shard.asns)
                shard_pdb = pdb.restricted_to(shard.asns)
            pipelines[shard.index] = BorgesPipeline(
                shard_whois,
                shard_pdb,
                web,
                config,
                tracer=tracer,
                registry=registry,
                artifact_store=store,
                metric_labels={"shard": str(shard.index)},
            )

        workers = (
            1
            if fault_active or len(to_run) <= 1
            else min(len(to_run), max(1, config.executor.max_workers))
        )

        def run_one(index: int):
            start = time.perf_counter()
            with spans.span("pipeline.shard", shard=index):
                result = pipelines[index].run(stages=stages)
            return result, time.perf_counter() - start

        def make_thunk(index: int):
            def thunk(attempt: int):
                fault = (
                    shard_fault_decision(profile, seed, index, attempt)
                    if fault_active
                    else None
                )
                if fault == "crash":
                    if shard_workers == "process":
                        # Die the way a real shard dies: no exception, no
                        # report, just a vanished child.
                        os._exit(23)
                    raise RuntimeError(
                        f"shard {index}: injected fault: crashed on "
                        f"attempt {attempt}"
                    )
                if fault == "hang":
                    time.sleep(profile.shard_hang_seconds)
                    raise RuntimeError(
                        f"shard {index}: injected fault: hung on "
                        f"attempt {attempt}"
                    )
                try:
                    return run_one(index)
                except Exception as exc:
                    # Attach the shard index: a bare exception out of a
                    # worker loses which shard raised it.
                    raise RuntimeError(
                        f"shard {index}: {type(exc).__name__}: {exc}"
                    ) from exc

            return thunk

        def on_outcome(outcome) -> None:
            # Journal each completed shard as it lands (not at the end):
            # that is what makes a mid-run crash resumable.
            if checkpoint is None or not outcome.ok:
                return
            shard_index = to_run[outcome.index]
            result, duration = outcome.value
            checkpoint.record_shard(
                shard_index,
                merged=result.mapping.clusters(),
                features={
                    name: feature.clusters
                    for name, feature in result.features.items()
                },
                duration_seconds=duration,
            )

        outcomes = []
        if to_run:
            outcomes = run_supervised(
                [make_thunk(index) for index in to_run],
                max_workers=workers,
                mode=shard_workers,
                deadline=shard_deadline,
                retries=shard_retries,
                retry_policy=RetryPolicy(
                    attempts=shard_retries + 1,
                    base_delay=0.05,
                    max_delay=1.0,
                    seed=seed,
                ),
                heartbeat_interval=heartbeat_interval,
                on_outcome=on_outcome,
            )

        # -- collect outcomes: survivors, quarantine, attempt records ------
        shard_result_map: Dict[int, BorgesResult] = {}
        duration_map: Dict[int, float] = {}
        failed_shards: List[int] = []
        attempt_records: List[Dict[str, object]] = []
        quarantine_notes: Dict[str, str] = {}
        retry_total = 0
        for position, outcome in enumerate(outcomes):
            shard_index = to_run[position]
            record = dict(outcome.to_json(), shard=shard_index)
            record.pop("index", None)
            attempt_records.append(record)
            retry_total += outcome.retries
            if outcome.retries:
                metrics.counter(
                    "pipeline_shard_retries_total",
                    "shard attempts retried after a failure",
                ).inc(outcome.retries)
            metrics.histogram(
                "pipeline_shard_attempts",
                "attempts needed per shard in a sharded run",
                buckets=DEFAULT_COUNT_BUCKETS,
                shard=str(shard_index),
            ).observe(float(outcome.attempts))
            if outcome.ok:
                result, duration = outcome.value
                shard_result_map[shard_index] = result
                duration_map[shard_index] = duration
            else:
                failed_shards.append(shard_index)
                metrics.counter(
                    "pipeline_shard_quarantined_total",
                    "shards quarantined after exhausting their retries",
                ).inc()
                quarantine_notes[f"shard:{shard_index}"] = (
                    f"quarantined after {outcome.attempts} attempts "
                    f"({outcome.exit_reason}): {outcome.error}"
                )
        if not shard_result_map and not completed:
            errors = "; ".join(sorted(quarantine_notes.values())) or "no shards ran"
            raise DataError(
                f"sharded run lost all {len(plan.shards)} shards; "
                f"nothing to salvage ({errors})"
            )

        # -- reduce over survivors + resumed shards ------------------------
        features: Dict[str, FeatureClusters] = {}
        failures: Dict[str, str] = {}
        resumed_features = {
            index: RunCheckpoint.shard_feature_clusters(fields)
            for index, fields in completed.items()
        }
        for name in TABLE_FEATURE_ORDER:
            clusters: List[Cluster] = []
            present = False
            for shard in plan.shards:
                if shard.index in shard_result_map:
                    feature = shard_result_map[shard.index].features.get(name)
                    if feature is not None:
                        present = True
                        clusters.extend(feature.clusters)
                elif shard.index in resumed_features:
                    recorded = resumed_features[shard.index].get(name)
                    if recorded is not None:
                        present = True
                        clusters.extend(recorded)
            if present:
                features[name] = FeatureClusters(name, clusters)
        for shard_index in sorted(shard_result_map):
            for name, error in shard_result_map[shard_index].feature_errors.items():
                note = f"shard {shard_index}: {error}"
                failures[name] = (
                    failures[name] + "; " + note if name in failures else note
                )
        failures.update(quarantine_notes)

        with spans.span("pipeline.reduce"):
            cluster_lists: List[List[Cluster]] = []
            for shard in plan.shards:
                if shard.index in shard_result_map:
                    cluster_lists.append(
                        shard_result_map[shard.index].mapping.clusters()
                    )
                elif shard.index in completed:
                    cluster_lists.append(
                        RunCheckpoint.shard_clusters(completed[shard.index])
                    )
            reduced = reduce_shard_clusters(cluster_lists)
            if failed_shards:
                # Salvage: the mapping covers only the surviving shards'
                # ASNs.  Padding dead shards with singletons would claim
                # knowledge the run does not have.
                failed_set = set(failed_shards)
                universe = sorted(
                    asn
                    for shard in plan.shards
                    if shard.index not in failed_set
                    for asn in shard.asns
                )
            else:
                universe = whois.asns()
            org_names = {asn: whois.org_name_of(asn) for asn in universe}
            label = "borges[" + ",".join(sorted(config.features)) + "]"
            mapping = OrgMapping(
                universe=universe,
                clusters=reduced,
                method=label,
                org_names=org_names,
            )

        metrics.gauge(
            "pipeline_orgs", "organizations after consolidation"
        ).set(len(mapping))
        metrics.gauge(
            "pipeline_degraded", "1 when the last run lost features"
        ).set(1 if failures else 0)
        metrics.gauge(
            "pipeline_shards_failed",
            "shards quarantined in the last sharded run",
        ).set(len(failed_shards))
        metrics.gauge(
            "pipeline_shards_resumed",
            "shards answered from the run checkpoint in the last run",
        ).set(len(resumed))
        if failed_shards:
            metrics.counter(
                "pipeline_shards_salvaged_total",
                "surviving shards reduced into a degraded mapping",
            ).inc(len(cluster_lists))

        # -- per-shard accounting ------------------------------------------
        stage_records: List[Dict[str, object]] = []
        shard_sections: List[Dict[str, object]] = []
        llm_requests = 0
        attempts_by_shard = {
            int(record["shard"]): record for record in attempt_records
        }
        for shard in plan.shards:
            index = shard.index
            section: Dict[str, object] = {
                "shard": index,
                "asns": len(shard),
                "components": shard.components,
            }
            if index in shard_result_map:
                result = shard_result_map[index]
                for record in result.stage_records:
                    stage_records.append(dict(record, shard=index))
                llm_requests += int(result.diagnostics.get("llm_requests", 0))
                section.update(
                    status="ok",
                    duration_seconds=round(duration_map[index], 6),
                    llm_requests=result.diagnostics.get("llm_requests", 0),
                    degraded=result.degraded,
                    attempts=attempts_by_shard.get(index, {}).get("attempts", 1),
                )
            elif index in completed:
                section.update(
                    status="resumed",
                    duration_seconds=float(
                        completed[index].get("duration_seconds", 0.0)
                    ),
                    llm_requests=0,
                    degraded=False,
                    attempts=0,
                )
            else:
                record = attempts_by_shard.get(index, {})
                section.update(
                    status="quarantined",
                    duration_seconds=round(
                        float(record.get("duration_seconds", 0.0)), 6
                    ),
                    llm_requests=0,
                    degraded=True,
                    attempts=record.get("attempts", 0),
                    error=record.get("error", ""),
                )
            shard_sections.append(section)
        fault_tolerance: Dict[str, object] = {
            "profile": profile.name,
            "shard_retries": shard_retries,
            "shard_deadline": shard_deadline,
            "retry_total": retry_total,
            "attempts": attempt_records,
            "failed_shards": sorted(failed_shards),
            "salvaged_shards": (
                sorted(set(shard_result_map) | set(completed))
                if failed_shards
                else []
            ),
            "resumed_shards": resumed,
        }
        if checkpoint is not None:
            fault_tolerance["checkpoint"] = checkpoint.stats()
        diagnostics: Dict[str, object] = {
            "partition": plan.summary(),
            "shards": shard_sections,
            "llm_requests": llm_requests,
            "artifact_cache": store.stats(),
            "peak_rss_bytes": record_peak_rss(metrics),
            "fault_tolerance": fault_tolerance,
        }

    return ShardedBorgesResult(
        mapping=mapping,
        features=features,
        diagnostics=diagnostics,
        degraded=bool(failures),
        feature_errors=failures,
        stage_records=stage_records,
        partition=plan,
        shard_results=[
            shard_result_map[index] for index in sorted(shard_result_map)
        ],
        failed_shards=sorted(failed_shards),
        shard_attempts=attempt_records,
        resumed_shards=resumed,
    )
