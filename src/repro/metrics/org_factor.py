"""The Organization Factor θ (§5.4, Eq. 1).

θ measures how strongly a mapping groups networks: 0 when every
organization manages a single network, 1 when one organization manages
all of them.  Construction: sort organization sizes descending, take the
cumulative sum C_i (zero-padded to the number of networks n), and measure
the normalized area between the cumulative curve and the
all-singletons diagonal C_i = i.

Normalizations
--------------
``"normalized"`` (default)::

    θ = Σ_{i=1..n} (C_i − i)  /  Σ_{i=1..n} (n − i)

This matches the prose (range [0, 1]; "normalized area under the
cumulative distribution curve") and the reported magnitudes.

``"paper_literal"``::

    θ = (1/n²) Σ_{i=1..n} (C_i − i)

Eq. (1) exactly as printed.  As DESIGN.md documents, this form cannot
reach the paper's own reported values (it is bounded by ≈0.19 for
AS2Org's published statistics and tops out near 0.5, not 1), so it is
provided only for completeness and ablation.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import ConfigError

NORMALIZATIONS = ("normalized", "paper_literal")


def _validate_sizes(sizes: Sequence[int]) -> List[int]:
    cleaned = [int(s) for s in sizes]
    if any(s < 0 for s in cleaned):
        raise ValueError("organization sizes must be non-negative")
    return sorted((s for s in cleaned if s > 0), reverse=True)


def org_factor(
    sizes: Sequence[int],
    normalization: str = "normalized",
) -> float:
    """Compute θ from organization sizes (any order; zeros ignored).

    ``n`` — the number of networks — is ``sum(sizes)``: every network
    belongs to exactly one organization in the θ graph.
    """
    if normalization not in NORMALIZATIONS:
        raise ConfigError(
            f"unknown normalization {normalization!r}; pick from {NORMALIZATIONS}"
        )
    ordered = _validate_sizes(sizes)
    n = sum(ordered)
    if n <= 1:
        return 0.0
    area = 0
    cumulative = 0
    for i in range(1, n + 1):
        if i <= len(ordered):
            cumulative += ordered[i - 1]
        area += cumulative - i
    if normalization == "paper_literal":
        return area / (n * n)
    max_area = n * (n - 1) // 2  # Σ (n − i) for i = 1..n
    return area / max_area if max_area else 0.0


def org_factor_from_mapping(mapping, normalization: str = "normalized") -> float:
    """θ of an :class:`~repro.core.mapping.OrgMapping` (singletons included)."""
    return org_factor(mapping.sizes(), normalization=normalization)


def cumulative_curve(
    sizes: Sequence[int], pad_to: int = 0
) -> Tuple[List[int], List[int]]:
    """The (x, C) series Fig. 7 plots.

    x runs over organization index (descending size order), zero-padded
    to ``max(pad_to, n)`` so two methods over the same network set align.
    """
    ordered = _validate_sizes(sizes)
    n = max(sum(ordered), pad_to, len(ordered))
    xs: List[int] = []
    ys: List[int] = []
    cumulative = 0
    for i in range(1, n + 1):
        if i <= len(ordered):
            cumulative += ordered[i - 1]
        xs.append(i)
        ys.append(cumulative)
    return xs, ys


def singleton_curve(n: int) -> Tuple[List[int], List[int]]:
    """Fig. 7's reference: every organization manages a single network."""
    xs = list(range(1, n + 1))
    return xs, xs[:]
