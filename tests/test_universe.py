"""Unit tests for the universe generator and its building blocks."""

import pytest

from repro.config import TEST_UNIVERSE, UniverseConfig
from repro.errors import DataError
from repro.universe import generate_universe
from repro.universe.entities import Brand, GroundTruth, Org, OrgCategory
from repro.universe.events import EventKind, MnAEvent, Timeline
from repro.universe.names import NameForge, REGIONS
from repro.universe.notes_synth import NotesSynthesizer
from repro.universe.generator import SYNTHETIC_ASN_BASE


class TestNameForge:
    def test_company_names_unique(self):
        forge = NameForge(seed=1)
        names = {forge.company_name("access") for _ in range(500)}
        assert len(names) == 500

    def test_brand_tokens_unique(self):
        forge = NameForge(seed=1)
        tokens = {
            forge.brand_token(forge.company_name("access")) for _ in range(500)
        }
        assert len(tokens) == 500

    def test_reserved_tokens_never_assigned(self):
        forge = NameForge(seed=2)
        for _ in range(800):
            token = forge.brand_token(forge.company_name("transit"))
            assert token not in NameForge.RESERVED_TOKENS

    def test_deterministic_across_instances(self):
        a = NameForge(seed=3)
        b = NameForge(seed=3)
        assert [a.company_name("access") for _ in range(10)] == [
            b.company_name("access") for _ in range(10)
        ]

    def test_pick_countries_spills_into_neighbours(self):
        forge = NameForge(seed=4)
        pairs = forge.pick_countries("northam", 5)  # region only has 2
        assert len(pairs) == 5
        assert len(set(pairs)) == 5

    def test_regions_have_cctlds(self):
        for region, pairs in REGIONS.items():
            assert pairs, region
            for country, cctld in pairs:
                assert len(country) == 2
                assert cctld


class TestEntities:
    def make_org(self):
        org = Org(
            org_id="o1", name="Vega Telecom", category=OrgCategory.ACCESS,
            region="latam", is_conglomerate=True, brand_token="vega",
        )
        org.brands = [
            Brand(brand_id="o1/a", name="Vega AR", org_id="o1", country="AR",
                  cctld="com.ar", asns=[100, 101]),
            Brand(brand_id="o1/b", name="Vega CL", org_id="o1", country="CL",
                  cctld="cl", asns=[102]),
        ]
        return org

    def test_org_asns_sorted(self):
        assert self.make_org().asns == [100, 101, 102]

    def test_org_countries(self):
        assert self.make_org().countries == {"AR", "CL"}

    def test_brand_of(self):
        org = self.make_org()
        assert org.brand_of(102).brand_id == "o1/b"
        with pytest.raises(DataError):
            org.brand_of(999)

    def test_ground_truth_indexing(self):
        gt = GroundTruth()
        gt.add(self.make_org())
        assert gt.org_of_asn(101).org_id == "o1"
        assert gt.are_siblings(100, 102)
        assert gt.true_siblings(100) == frozenset({100, 101, 102})

    def test_ground_truth_rejects_shared_asn(self):
        gt = GroundTruth()
        gt.add(self.make_org())
        duplicate = Org(
            org_id="o2", name="Other", category=OrgCategory.ACCESS,
            region="latam",
        )
        duplicate.brands = [
            Brand(brand_id="o2/a", name="X", org_id="o2", country="AR",
                  cctld="com.ar", asns=[100]),
        ]
        gt.add(duplicate)
        with pytest.raises(DataError):
            gt.org_of_asn(100)

    def test_duplicate_org_id_rejected(self):
        gt = GroundTruth()
        gt.add(self.make_org())
        with pytest.raises(DataError):
            gt.add(self.make_org())

    def test_true_clusters_cover_all_asns(self):
        gt = GroundTruth()
        gt.add(self.make_org())
        clusters = gt.true_clusters()
        assert frozenset({100, 101, 102}) in clusters


class TestTimeline:
    def test_ordered_iteration(self):
        timeline = Timeline(
            events=[
                MnAEvent(EventKind.ACQUISITION, 2020, "a", "b"),
                MnAEvent(EventKind.MERGER, 2010, "a", "c"),
            ]
        )
        years = [event.year for event in timeline]
        assert years == [2010, 2020]

    def test_involving(self):
        event = MnAEvent(EventKind.ACQUISITION, 2020, "a", "b")
        timeline = Timeline(events=[event])
        assert timeline.involving("a") == [event]
        assert timeline.involving("b") == [event]
        assert timeline.involving("z") == []

    def test_describe(self):
        text = MnAEvent(EventKind.ACQUISITION, 2016, "lumen", "level3").describe()
        assert "2016" in text and "acquires" in text


class TestNotesSynth:
    def test_sibling_notes_contain_all_asns(self):
        synth = NotesSynthesizer(seed=1)
        result = synth.sibling_notes("Vega Telecom", [70001, 70002], language="es")
        assert result.true_siblings == (70001, 70002)
        assert "70001" in result.text and "70002" in result.text

    def test_upstream_notes_have_no_siblings(self):
        synth = NotesSynthesizer(seed=1)
        result = synth.upstream_notes([3356, 174])
        assert result.true_siblings == ()
        assert "3356" in result.text

    def test_decoy_notes_numeric_but_empty_truth(self):
        synth = NotesSynthesizer(seed=1)
        result = synth.decoy_notes()
        assert any(ch.isdigit() for ch in result.text)
        assert result.true_siblings == ()

    def test_plain_notes_have_no_digits(self):
        synth = NotesSynthesizer(seed=1)
        for _ in range(20):
            assert not any(ch.isdigit() for ch in synth.plain_notes().text)

    def test_aka_with_sibling(self):
        synth = NotesSynthesizer(seed=1)
        result = synth.aka("Old Name", sibling_asn=70007)
        assert result.true_siblings == (70007,)
        assert "70007" in result.text

    def test_unknown_language_falls_back_to_english(self):
        synth = NotesSynthesizer(seed=1)
        result = synth.sibling_notes("X", [70001], language="tlh")
        assert "70001" in result.text


class TestGeneratedUniverse:
    def test_deterministic_for_same_seed(self):
        a = generate_universe(TEST_UNIVERSE)
        b = generate_universe(TEST_UNIVERSE)
        assert a.whois.asns() == b.whois.asns()
        assert a.pdb.stats() == b.pdb.stats()
        assert sorted(a.web.hosts()) == sorted(b.web.hosts())

    def test_different_seed_differs(self):
        import dataclasses

        other = generate_universe(dataclasses.replace(TEST_UNIVERSE, seed=8))
        base = generate_universe(TEST_UNIVERSE)
        assert other.whois.asns() != base.whois.asns() or (
            other.pdb.stats() != base.pdb.stats()
        )

    def test_every_pdb_net_is_delegated(self, universe):
        for net in universe.pdb.networks():
            assert net.asn in universe.whois

    def test_every_gt_asn_is_delegated(self, universe):
        assert universe.ground_truth.all_asns() == universe.whois.asns()

    def test_synthetic_asns_above_base_or_canonical(self, universe):
        from repro.universe.canonical import build_canonical_plan

        canonical = set(build_canonical_plan().all_asns())
        for asn in universe.whois.asns():
            assert asn >= SYNTHETIC_ASN_BASE or asn in canonical

    def test_annotations_reference_real_nets(self, universe):
        for asn in universe.annotations.notes_truth:
            assert asn in universe.pdb.nets

    def test_notes_truth_siblings_are_true_siblings(self, universe):
        gt = universe.ground_truth
        for asn, truth in universe.annotations.notes_truth.items():
            for sibling in truth:
                assert gt.are_siblings(asn, sibling), (asn, sibling)

    def test_apnic_only_access_networks(self, universe):
        for asn in universe.apnic.asns():
            org = universe.ground_truth.org_of_asn(asn)
            assert org.category is OrgCategory.ACCESS

    def test_topology_covers_all_asns(self, universe):
        assert len(universe.topology) == len(universe.whois)

    def test_topology_acyclic(self, universe):
        universe.topology.validate_acyclic()

    def test_websites_resolve_to_registered_hosts(self, universe):
        # Every PDB website's host is either in the simulated web or the
        # record points at a live external URL the scraper will 404 on —
        # the generator only writes hosts it planted.
        missing = []
        for net in universe.pdb.nets_with_websites():
            from repro.web.url import host_of

            host = host_of(net.website)
            if host is not None and host not in universe.web:
                missing.append(host)
        assert not missing

    def test_summary_keys(self, universe):
        summary = universe.summary()
        assert summary["whois_asns"] == float(len(universe.whois))
        assert summary["pdb_nets"] == float(len(universe.pdb))
