"""The AS-to-Organization mapping produced by any method.

:class:`OrgMapping` is a partition of a fixed ASN universe (the WHOIS
delegation set — the Organization Factor's vertex set) into
organizations.  ASNs never mentioned by any feature stay singletons, as
in the paper's graph construction.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Union

from ..errors import DataError, UnknownASNError
from ..types import ASN, Cluster
from .merge import merge_clusters


class OrgMapping:
    """An immutable ASN partition with per-org lookups and serialization."""

    def __init__(
        self,
        universe: Iterable[ASN],
        clusters: Iterable[Iterable[ASN]],
        method: str = "",
        org_names: Optional[Dict[ASN, str]] = None,
    ) -> None:
        """Build a mapping over *universe*.

        *clusters* may overlap (they are consolidated) and may mention
        ASNs outside the universe (those members are dropped — the θ graph
        only contains delegated networks).  Universe ASNs not covered by
        any cluster become singleton organizations.
        """
        self._universe: Set[ASN] = {int(a) for a in universe}
        self._method = method
        merged = merge_clusters([clusters])
        self._clusters: List[Cluster] = []
        covered: Set[ASN] = set()
        for cluster in merged:
            kept = frozenset(a for a in cluster if a in self._universe)
            if not kept:
                continue
            overlap = kept & covered
            if overlap:
                raise DataError(
                    f"ASNs in two clusters after merge: {sorted(overlap)[:5]}"
                )
            covered |= kept
            self._clusters.append(kept)
        for asn in sorted(self._universe - covered):
            self._clusters.append(frozenset((asn,)))
        self._clusters.sort(key=lambda c: (-len(c), min(c)))
        self._by_asn: Dict[ASN, int] = {}
        for index, cluster in enumerate(self._clusters):
            for asn in cluster:
                self._by_asn[asn] = index
        #: Optional display names per ASN (the WHOIS/PDB org names).
        self._org_names = dict(org_names or {})
        # Lazily-built per-cluster caches.  The mapping is immutable after
        # construction, so each is computed at most once; read paths that
        # hammer these (the serve index, metrics) become O(1) per call.
        self._display_names: Optional[List[str]] = None
        self._sizes: Optional[List[int]] = None

    # -- basic queries -----------------------------------------------------

    @property
    def method(self) -> str:
        return self._method

    @property
    def universe_size(self) -> int:
        return len(self._universe)

    def __len__(self) -> int:
        """Number of organizations (including singletons)."""
        return len(self._clusters)

    def __contains__(self, asn: int) -> bool:
        return asn in self._universe

    def clusters(self) -> List[Cluster]:
        return list(self._clusters)

    def multi_asn_clusters(self) -> List[Cluster]:
        return [c for c in self._clusters if len(c) > 1]

    def cluster_of(self, asn: ASN) -> Cluster:
        try:
            return self._clusters[self._by_asn[asn]]
        except KeyError:
            raise UnknownASNError(asn) from None

    def org_index_of(self, asn: ASN) -> int:
        try:
            return self._by_asn[asn]
        except KeyError:
            raise UnknownASNError(asn) from None

    def are_siblings(self, a: ASN, b: ASN) -> bool:
        if a not in self._by_asn or b not in self._by_asn:
            return False
        return self._by_asn[a] == self._by_asn[b]

    def sizes(self) -> List[int]:
        """Cluster sizes, descending — the θ input."""
        if self._sizes is None:
            self._sizes = [len(c) for c in self._clusters]
        return list(self._sizes)

    def _display_name_of(self, index: int) -> str:
        """Display name for cluster *index*, built once per cluster."""
        if self._display_names is None:
            names: List[str] = []
            for cluster in self._clusters:
                chosen = ""
                for member in sorted(cluster):
                    name = self._org_names.get(member)
                    if name:
                        chosen = name
                        break
                names.append(chosen or f"AS{min(cluster)}")
            self._display_names = names
        return self._display_names[index]

    def org_name_of(self, asn: ASN) -> str:
        """Display name: the recorded name of any cluster member."""
        return self._display_name_of(self.org_index_of(asn))

    def stats(self) -> Dict[str, float]:
        sizes = self.sizes()
        multi = [s for s in sizes if s > 1]
        return {
            "asns": float(self.universe_size),
            "orgs": float(len(sizes)),
            "multi_asn_orgs": float(len(multi)),
            "mean_asns_per_org": (
                sum(sizes) / len(sizes) if sizes else 0.0
            ),
            "max_asns_per_org": float(max(sizes)) if sizes else 0.0,
        }

    # -- comparisons -----------------------------------------------------------

    def changed_clusters_vs(self, baseline: "OrgMapping") -> List[Cluster]:
        """Clusters of *self* that are not identical to a baseline cluster.

        The unit Table 7 counts: organizations whose composition changed.
        """
        baseline_set = set(baseline.clusters())
        return [c for c in self._clusters if c not in baseline_set]

    # -- serialization ------------------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        return {
            "method": self._method,
            "universe": sorted(self._universe),
            "clusters": [sorted(c) for c in self._clusters if len(c) > 1],
            "org_names": {str(k): v for k, v in self._org_names.items()},
        }

    def save(self, path: Union[str, Path]) -> None:
        # sort_keys so the bytes don't depend on dict insertion order —
        # two runs producing the same mapping save identical files.  The
        # embedded digest covers every other key, so a truncated or
        # edited file is rejected at load time rather than silently
        # served (see verify_mapping_payload).
        from ..digest import stable_digest

        payload = self.to_json()
        payload["digest"] = stable_digest(
            {k: v for k, v in payload.items() if k != "digest"}
        )
        Path(path).write_text(
            json.dumps(payload, sort_keys=True), encoding="utf-8"
        )

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "OrgMapping":
        return cls(
            universe=payload["universe"],  # type: ignore[arg-type]
            clusters=payload.get("clusters", ()),  # type: ignore[arg-type]
            method=str(payload.get("method", "")),
            org_names={
                int(k): str(v)
                for k, v in dict(payload.get("org_names", {})).items()  # type: ignore[arg-type]
            },
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "OrgMapping":
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        verify_mapping_payload(payload, origin=str(path))
        return cls.from_json(payload)


def verify_mapping_payload(
    payload: object, origin: str = "<payload>"
) -> None:
    """Schema + digest checks for a serialized :class:`OrgMapping`.

    Raises :class:`~repro.errors.SnapshotIntegrityError` when the
    payload is not the shape :meth:`OrgMapping.save` writes or when an
    embedded ``digest`` does not match the content.  Files without a
    digest (pre-digest saves, hand-written mappings) pass the schema
    checks only — verification is opt-out by absence, never silently
    skipped when a digest is present.
    """
    from ..digest import stable_digest
    from ..errors import SnapshotIntegrityError

    def _fail(reason: str, **kwargs: str) -> None:
        raise SnapshotIntegrityError(
            source="mapping", reason=reason, path=origin, **kwargs
        )

    if not isinstance(payload, dict):
        _fail(f"mapping payload must be an object, got {type(payload).__name__}")
    universe = payload.get("universe")
    if not isinstance(universe, list) or not universe:
        _fail("mapping 'universe' must be a non-empty list of ASNs")
    if not all(isinstance(a, int) and not isinstance(a, bool) for a in universe):
        _fail("mapping 'universe' contains non-integer ASNs")
    clusters = payload.get("clusters", [])
    if not isinstance(clusters, list) or any(
        not isinstance(c, list)
        or any(not isinstance(a, int) or isinstance(a, bool) for a in c)
        for c in clusters
    ):
        _fail("mapping 'clusters' must be lists of integer ASNs")
    org_names = payload.get("org_names", {})
    if not isinstance(org_names, dict):
        _fail("mapping 'org_names' must be an object")
    expected = payload.get("digest")
    if expected is not None:
        actual = stable_digest(
            {k: v for k, v in payload.items() if k != "digest"}
        )
        if actual != expected:
            _fail(
                "mapping digest mismatch (truncated or tampered file)",
                expected_digest=str(expected),
                actual_digest=actual,
            )
