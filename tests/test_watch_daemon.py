"""Supervisor contract of the watch daemon, end to end.

Covers the cycle outcomes (publish, skip-unchanged, skip-quarantined,
gate-blocked, failed), the crash-ordering protocol — a simulated
``kill -9`` between archive publish and store swap must be finished by
``recover()`` from the journal without re-running the pipeline — the
restart budget, injected watch faults (slow pipeline, publish crash,
disk pressure), and the HTTP surface the daemon exposes through an
attached serve tier: time-travel ``?gen=``, ``/v1/diff``,
``/v1/admin/watch`` and the health/watch posture fields.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.core.mapping import OrgMapping
from repro.obs import use_registry
from repro.resilience import PROFILES, FaultInjector
from repro.resilience.faults import FaultProfile
from repro.serve import QueryServer, QueryService, SnapshotStore
from repro.watch import (
    GateThresholds,
    RunJournal,
    SimulatedProcessKill,
    SnapshotArchive,
    WatchConfig,
    WatchDaemon,
    WatchRunResult,
)

#: Thresholds that never block — most tests exercise plumbing, not the gate.
OPEN_GATE = GateThresholds(
    max_org_shrink=100.0,
    max_org_growth=100.0,
    max_coverage_drop=100.0,
    max_churn=100.0,
)


def make_mapping(groups):
    universe = sorted(asn for group in groups for asn in group)
    return OrgMapping(
        universe=universe,
        clusters=[frozenset(group) for group in groups],
        method="watch-test",
    )


def run_result(groups, digest, label="", precision=None):
    return WatchRunResult(
        mapping=make_mapping(groups),
        dataset_digest=digest,
        label=label or digest,
        precision=precision,
    )


class ScriptedRunner:
    """Yields queued results/exceptions; repeats the last one forever."""

    def __init__(self, *items):
        self.items = list(items)
        self.calls = 0

    def __call__(self):
        self.calls += 1
        item = self.items.pop(0) if len(self.items) > 1 else self.items[0]
        if isinstance(item, BaseException):
            raise item
        return item


@pytest.fixture()
def registry():
    with use_registry() as reg:
        yield reg


def build_daemon(tmp_path, registry, runner, injector=None, config=None,
                 digest_probe=None, free_bytes_floor=0):
    store = SnapshotStore(registry=registry)
    archive = SnapshotArchive(
        tmp_path / "archive",
        registry=registry,
        injector=injector,
        free_bytes_floor=free_bytes_floor,
    )
    store.attach_archive(archive)
    journal = RunJournal(tmp_path / "journal.jsonl")
    daemon = WatchDaemon(
        store=store,
        archive=archive,
        journal=journal,
        runner=runner,
        config=config or WatchConfig(interval=0.0, thresholds=OPEN_GATE),
        digest_probe=digest_probe,
        registry=registry,
        injector=injector,
        sleep=lambda _seconds: None,
    )
    return daemon


class TestCycleOutcomes:
    def test_first_cycle_publishes_archives_and_swaps(self, tmp_path, registry):
        runner = ScriptedRunner(run_result([{1, 2}, {3}], "d1"))
        daemon = build_daemon(tmp_path, registry, runner)
        assert daemon.cycle() == "published"
        snapshot = daemon.store.current()
        assert snapshot.archive_generation == 1
        assert snapshot.source == "watch"
        assert daemon.archive.generations() == [1]
        assert [e["kind"] for e in daemon.journal.entries()] == [
            "start", "publish", "swap",
        ]
        assert daemon.status()["last_outcome"] == "published"

    def test_unchanged_digest_skips_without_publishing(self, tmp_path, registry):
        runner = ScriptedRunner(run_result([{1, 2}], "d1"))
        daemon = build_daemon(tmp_path, registry, runner)
        assert daemon.cycle() == "published"
        assert daemon.cycle() == "skipped_unchanged"
        assert daemon.archive.generations() == [1]

    def test_run_on_unchanged_republishes(self, tmp_path, registry):
        runner = ScriptedRunner(run_result([{1, 2}], "d1"))
        config = WatchConfig(
            interval=0.0, thresholds=OPEN_GATE, run_on_unchanged=True
        )
        daemon = build_daemon(tmp_path, registry, runner, config=config)
        assert daemon.cycle() == "published"
        assert daemon.cycle() == "published"
        assert daemon.archive.generations() == [1, 2]

    def test_digest_probe_skips_before_running_the_pipeline(
        self, tmp_path, registry
    ):
        runner = ScriptedRunner(run_result([{1, 2}], "d1"))
        daemon = build_daemon(
            tmp_path, registry, runner, digest_probe=lambda: "d1"
        )
        assert daemon.cycle() == "published"
        calls_after_publish = runner.calls
        assert daemon.cycle() == "skipped_unchanged"
        assert runner.calls == calls_after_publish  # pipeline never ran

    def test_crashing_pipeline_is_contained(self, tmp_path, registry):
        runner = ScriptedRunner(
            run_result([{1, 2}], "d1"),
            ValueError("upstream feed exploded"),
            run_result([{1, 2}, {3}], "d2"),
        )
        daemon = build_daemon(tmp_path, registry, runner)
        assert daemon.cycle() == "published"
        assert daemon.cycle() == "failed"
        assert daemon.consecutive_failures == 1
        assert "ValueError" in daemon.last_error
        # Serving is untouched by the failure.
        assert daemon.store.current().archive_generation == 1
        assert daemon.journal.entries("fail")
        assert daemon.cycle() == "published"
        assert daemon.consecutive_failures == 0
        assert daemon.last_error == ""

    def test_gate_blocks_regression_and_keeps_serving(self, tmp_path, registry):
        runner = ScriptedRunner(
            run_result([{n} for n in range(1, 11)], "d1"),
            run_result([set(range(1, 11))], "d2"),  # collapse: one org
        )
        config = WatchConfig(interval=0.0)  # real default thresholds
        daemon = build_daemon(tmp_path, registry, runner, config=config)
        assert daemon.cycle() == "published"
        assert daemon.cycle() == "gate_blocked"
        assert daemon.store.current().archive_generation == 1
        assert daemon.archive.generations() == [1]
        gate_entries = daemon.journal.entries("gate")
        assert gate_entries and gate_entries[0]["fields"]["reasons"]
        decision = daemon.status()["last_gate_decision"]
        assert decision["allowed"] is False

    def test_precision_floor_blocks_even_at_bootstrap(self, tmp_path, registry):
        runner = ScriptedRunner(
            run_result([{1, 2}], "d1", precision=0.3)
        )
        config = WatchConfig(
            interval=0.0,
            thresholds=GateThresholds(
                max_org_shrink=100.0, max_org_growth=100.0,
                max_coverage_drop=100.0, max_churn=100.0,
                min_precision=0.9,
            ),
        )
        daemon = build_daemon(tmp_path, registry, runner, config=config)
        assert daemon.cycle() == "gate_blocked"
        assert daemon.store.current_or_none() is None

    def test_disk_pressure_fails_the_cycle_cleanly(self, tmp_path, registry):
        runner = ScriptedRunner(run_result([{1, 2}], "d1"))
        daemon = build_daemon(
            tmp_path, registry, runner, free_bytes_floor=1 << 62
        )
        assert daemon.cycle() == "failed"
        assert "DiskPressureError" in daemon.last_error
        assert daemon.store.current_or_none() is None
        assert daemon.archive.generations() == []


class TestSupervisor:
    def test_restart_budget_halts_the_loop_not_the_process(
        self, tmp_path, registry
    ):
        runner = ScriptedRunner(RuntimeError("always dies"))
        config = WatchConfig(
            interval=0.0,
            thresholds=OPEN_GATE,
            max_cycles=50,
            max_restarts=2,
            restart_window=600.0,
        )
        daemon = build_daemon(tmp_path, registry, runner, config=config)
        cycles = daemon.run()
        assert daemon.halted
        # max_restarts failures fit the budget; the one after trips it.
        assert cycles == 3
        status = daemon.status()
        assert status["halted"] is True
        assert status["restart_budget"]["remaining"] == 0

    def test_slow_pipeline_fault_stalls_but_publishes(self, tmp_path, registry):
        stalls = []
        injector = FaultInjector(PROFILES["slow-pipeline"], seed=3)
        runner = ScriptedRunner(run_result([{1, 2}], "d1"))
        daemon = build_daemon(tmp_path, registry, runner, injector=injector)
        daemon._sleep = stalls.append
        assert daemon.cycle() == "published"
        assert stalls == [PROFILES["slow-pipeline"].slow_pipeline_seconds]

    def test_max_cycles_bounds_run(self, tmp_path, registry):
        runner = ScriptedRunner(
            run_result([{1, 2}], "d1"), run_result([{1, 2}, {3}], "d2")
        )
        config = WatchConfig(
            interval=0.0, thresholds=OPEN_GATE, max_cycles=2
        )
        daemon = build_daemon(tmp_path, registry, runner, config=config)
        assert daemon.run() == 2
        assert daemon.store.current().archive_generation == 2


class TestCrashRecovery:
    def test_publish_crash_is_resumed_from_the_archive(self, tmp_path, registry):
        profile = FaultProfile(
            name="always-publish-crash", watch_publish_crash=1.0
        ).validate()
        runner = ScriptedRunner(run_result([{1, 2}, {3}], "d1"))
        daemon = build_daemon(
            tmp_path, registry, runner,
            injector=FaultInjector(profile, seed=5),
        )
        with pytest.raises(SimulatedProcessKill):
            daemon.cycle()
        # The kill window: archived + journaled, never swapped.
        assert daemon.archive.generations() == [1]
        assert daemon.journal.entries("publish")
        assert not daemon.journal.entries("swap")
        assert daemon.store.current_or_none() is None

        # "Restart": a fresh daemon over the same journal/archive/store.
        revived = WatchDaemon(
            store=daemon.store,
            archive=daemon.archive,
            journal=RunJournal(daemon.journal.path),
            runner=runner,
            config=WatchConfig(interval=0.0, thresholds=OPEN_GATE),
            registry=registry,
            sleep=lambda _s: None,
        )
        report = revived.recover()
        assert report["resumed_generation"] == 1
        snapshot = revived.store.current()
        assert snapshot.archive_generation == 1
        assert snapshot.source == "watch-resume"
        assert revived.journal.last_swapped_generation() == 1
        # The pipeline was NOT re-run to finish the job...
        assert runner.calls == 1
        # ...and the digest is now published: the next cycle skips it.
        assert revived.cycle() == "skipped_unchanged"
        assert revived.archive.generations() == [1]

    def test_two_orphan_crashes_quarantine_the_digest(self, tmp_path, registry):
        journal = RunJournal(tmp_path / "journal.jsonl")
        journal.append("start", dataset_digest="killer", cycle=1)
        journal.append("start", dataset_digest="killer", cycle=2)
        runner = ScriptedRunner(run_result([{1, 2}], "killer"))
        daemon = build_daemon(tmp_path, registry, runner)
        report = daemon.recover()
        assert report["quarantined"] == ["killer"]
        assert daemon.cycle() == "skipped_quarantined"
        assert daemon.store.current_or_none() is None
        assert daemon.archive.generations() == []

    def test_single_orphan_is_retried_not_quarantined(self, tmp_path, registry):
        journal = RunJournal(tmp_path / "journal.jsonl")
        journal.append("start", dataset_digest="d1", cycle=1)
        runner = ScriptedRunner(run_result([{1, 2}], "d1"))
        daemon = build_daemon(tmp_path, registry, runner)
        report = daemon.recover()
        assert report["quarantined"] == []
        assert daemon.cycle() == "published"

    def test_recover_on_clean_journal_is_a_no_op(self, tmp_path, registry):
        runner = ScriptedRunner(run_result([{1, 2}], "d1"))
        daemon = build_daemon(tmp_path, registry, runner)
        daemon.cycle()
        entries_before = len(daemon.journal)
        revived = build_daemon(tmp_path, registry, runner)
        report = revived.recover()
        assert report["resumed_generation"] == 0
        assert report["quarantined"] == []
        assert len(revived.journal) == entries_before


def _get(server, path):
    conn = http.client.HTTPConnection(server.host, server.port, timeout=5)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        conn.close()


class TestWatchServeSurface:
    @pytest.fixture()
    def world(self, tmp_path, registry):
        runner = ScriptedRunner(
            run_result([{1, 2}, {3, 4}], "d1", label="gen-one"),
            run_result([{1, 2, 3, 4}], "d2", label="gen-two"),
        )
        daemon = build_daemon(tmp_path, registry, runner)
        assert daemon.cycle() == "published"
        assert daemon.cycle() == "published"
        service = QueryService(store=daemon.store, registry=registry)
        service.attach_watch(daemon)
        with QueryServer(service) as server:
            yield daemon, service, server

    def test_time_travel_answers_from_the_archive(self, world):
        daemon, _service, server = world
        status, body = _get(server, "/v1/asn/3?gen=1")
        assert status == 200
        assert body["archived"] is True
        assert body["generation"] == 1
        # In generation 1, AS3's org was {3,4}; now it is {1,2,3,4}.
        old_org = body["org"]["org_id"]
        status, now = _get(server, "/v1/asn/3")
        assert status == 200
        assert now["generation"] == daemon.store.current().generation
        assert now["org"]["org_id"] != old_org

    def test_unknown_generation_is_404_not_5xx(self, world):
        _daemon, _service, server = world
        status, body = _get(server, "/v1/asn/3?gen=99")
        assert status == 404
        assert "generation" in body["error"]

    def test_corrupt_archive_entry_is_404_and_quarantined(self, world):
        daemon, _service, server = world
        path = daemon.archive._entry_path(1)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        status, body = _get(server, "/v1/asn/3?gen=1")
        assert status == 404
        assert "unreadable" in body["error"]
        assert path.with_name(path.name + ".quarantined").exists()

    def test_diff_endpoint_reports_the_merge(self, world):
        _daemon, _service, server = world
        status, body = _get(server, "/v1/diff?from=1&to=2")
        assert status == 200
        assert body["from"] == 1 and body["to"] == 2
        assert body["orgs_merged"] == 1
        assert body["asns_moved"] == 4
        status, body = _get(server, "/v1/diff?from=1")
        assert status == 400
        status, body = _get(server, "/v1/diff?from=1&to=77")
        assert status == 404

    def test_admin_watch_surfaces_daemon_status(self, world):
        daemon, _service, server = world
        status, body = _get(server, "/v1/admin/watch")
        assert status == 200
        assert body["cycles"] == 2
        assert body["halted"] is False
        assert body["last_outcome"] == "published"
        assert body["journal"]["published_digests"] == 2
        assert body["archive"]["entries"] == 2
        assert body["thresholds"]["max_churn"] == 100.0

    def test_healthz_carries_swap_and_watch_posture(self, world):
        _daemon, _service, server = world
        status, body = _get(server, "/healthz")
        assert status == 200
        assert body["stale"] is False
        assert body["swap_failures"] == 0
        assert body["rollback_count"] == 0
        watch = body["watch"]
        assert watch["halted"] is False
        assert watch["running"] is False  # cycles driven inline, no thread
        assert watch["consecutive_failures"] == 0

    def test_admin_watch_without_daemon_is_404(self, registry, tmp_path):
        store = SnapshotStore(registry=registry)
        store.load_from_mapping(make_mapping([{1, 2}]), label="solo")
        service = QueryService(store=store, registry=registry)
        with QueryServer(service) as server:
            status, body = _get(server, "/v1/admin/watch")
            assert status == 404
