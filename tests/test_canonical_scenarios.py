"""Integration tests: every paper-narrated scenario must be recovered.

Each test pins one of the concrete cases the paper describes (Figs. 3–5,
Tables 1–2, Appendix B) and asserts that the full Borges pipeline
recovers — or correctly refuses — the relationship.
"""

import pytest

from repro.universe.canonical import (
    AS_CENTURYLINK,
    AS_CLEARWIRE,
    AS_COGENT,
    AS_DEUTSCHE_TELEKOM,
    AS_EDGECAST,
    AS_HRVATSKI_TELEKOM,
    AS_LIMELIGHT,
    AS_LUMEN,
    AS_MAXIHOST,
    AS_OPEN_TRANSIT,
    AS_SLOVAK_TELEKOM,
    AS_TMOBILE_US,
    HYPERGIANT_PRIMARY_ASNS,
    build_canonical_plan,
)


class TestCanonicalPlan:
    def test_all_asns_unique(self):
        plan = build_canonical_plan()
        asns = plan.all_asns()
        assert len(asns) == len(set(asns))

    def test_canonical_asns_never_reallocated(self, universe):
        # Canonical ASNs may exceed the synthetic base (Maxihost's real
        # AS262287 does); the generator must still assign each exactly once.
        asns = universe.whois.asns()
        assert len(asns) == len(set(asns))
        assert AS_MAXIHOST in universe.whois

    def test_sixteen_hypergiants(self):
        assert len(HYPERGIANT_PRIMARY_ASNS) == 16

    def test_registered_brands_exist(self):
        plan = build_canonical_plan()
        brand_ids = {b.brand_id for org in plan.orgs for b in org.brands}
        assert plan.register <= brand_ids


class TestFig3Lumen:
    """WHOIS splits Lumen/CenturyLink; PeeringDB OID_P unites them."""

    def test_whois_separates(self, universe):
        whois = universe.whois
        assert whois.org_id_of(AS_LUMEN) != whois.org_id_of(AS_CENTURYLINK)

    def test_as2org_misses_the_merge(self, as2org_mapping):
        assert not as2org_mapping.are_siblings(AS_LUMEN, AS_CENTURYLINK)

    def test_pdb_unites(self, universe):
        pdb = universe.pdb
        assert pdb.nets[AS_LUMEN].org_id == pdb.nets[AS_CENTURYLINK].org_id

    def test_borges_recovers(self, borges_mapping):
        assert borges_mapping.are_siblings(AS_LUMEN, AS_CENTURYLINK)


class TestFig4DeutscheTelekomNotes:
    """DTAG's notes report its European subsidiaries (NER feature)."""

    def test_notes_present_in_snapshot(self, universe):
        notes = universe.pdb.nets[AS_DEUTSCHE_TELEKOM].notes
        assert str(AS_SLOVAK_TELEKOM) in notes
        assert str(AS_HRVATSKI_TELEKOM) in notes

    def test_borges_links_subsidiaries(self, borges_mapping):
        assert borges_mapping.are_siblings(AS_DEUTSCHE_TELEKOM, AS_SLOVAK_TELEKOM)
        assert borges_mapping.are_siblings(AS_DEUTSCHE_TELEKOM, AS_HRVATSKI_TELEKOM)

    def test_as2org_misses(self, as2org_mapping):
        assert not as2org_mapping.are_siblings(
            AS_DEUTSCHE_TELEKOM, AS_SLOVAK_TELEKOM
        )


class TestFig5aEdgio:
    """Edgecast and Limelight report sites landing on www.edg.io."""

    def test_borges_merges_edgio(self, borges_mapping):
        assert borges_mapping.are_siblings(AS_EDGECAST, AS_LIMELIGHT)

    def test_redirect_chain_observed(self, scraper):
        result = scraper.resolve("https://www.edgecast.com/")
        assert result.final_url == "https://www.edg.io/"


class TestFig5bClearwire:
    """Clearwire's stale site redirects through Sprint to T-Mobile."""

    def test_chain_shape(self, scraper):
        result = scraper.resolve("https://www.clearwire.com/")
        assert result.chain == (
            "https://www.clearwire.com/",
            "https://www.sprint.com/",
            "https://www.t-mobile.com/",
        )

    def test_borges_links_clearwire_to_tmobile(self, borges_mapping):
        assert borges_mapping.are_siblings(AS_CLEARWIRE, AS_TMOBILE_US)


class TestClaroFavicons:
    """Claro branches share a favicon but differ in domain (Table 2)."""

    def test_borges_groups_claro(self, universe, borges_mapping):
        claro = universe.ground_truth.orgs["gt-claro"]
        asns = claro.asns
        pairs_joined = sum(
            borges_mapping.are_siblings(asns[0], other) for other in asns[1:]
        )
        # The favicon signal must join most branches to the first one.
        assert pairs_joined >= len(asns[1:]) - 2


class TestOrangeSubdomains:
    """orange.es / orange.pl share token + favicon → step-1 grouping."""

    def test_borges_groups_orange(self, universe, borges_mapping):
        orange = universe.ground_truth.orgs["gt-orange"]
        es = next(b for b in orange.brands if b.country == "ES")
        pl = next(b for b in orange.brands if b.country == "PL")
        assert borges_mapping.are_siblings(es.primary_asn, pl.primary_asn)

    def test_open_transit_joined(self, borges_mapping, universe):
        orange = universe.ground_truth.orgs["gt-orange"]
        fr = next(b for b in orange.brands if b.country == "FR")
        assert borges_mapping.are_siblings(AS_OPEN_TRANSIT, fr.primary_asn)


class TestMaxihostAppendixB:
    """Numeric notes reporting upstreams must NOT become siblings."""

    def test_notes_are_the_upstream_pattern(self, universe):
        notes = universe.pdb.nets[AS_MAXIHOST].notes
        assert "connect directly" in notes
        assert f"AS{AS_COGENT}" in notes

    def test_borges_does_not_link_to_cogent(self, borges_mapping):
        assert not borges_mapping.are_siblings(AS_MAXIHOST, AS_COGENT)

    def test_maxihost_stays_singleton(self, borges_mapping):
        assert borges_mapping.cluster_of(AS_MAXIHOST) == frozenset({AS_MAXIHOST})


class TestBootstrapTrap:
    """Unrelated sites sharing Bootstrap's default favicon must not merge."""

    def test_no_cross_org_merge(self, universe, borges_mapping):
        bootstrap_orgs = [
            org for oid, org in universe.ground_truth.orgs.items()
            if oid.startswith("gt-bootstrap-")
        ]
        asns = [org.asns[0] for org in bootstrap_orgs]
        for i, a in enumerate(asns):
            for b in asns[i + 1:]:
                assert not borges_mapping.are_siblings(a, b)


class TestDigicel:
    """Digicel spans ~25 Caribbean countries (Table 9's biggest growth)."""

    def test_whois_splits_digicel(self, universe, as2org_mapping):
        digicel = universe.ground_truth.orgs["gt-digicel"]
        sizes = len(as2org_mapping.cluster_of(digicel.brands[0].primary_asn))
        assert sizes == 4  # the legacy WHOIS org groups only 4 brands

    def test_borges_unites_digicel(self, universe, borges_mapping):
        digicel = universe.ground_truth.orgs["gt-digicel"]
        cluster = borges_mapping.cluster_of(digicel.brands[0].primary_asn)
        assert len(cluster) >= 20


class TestHypergiants:
    def test_edgecast_gains_nine(self, as2org_mapping, borges_mapping):
        base = len(as2org_mapping.cluster_of(AS_EDGECAST))
        merged = len(borges_mapping.cluster_of(AS_EDGECAST))
        assert merged - base == 9  # the paper's headline Fig. 9 number

    def test_google_gains_three(self, as2org_mapping, borges_mapping):
        asn = HYPERGIANT_PRIMARY_ASNS["Google"]
        gain = len(borges_mapping.cluster_of(asn)) - len(
            as2org_mapping.cluster_of(asn)
        )
        assert gain == 3

    def test_akamai_unchanged(self, as2org_mapping, borges_mapping):
        asn = HYPERGIANT_PRIMARY_ASNS["Akamai"]
        assert len(borges_mapping.cluster_of(asn)) == len(
            as2org_mapping.cluster_of(asn)
        )
