"""Unit tests for the web-inference module: R&R and the favicon tree."""

import pytest

from repro.config import BorgesConfig, LLMConfig
from repro.core.web_inference import WebInferenceModule
from repro.llm.simulated import make_default_client
from repro.peeringdb import Network, Organization, PDBSnapshot
from repro.web.favicon import FaviconAPI
from repro.web.http import RedirectKind
from repro.web.scraper import HeadlessScraper
from repro.web.simweb import SimulatedWeb


def build_world():
    """A miniature web with every decision-tree path represented."""
    web = SimulatedWeb()
    # Same final URL through redirects (Edgecast/Limelight pattern).
    web.add_page("https://www.edg.io/", favicon_brand="edgio")
    web.add_redirect("https://www.edgecast.com/", "https://www.edg.io/")
    # Shared favicon + same brand token (Orange pattern → step 1).
    web.add_page("https://www.orange.es/", favicon_brand="orange")
    web.add_page("https://www.orange.pl/", favicon_brand="orange")
    # Shared favicon + different tokens (Claro pattern → step 2 LLM).
    web.add_page("https://www.clarochile.cl/", favicon_brand="claro")
    web.add_page("https://www.claropr.com/", favicon_brand="claro")
    # Framework default favicon (Bootstrap trap → LLM rejects).
    web.add_page("https://www.anosbd.com/", favicon_brand="bootstrap-default")
    web.add_page("https://www.rptechzone.in/", favicon_brand="bootstrap-default")
    # Blocklisted platform both nets point at.
    web.add_page("https://github.com/", favicon_brand="github")
    # A dead site.
    web.add_page("https://dead.example.org/", alive=False)

    orgs = [Organization(org_id=i, name=f"org{i}") for i in range(1, 13)]
    nets = [
        Network(asn=15133, name="Edgecast", org_id=1,
                website="https://www.edgecast.com/"),
        Network(asn=22822, name="Limelight", org_id=2,
                website="https://www.edg.io/"),
        Network(asn=71101, name="Orange ES", org_id=3,
                website="https://www.orange.es/"),
        Network(asn=71102, name="Orange PL", org_id=4,
                website="https://www.orange.pl/"),
        Network(asn=71103, name="Claro CL", org_id=5,
                website="https://www.clarochile.cl/"),
        Network(asn=71104, name="Claro PR", org_id=6,
                website="https://www.claropr.com/"),
        Network(asn=71105, name="Unrelated BD", org_id=7,
                website="https://www.anosbd.com/"),
        Network(asn=71106, name="Unrelated IN", org_id=8,
                website="https://www.rptechzone.in/"),
        Network(asn=71107, name="Tiny A", org_id=9,
                website="https://github.com/"),
        Network(asn=71108, name="Tiny B", org_id=10,
                website="https://github.com/"),
        Network(asn=71109, name="Dead", org_id=11,
                website="https://dead.example.org/"),
        Network(asn=71110, name="No site", org_id=12),
    ]
    snapshot = PDBSnapshot.build(orgs, nets)
    return web, snapshot


def make_module(web, config=None):
    config = config or BorgesConfig(
        llm=LLMConfig(extraction_error_rate=0.0, classifier_error_rate=0.0)
    )
    client = make_default_client(config.llm)
    return WebInferenceModule(
        HeadlessScraper(web), FaviconAPI(web), client, config
    )


@pytest.fixture(scope="module")
def world_result():
    web, snapshot = build_world()
    module = make_module(web)
    return module.run(snapshot)


class TestRR:
    def test_redirect_pair_grouped(self, world_result):
        assert frozenset({15133, 22822}) in world_result.rr_clusters

    def test_blocklisted_platform_not_grouped(self, world_result):
        for cluster in world_result.rr_clusters:
            assert not {71107, 71108} <= cluster

    def test_dead_site_unresolved(self, world_result):
        assert 71109 not in world_result.final_url_of_asn

    def test_no_website_net_ignored(self, world_result):
        assert 71110 not in world_result.final_url_of_asn

    def test_stats_accounting(self, world_result):
        stats = world_result.stats
        assert stats.nets_with_website == 11
        assert stats.unique_urls == 10  # the two tiny nets share one URL
        assert stats.reachable_urls == 9  # dead.example.org fails
        assert stats.blocked_final_urls == 2


class TestFaviconTree:
    def test_same_token_grouped_step1(self, world_result):
        assert frozenset({71101, 71102}) in world_result.favicon_clusters

    def test_different_token_grouped_by_llm(self, world_result):
        assert any(
            {71103, 71104} <= cluster
            for cluster in world_result.favicon_clusters
        )

    def test_framework_favicon_rejected(self, world_result):
        for cluster in world_result.favicon_clusters:
            assert not {71105, 71106} <= cluster

    def test_decision_log_steps(self, world_result):
        steps = {d.step for d in world_result.decisions}
        assert "same_subdomain" in steps
        assert "llm_company" in steps
        assert "llm_rejected" in steps

    def test_llm_reply_recorded(self, world_result):
        replies = [
            d.llm_reply for d in world_result.decisions
            if d.step == "llm_company"
        ]
        assert any("Claro" in reply for reply in replies)


class TestConfigSwitches:
    def test_favicons_disabled(self):
        web, snapshot = build_world()
        module = make_module(web)
        result = module.run(snapshot, favicons=False)
        assert result.favicon_clusters == []
        assert result.rr_clusters  # R&R still runs

    def test_blocklists_disabled_groups_platform(self):
        web, snapshot = build_world()
        config = BorgesConfig(
            apply_blocklists=False,
            llm=LLMConfig(extraction_error_rate=0.0, classifier_error_rate=0.0),
        )
        module = make_module(web, config)
        result = module.run(snapshot)
        assert any(
            {71107, 71108} <= cluster for cluster in result.rr_clusters
        )

    def test_llm_step_disabled_leaves_claro_split(self):
        web, snapshot = build_world()
        config = BorgesConfig(
            favicon_llm_step=False,
            llm=LLMConfig(extraction_error_rate=0.0, classifier_error_rate=0.0),
        )
        module = make_module(web, config)
        result = module.run(snapshot)
        assert not any(
            {71103, 71104} <= cluster for cluster in result.favicon_clusters
        )
        # Step 1 still groups the Orange pair.
        assert frozenset({71101, 71102}) in result.favicon_clusters
