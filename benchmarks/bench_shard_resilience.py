"""Shard-resilience benchmark: what shard-surface chaos costs a run.

Runs the sharded pipeline (4 shards, same universe, same seeds) under
each shard-surface fault profile and reports wall time, retries,
quarantined shards and surviving coverage.  The contracts:

* ``shard-flaky`` must converge to the clean sharded mapping (retries
  absorb attempt-0 crashes);
* ``shard-crash``/``shard-hang`` may quarantine shards but never the
  run, and a checkpointed resume under the clean profile must converge
  to the clean mapping byte-for-byte.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.config import BorgesConfig
from repro.core import run_sharded
from repro.metrics import org_factor_from_mapping
from repro.obs import MetricsRegistry, Tracer, build_manifest, write_manifest

from conftest import TELEMETRY_ENV

N_SHARDS = 4
SHARD_PROFILES = ("none", "shard-flaky", "shard-crash", "shard-hang")


def run_under_profile(ctx, profile, *, checkpoint=None, resume=False):
    u = ctx.universe
    config = (
        BorgesConfig()
        if profile == "none"
        else BorgesConfig().with_fault_profile(profile)
    )
    registry = MetricsRegistry()
    result = run_sharded(
        u.whois, u.pdb, u.web, config, N_SHARDS,
        registry=registry,
        tracer=Tracer(),
        shard_retries=2,
        shard_deadline=2.0 if profile == "shard-hang" else None,
        checkpoint_path=checkpoint,
        resume=resume,
    )
    return result, registry


def _write_shard_manifest(result, registry, profile) -> None:
    out_dir = os.environ.get(TELEMETRY_ENV)
    if not out_dir:
        return
    manifest = build_manifest(
        result=result,
        registry=registry,
        extra={"bench": f"shard_resilience_{profile.replace('-', '_')}"},
    )
    path = write_manifest(
        Path(out_dir) / f"manifest_shard_resilience_{profile}.json", manifest
    )
    print(f"telemetry manifest written to {path}")


@pytest.mark.parametrize("profile", SHARD_PROFILES)
def test_shard_chaos_profile(benchmark, ctx, profile):
    started = time.perf_counter()
    result, registry = benchmark.pedantic(
        lambda: run_under_profile(ctx, profile), rounds=1, iterations=1
    )
    elapsed = time.perf_counter() - started
    fault = result.diagnostics["fault_tolerance"]
    theta = org_factor_from_mapping(result.mapping)
    print(
        f"\nprofile={profile:<12} theta={theta:.4f} "
        f"orgs={len(result.mapping):,} "
        f"retries={fault['retry_total']} "
        f"quarantined={len(result.failed_shards)}/{N_SHARDS} "
        f"degraded={result.degraded} wall={elapsed:.1f}s"
    )
    _write_shard_manifest(result, registry, profile)
    # Chaos may cost shards, never the run.
    assert len(result.mapping) > 0
    if profile in ("none", "shard-flaky"):
        assert result.failed_shards == []
        assert result.degraded is False


def test_shard_flaky_matches_clean_mapping(ctx):
    clean, _ = run_under_profile(ctx, "none")
    flaky, _ = run_under_profile(ctx, "shard-flaky")
    assert flaky.mapping.clusters() == clean.mapping.clusters()


def test_crash_then_resume_converges(ctx, tmp_path):
    checkpoint = tmp_path / "bench-ckpt.jsonl"
    degraded, _ = run_under_profile(
        ctx, "shard-crash", checkpoint=checkpoint
    )
    resumed, _ = run_under_profile(
        ctx, "none", checkpoint=checkpoint, resume=True
    )
    clean, _ = run_under_profile(ctx, "none")
    assert resumed.failed_shards == []
    assert resumed.mapping.clusters() == clean.mapping.clusters()
    if degraded.failed_shards:
        assert resumed.resumed_shards, "resume must reuse journaled shards"
