"""Simulated-web substrate.

Offline stand-in for the paper's live-web interactions (§4.3):

* :mod:`repro.web.url` — URL parsing/normalization and the brand-label
  extraction ("subdomain" in the paper's terminology) used by the favicon
  decision tree.
* :mod:`repro.web.http` — HTTP semantics: status codes, ``Location``
  redirects, ``<meta http-equiv="refresh">`` and JavaScript redirects.
* :mod:`repro.web.simweb` — a registry of simulated sites (the "web").
* :mod:`repro.web.scraper` — the headless-browser analogue that resolves
  final URLs through refreshes and redirects (R&R) and collects favicons.
* :mod:`repro.web.favicon` — favicon API client (Google Favicon API shape).
* :mod:`repro.web.blocklists` — Appendix D blocklists.
"""

from .url import (
    ParsedURL,
    brand_label,
    normalize_url,
    parse_url,
    registrable_domain,
)
from .http import HTTPResponse, RedirectKind
from .simweb import SimulatedWeb, Site
from .scraper import HeadlessScraper, ScrapeResult
from .favicon import FaviconAPI

__all__ = [
    "ParsedURL",
    "brand_label",
    "normalize_url",
    "parse_url",
    "registrable_domain",
    "HTTPResponse",
    "RedirectKind",
    "SimulatedWeb",
    "Site",
    "HeadlessScraper",
    "ScrapeResult",
    "FaviconAPI",
]
